//! Analyst workbench: the "v2" engine features working together —
//! secondary indexes, subqueries and CASE in plain SQL, SPARQL 1.1
//! aggregates / property paths on the knowledge base, federation with
//! filter pushdown, and the SPARQL-leg cache under repeated exploration.
//!
//! ```sh
//! cargo run --example analyst_workbench
//! ```

use std::sync::Arc;
use std::time::Duration;

use crosse::federation::{FederatedDatabase, LatencyModel, RemoteSource};
use crosse::rdf::sparql::eval::query as sparql_query;
use crosse::smartground::{standard_engine, SmartGroundConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size databank with the director's ontology pre-loaded.
    let engine = standard_engine(
        &SmartGroundConfig::default().with_landfills(100).with_seed(7),
        "director",
    )?;
    let db = engine.database();

    // ---- 1. Secondary indexes ------------------------------------------------
    db.execute("CREATE INDEX idx_elem ON elem_contained (elem_name)")?;
    db.execute("CREATE INDEX idx_lf ON elem_contained (landfill_name)")?;
    let plan = db.query(
        "EXPLAIN SELECT landfill_name FROM elem_contained WHERE elem_name = 'Hg'",
    )?;
    println!("== Indexed plan for the mercury lookup ==");
    for row in &plan.rows {
        println!("  {}", row[0].lexical_form());
    }

    // ---- 2. Subqueries + CASE -------------------------------------------------
    // Landfills holding any element that is above the average contained
    // amount, bucketed by size.
    let rs = db.query(
        "SELECT name, CASE WHEN tons > 500000 THEN 'large' \
                           WHEN tons > 100000 THEN 'medium' \
                           ELSE 'small' END AS size \
         FROM landfill \
         WHERE name IN (SELECT landfill_name FROM elem_contained \
                        WHERE amount > (SELECT AVG(amount) FROM elem_contained)) \
         ORDER BY name LIMIT 8",
    )?;
    println!("\n== Landfills with above-average element deposits ==\n{rs}");

    // ---- 3. SPARQL 1.1 on the knowledge base ----------------------------------
    let kb = engine.knowledge_base();
    let graphs = kb.context_graphs("director");
    let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
    let sols = sparql_query(
        kb.store(),
        &refs,
        "SELECT ?d (COUNT(?e) AS ?n) WHERE { ?e <dangerLevel> ?d } \
         GROUP BY ?d HAVING(?n >= 1) ORDER BY DESC(?d)",
    )?;
    println!("== Elements per danger level (SPARQL GROUP BY) ==");
    for row in &sols.rows {
        let d = row[0].as_ref().map(|t| t.lexical_form().to_string()).unwrap_or_default();
        let n = row[1].as_ref().map(|t| t.lexical_form().to_string()).unwrap_or_default();
        println!("  level {d}: {n} element(s)");
    }

    // Property path: elements transitively co-occurring with mercury.
    let sols = sparql_query(
        kb.store(),
        &refs,
        "SELECT ?x WHERE { <Hg> (<oreAssemblage>|^<oreAssemblage>)+ ?x } ORDER BY ?x",
    )?;
    let cluster: Vec<String> = sols
        .rows
        .iter()
        .filter_map(|r| r[0].as_ref().map(|t| t.lexical_form().to_string()))
        .collect();
    println!("\n== Mercury's (symmetric, transitive) ore-assemblage cluster ==");
    println!("  {}", cluster.join(", "));

    // ---- 4. Exploration with the SPARQL-leg cache ------------------------------
    let sesql = "SELECT elem_name, landfill_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";
    let first = engine.execute("director", sesql)?;
    let second = engine.execute("director", sesql)?;
    println!("\n== SPARQL-leg cache across repeated exploration ==");
    println!(
        "  first run : sparql leg {:?} (cached: {})",
        first.report.sparql_exec, first.report.sparql_runs[0].cached
    );
    println!(
        "  second run: sparql leg {:?} (cached: {})",
        second.report.sparql_exec, second.report.sparql_runs[0].cached
    );
    let stats = engine.cache_stats();
    println!("  cache stats: {} hit(s), {} miss(es)", stats.hits, stats.misses);

    // ---- 5. Federation with filter pushdown ------------------------------------
    let remote_db = engine.database().clone();
    let fed = FederatedDatabase::new();
    fed.register_source(Arc::new(RemoteSource::new(
        "eu",
        remote_db,
        LatencyModel {
            per_request: Duration::from_micros(300),
            per_row: Duration::from_micros(3),
            realtime: true,
        },
    )))?;
    let sql = "SELECT elem_name, amount FROM eu__elem_contained \
               WHERE landfill_name = 'LF00001'";
    let full = fed.query(sql, true)?;
    let pushed = fed.query_pushdown(sql)?;
    println!("\n== Federation: full fetch vs filter pushdown ==");
    println!("  result rows          : {}", full.len());
    println!(
        "  pushdown shipped     : {}",
        pushed.pushed[0].remote_sql
    );
    println!(
        "  rows over the network: {} (vs whole table when not pushed)",
        pushed.pushed[0].rows_fetched
    );
    assert_eq!(full.rows, pushed.result.rows, "pushdown must not change results");

    Ok(())
}
