//! Analyst workbench: the "v2" engine features working together —
//! secondary indexes, subqueries and CASE in plain SQL, SPARQL 1.1
//! aggregates / property paths on the knowledge base, federation with
//! filter pushdown, and the SPARQL-leg cache under repeated exploration.
//!
//! ```sh
//! cargo run --example analyst_workbench
//! ```

use std::sync::Arc;
use std::time::Duration;

use crosse::core::session::Session;
use crosse::federation::{FederatedDatabase, LatencyModel, RemoteSource};
use crosse::rdf::sparql::SparqlParams;
use crosse::rdf::term::Term;
use crosse::relational::Params;
use crosse::smartground::{standard_engine, SmartGroundConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size databank with the director's ontology pre-loaded.
    let engine = standard_engine(
        &SmartGroundConfig::default().with_landfills(100).with_seed(7),
        "director",
    )?;
    let db = engine.database();

    // ---- 1. Secondary indexes ------------------------------------------------
    db.execute("CREATE INDEX idx_elem ON elem_contained (elem_name)")?;
    db.execute("CREATE INDEX idx_lf ON elem_contained (landfill_name)")?;
    let plan = db.query(
        "EXPLAIN SELECT landfill_name FROM elem_contained WHERE elem_name = 'Hg'",
    )?;
    println!("== Indexed plan for the mercury lookup ==");
    for row in &plan.rows {
        println!("  {}", row[0].lexical_form());
    }

    // ---- 2. Subqueries + CASE, prepared once ----------------------------------
    // Landfills holding any element above a caller-chosen amount floor,
    // bucketed by size: the floor is a `$param`, so re-running the
    // analysis with a different threshold skips parse + plan.
    let session = Session::new(&engine, "director")?;
    let deposits = session.prepare_sql(
        "SELECT name, CASE WHEN tons > 500000 THEN 'large' \
                           WHEN tons > 100000 THEN 'medium' \
                           ELSE 'small' END AS size \
         FROM landfill \
         WHERE name IN (SELECT landfill_name FROM elem_contained \
                        WHERE amount > (SELECT AVG(amount) FROM elem_contained)) \
           AND tons > $floor \
         ORDER BY name LIMIT 8",
    )?;
    let rs = deposits.query(&Params::new().set("floor", 0))?;
    println!("\n== Landfills with above-average element deposits ==\n{rs}");
    let big = deposits.query(&Params::new().set("floor", 100_000))?;
    println!("  (re-executed with $floor = 100k: {} row(s), no re-parse)", big.len());

    // ---- 3. SPARQL 1.1 on the knowledge base ----------------------------------
    let kb = engine.knowledge_base();
    let graphs = kb.context_graphs("director");
    let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
    let sols = crosse::rdf::sparql::prepare(
        "SELECT ?d (COUNT(?e) AS ?n) WHERE { ?e <dangerLevel> ?d } \
         GROUP BY ?d HAVING(?n >= 1) ORDER BY DESC(?d)",
    )?
    .execute(kb.store(), &refs, &SparqlParams::new())?;
    println!("== Elements per danger level (SPARQL GROUP BY) ==");
    for row in &sols.rows {
        let d = row[0].as_ref().map(|t| t.lexical_form().to_string()).unwrap_or_default();
        let n = row[1].as_ref().map(|t| t.lexical_form().to_string()).unwrap_or_default();
        println!("  level {d}: {n} element(s)");
    }

    // Property path with a parameterised seed element: one prepared
    // query answers "what co-occurs with X?" for any X.
    let cluster_of = session.prepare_sparql(
        "SELECT ?x WHERE { $seed (<oreAssemblage>|^<oreAssemblage>)+ ?x } ORDER BY ?x",
    )?;
    for seed in ["Hg", "Pb"] {
        let sols = cluster_of.execute(
            kb.store(),
            &refs,
            &SparqlParams::new().set("seed", Term::iri(seed)),
        )?;
        let cluster: Vec<String> = sols
            .rows
            .iter()
            .filter_map(|r| r[0].as_ref().map(|t| t.lexical_form().to_string()))
            .collect();
        println!("\n== {seed}'s (symmetric, transitive) ore-assemblage cluster ==");
        println!("  {}", cluster.join(", "));
    }

    // ---- 4. Exploration with the caches ---------------------------------------
    let explore = session.prepare(
        "SELECT elem_name, landfill_name FROM elem_contained \
         WHERE landfill_name = $lf \
         ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
    )?;
    let first = session.execute(&explore, &Params::new().set("lf", "LF00000"))?;
    let second = session.execute(&explore, &Params::new().set("lf", "LF00001"))?;
    println!("\n== Caches across repeated exploration (one prepared handle) ==");
    println!(
        "  first run : sparql leg {:?} (cached: {})",
        first.report.sparql_exec, first.report.sparql_runs[0].cached
    );
    println!(
        "  second run: sparql leg {:?} (cached: {})",
        second.report.sparql_exec, second.report.sparql_runs[0].cached
    );
    let stats = engine.cache_stats();
    println!(
        "  solution cache: {} hit(s), {} miss(es), {} eviction(s)",
        stats.hits, stats.misses, stats.evictions
    );
    let pstats = engine.prepared_cache_stats();
    println!(
        "  prepared cache: {} hit(s), {} miss(es)",
        pstats.hits, pstats.misses
    );

    // ---- 5. Federation with filter pushdown ------------------------------------
    let remote_db = engine.database().clone();
    let fed = FederatedDatabase::new();
    fed.register_source(Arc::new(RemoteSource::new(
        "eu",
        remote_db,
        LatencyModel {
            per_request: Duration::from_micros(300),
            per_row: Duration::from_micros(3),
            realtime: true,
        },
    )))?;
    // A prepared federated query: the plan is compiled once, the landfill
    // binds per request, and live executions refresh the foreign table.
    let by_landfill = fed.prepare(
        "SELECT elem_name, amount FROM eu__elem_contained WHERE landfill_name = $lf",
    )?;
    let full = by_landfill.query(&Params::new().set("lf", "LF00001"), true)?;
    let sql = "SELECT elem_name, amount FROM eu__elem_contained \
               WHERE landfill_name = 'LF00001'";
    let pushed = fed.query_pushdown(sql)?;
    println!("\n== Federation: full fetch vs filter pushdown ==");
    println!("  result rows          : {}", full.len());
    println!(
        "  pushdown shipped     : {}",
        pushed.pushed[0].remote_sql
    );
    println!(
        "  rows over the network: {} (vs whole table when not pushed)",
        pushed.pushed[0].rows_fetched
    );
    assert_eq!(full.rows, pushed.result.rows, "pushdown must not change results");

    Ok(())
}
