//! CroSSE beyond SmartGround: the paper's conclusion plans to "package the
//! semantic enrichment and query modules as a general purpose product, to
//! be used in other domains". This example re-targets the engine at a
//! bibliography databank — no landfills anywhere — to show the modules are
//! domain-agnostic.
//!
//! ```sh
//! cargo run --example bibliography_domain
//! ```

use crosse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- the shared factual databank: publications --------------------------
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE paper (title TEXT, venue TEXT, year INT);
         INSERT INTO paper VALUES
           ('Mediators in the architecture of future information systems', 'Computer', 1992),
           ('The TSIMMIS approach to mediation', 'JIIS', 1997),
           ('Ontology-based data access', 'EDBT', 2013),
           ('Collaborative data sharing with Orchestra', 'SIGMOD', 2006),
           ('A social platform for scientific knowledge', 'MEDES', 2016);
         CREATE TABLE cites (citing TEXT, cited TEXT);
         INSERT INTO cites VALUES
           ('The TSIMMIS approach to mediation',
            'Mediators in the architecture of future information systems'),
           ('Ontology-based data access',
            'Mediators in the architecture of future information systems'),
           ('Collaborative data sharing with Orchestra',
            'The TSIMMIS approach to mediation');",
    )?;

    // ---- two researchers with different reading contexts ---------------------
    // The same venues mean different things to a database theorist and to
    // an e-government practitioner (the paper's Sec. I-B(a) scenario,
    // transplanted).
    let kb = KnowledgeBase::new();
    kb.register_user("theorist");
    kb.register_user("practitioner");
    for (venue, field) in [
        ("Computer", "SystemsVision"),
        ("JIIS", "DataIntegration"),
        ("EDBT", "DataIntegration"),
        ("SIGMOD", "DataIntegration"),
    ] {
        kb.assert_statement(
            "theorist",
            &Triple::new(Term::iri(venue), Term::iri("fieldOf"), Term::iri(field)),
        )?;
    }
    for (venue, field) in [
        ("MEDES", "ParticipatoryGov"),
        ("EDBT", "Infrastructure"),
        ("SIGMOD", "Infrastructure"),
    ] {
        kb.assert_statement(
            "practitioner",
            &Triple::new(Term::iri(venue), Term::iri("fieldOf"), Term::iri(field)),
        )?;
    }

    let engine = SesqlEngine::new(db, kb);

    // ---- the same *prepared* SESQL query, two personal contexts --------------
    // Compile once; each user's session executes the shared handle in
    // their own knowledge context.
    let by_field = engine.prepare(
        "SELECT title, venue FROM paper \
         ENRICH SCHEMAREPLACEMENT(venue, fieldOf)",
    )?;
    for user in ["theorist", "practitioner"] {
        let session = Session::new(&engine, user)?;
        let r = session.execute(&by_field, &Params::new())?;
        println!("== {user}'s view (venue replaced by their own field taxonomy) ==");
        println!("{}", r.rows);
    }

    // ---- stored SPARQL query: venues the theorist considers core --------------
    engine.stored_queries().register(
        "coreVenues",
        "SELECT ?v WHERE { ?v <fieldOf> <DataIntegration> }",
    )?;
    // The year floor is a parameter: the same prepared handle answers
    // the question for any cut-off without re-parsing.
    let core_since = engine.prepare(
        "SELECT title, year FROM paper \
         WHERE ${venue = Core:c1} AND year >= $since \
         ENRICH REPLACECONSTANT(c1, Core, coreVenues)",
    )?;
    let r = core_since.execute("theorist", &Params::new().set("since", 1995))?;
    println!("== theorist: post-1995 papers in their core venues ==");
    println!("{}", r.rows);

    // ---- plain-SQL power features still apply in the new domain ---------------
    let db = engine.database();
    db.execute("CREATE INDEX idx_citing ON cites (citing)")?;
    let rs = db.query(
        "SELECT title, CASE WHEN title IN (SELECT cited FROM cites) \
                            THEN 'cited' ELSE 'leaf' END AS status \
         FROM paper ORDER BY title",
    )?;
    println!("== citation status (subquery + CASE over the indexed graph) ==");
    println!("{rs}");

    Ok(())
}
