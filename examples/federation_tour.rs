//! Federation tour (paper Fig. 1): the SmartGround databank integrates a
//! national source and a remote EU statistics source over a simulated
//! `postgres_fdw` link, and SESQL queries run over the federated surface.
//!
//! ```sh
//! cargo run --example federation_tour
//! ```

use std::sync::Arc;
use std::time::Duration;

use crosse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // National databank (local, colocated with the mediator).
    let national = Database::new();
    national.execute_script(
        "CREATE TABLE landfill (name TEXT, city TEXT, tons FLOAT);
         INSERT INTO landfill VALUES
           ('Basse di Stura', 'Torino', 1200.0),
           ('Barricalla', 'Collegno', 800.5),
           ('Gerbido', 'Torino', 450.0);",
    )?;

    // EU statistics databank behind a 2 ms round-trip link.
    let eu = Database::new();
    eu.execute_script(
        "CREATE TABLE waste_stats (country TEXT, year INT, kilotons FLOAT);
         INSERT INTO waste_stats VALUES
           ('Italy', 2016, 29524.0), ('Italy', 2017, 29991.5),
           ('France', 2016, 34200.0), ('Germany', 2016, 51010.0);",
    )?;

    let fed = FederatedDatabase::new();
    fed.register_source(Arc::new(LocalSource::new("it", national)))?;
    fed.register_source(Arc::new(RemoteSource::new(
        "eu",
        eu,
        LatencyModel::with_rtt(Duration::from_millis(2)),
    )))?;

    println!("foreign tables: {:?}\n", fed.foreign_tables());

    // A prepared federated query joining both sources: country and year
    // bind per execution, the plan and FROM-analysis are done once.
    let totals = fed.prepare(
        "SELECT l.name, l.city, w.kilotons \
         FROM it__landfill l, eu__waste_stats w \
         WHERE w.country = $country AND w.year = $year \
         ORDER BY l.name",
    )?;
    let rs = totals.query(&Params::new().set("country", "Italy").set("year", 2017), false)?;
    println!("landfills with the 2017 national total:\n{rs}");
    let rs16 = totals.query(&Params::new().set("country", "Italy").set("year", 2016), false)?;
    println!("(same handle, 2016 binding: {} row(s))\n", rs16.len());

    // Live mode re-pulls referenced foreign tables through the link.
    let t0 = std::time::Instant::now();
    fed.query("SELECT COUNT(*) FROM eu__waste_stats", true)?;
    println!("live federated query took {:?} (includes simulated RTT)", t0.elapsed());

    for (name, stats) in fed.source_stats() {
        println!(
            "source {name:<4} requests={} rows={} simulated-network={:?}",
            stats.requests,
            stats.rows_transferred,
            stats.simulated_network()
        );
    }

    // SESQL on top of the federated surface: the mediator's local database
    // is a regular Database, so the engine plugs straight in.
    let kb = KnowledgeBase::new();
    kb.register_user("analyst");
    for (city, country) in [("Torino", "Italy"), ("Collegno", "Italy")] {
        kb.assert_statement(
            "analyst",
            &Triple::new(Term::iri(city), Term::iri("inCountry"), Term::iri(country)),
        )?;
    }
    let engine = SesqlEngine::new(fed.local().clone(), kb);
    let session = Session::new(&engine, "analyst")?;
    let enrich = session.prepare(
        "SELECT name, city FROM it__landfill \
         ENRICH SCHEMAREPLACEMENT(city, inCountry)",
    )?;
    let result = session.execute(&enrich, &Params::new())?;
    println!("\nSESQL over the federation (Example 4.2 shape):\n{}", result.rows);
    Ok(())
}
