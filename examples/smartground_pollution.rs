//! The SmartGround pollution scenario: all six paper examples (4.1–4.6)
//! running against a generated landfill databank with the lab director's
//! ontology.
//!
//! ```sh
//! cargo run --example smartground_pollution
//! ```

use crosse::prelude::*;
use crosse::smartground::{landfill_name, paper_examples};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized synthetic databank: 60 landfills, the full element
    // inventory, labs and analyses.
    let config = SmartGroundConfig {
        landfills: 60,
        elements_per_landfill: 5,
        labs: 4,
        analyses_per_landfill: 3,
        seed: 2018,
    };
    let engine = standard_engine(&config, "director")?;

    println!("=== SmartGround databank ===");
    for table in crosse::smartground::schema::TABLES {
        let n = engine
            .database()
            .query(&format!("SELECT COUNT(*) FROM {table}"))?;
        println!("  {table:<15} {} rows", n.rows[0][0]);
    }
    println!(
        "  director KB     {} triples\n",
        engine.knowledge_base().personal_size("director")
    );

    let target = landfill_name(0);
    for q in paper_examples(&target) {
        println!("=== {} ===", q.name);
        println!("SESQL: {}\n", q.sesql.split_whitespace().collect::<Vec<_>>().join(" "));
        let result = engine.execute("director", &q.sesql)?;
        // Show at most 8 rows to keep the tour readable.
        let mut preview = result.rows.clone();
        preview.rows.truncate(8);
        println!("{}", preview);
        println!(
            "({} rows total, pipeline {:?}: sql {:?}, sparql {:?}, join {:?})\n",
            result.rows.len(),
            result.report.total(),
            result.report.sql_exec,
            result.report.sparql_exec,
            result.report.join,
        );
    }

    // A decision-maker question from the paper's introduction: "Is there an
    // advantage of acquiring a given material from a specific landfill?"
    // The element and amount floor are parameters, so the same prepared
    // handle serves any material the decision maker asks about.
    println!("=== copper-rich landfills, hazard-annotated ===");
    let session = Session::new(&engine, "director")?;
    let acquire = session.prepare(
        "SELECT landfill_name, elem_name, amount FROM elem_contained \
         WHERE elem_name = $elem AND amount > $floor \
         ENRICH SCHEMAEXTENSION(elem_name, dangerLevel) \
                BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)",
    )?;
    let result = session.execute(&acquire, &Params::new().set("elem", "Cu").set("floor", 1000))?;
    println!("{}", result.rows);
    let zinc = session.execute(&acquire, &Params::new().set("elem", "Zn").set("floor", 1000))?;
    println!("(same handle for zinc: {} row(s))", zinc.rows.len());
    Ok(())
}
