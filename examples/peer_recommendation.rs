//! Peer networking and context-aware ranking at community scale
//! (paper Sec. I-B): a population of users with overlapping knowledge,
//! peer discovery, statement recommendation, and result re-ranking.
//!
//! ```sh
//! cargo run --example peer_recommendation
//! ```

use crosse::core::platform::CrossePlatform;
use crosse::core::recommend;
use crosse::prelude::*;
use crosse::smartground::{generate, SmartGroundConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = generate(&SmartGroundConfig { landfills: 30, ..SmartGroundConfig::default() })?;
    let platform = CrossePlatform::new(db, KnowledgeBase::new());

    // A small research community. Toxicologists share danger knowledge;
    // geologists share assemblage knowledge; `newcomer` knows little.
    let toxicologists = ["tox_anna", "tox_bruno", "tox_carla"];
    let geologists = ["geo_dario", "geo_elena"];
    for u in toxicologists.iter().chain(&geologists).chain(&["newcomer"]) {
        platform.register_user(u)?;
    }

    let kb = platform.knowledge_base();
    // Anna seeds the danger ontology; the other toxicologists adopt most
    // of it (crowdsourced scenario).
    let mut danger_ids = Vec::new();
    for t in crosse::smartground::ontogen::danger_triples() {
        danger_ids.push(kb.assert_statement("tox_anna", &t)?);
    }
    for (i, id) in danger_ids.iter().enumerate() {
        if i % 3 != 0 {
            kb.accept_statement("tox_bruno", *id)?;
        }
        if i % 2 == 0 {
            kb.accept_statement("tox_carla", *id)?;
        }
    }
    // Geologists build the assemblage ontology together.
    for (i, t) in crosse::smartground::ontogen::assemblage_triples().iter().enumerate() {
        let author = geologists[i % geologists.len()];
        let id = kb.assert_statement(author, t)?;
        let other = geologists[(i + 1) % geologists.len()];
        kb.accept_statement(other, id)?;
    }
    // The newcomer has adopted a couple of danger statements only.
    kb.accept_statement("newcomer", danger_ids[0])?;
    kb.accept_statement("newcomer", danger_ids[1])?;

    // Some query activity shapes the profiles too — the repeated probe is
    // prepared once and executed per user/round (prepare-once,
    // execute-many; the log still accrues activity context).
    let mercury_probe = platform.engine().prepare(
        "SELECT elem_name FROM elem_contained WHERE elem_name = $e",
    )?;
    let hg = Params::new().set("e", "Hg");
    for _ in 0..3 {
        platform.query_prepared("tox_anna", &mercury_probe, &hg)?;
        platform.query_prepared("newcomer", &mercury_probe, &hg)?;
    }
    platform.query("geo_dario", "SELECT name, city FROM landfill")?;

    println!("=== peer discovery ===");
    for user in ["newcomer", "tox_bruno", "geo_elena"] {
        let peers = recommend::recommend_peers(&platform, user, 3);
        println!("{user}:");
        for p in &peers {
            println!("    {:<10} score {:.3}", p.item, p.score);
        }
    }

    println!("\n=== statement recommendations for newcomer ===");
    let recs = recommend::recommend_statements(&platform, "newcomer", 5);
    for r in &recs {
        let t = kb.statement_triple(r.item)?;
        println!("  score {:.3}  {}", r.score, t);
    }

    // Context-aware ranking (Sec. I-B(c)): the newcomer's profile is all
    // about mercury, so mercury rows float to the top of a generic query.
    println!("\n=== context-aware ranking ===");
    let result = platform.query(
        "newcomer",
        "SELECT elem_name, landfill_name FROM elem_contained LIMIT 15",
    )?;
    let profile = platform.user_profile("newcomer");
    let ranked = recommend::rank_rows(&result.rows, &profile);
    let mut preview = ranked.clone();
    preview.rows.truncate(5);
    println!("top rows for the mercury-focused newcomer:\n{preview}");
    Ok(())
}
