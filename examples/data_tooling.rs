//! Data-tooling tour: CSV ingestion, EXPLAIN plans, UNION queries, result
//! previews, and exporting a user's knowledge as N-Triples / Graphviz DOT.
//!
//! ```sh
//! cargo run --example data_tooling
//! ```

use crosse::core::explore;
use crosse::prelude::*;
use crosse::rdf::export::{to_dot, to_ntriples};
use crosse::relational::csv::{export_csv, import_csv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Flat-file ingestion: a national agency delivers landfill data as
    //    CSV (the paper's "national agencies, public bodies data bases").
    let db = Database::new();
    db.execute(
        "CREATE TABLE landfill (name TEXT, city TEXT, tons FLOAT, kind TEXT)",
    )?;
    let delivery = "\
name,city,tons,kind
Basse di Stura,Torino,1200.5,municipal
Barricalla,Collegno,800.0,industrial
\"Miniera di Funtana Raminosa\",Cagliari,15000.0,mining
Gerbido,Torino,450.0,municipal";
    let table = db.catalog().get_table("landfill")?;
    let n = import_csv(&table, delivery, true)?;
    println!("imported {n} rows from the agency CSV\n");

    // 2. EXPLAIN: inspect how the engine plans a query (pushdown + hash
    //    join visible).
    db.execute(
        "CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT, amount FLOAT)",
    )?;
    db.execute(
        "INSERT INTO elem_contained VALUES
           ('Hg','Basse di Stura',12.5), ('Cu','Miniera di Funtana Raminosa',4000.0),
           ('Pb','Gerbido',20.0)",
    )?;
    let plan = db.query(
        "EXPLAIN SELECT l.name, e.elem_name FROM landfill l, elem_contained e \
         WHERE l.name = e.landfill_name AND l.tons > 500",
    )?;
    println!("EXPLAIN output:");
    for row in &plan.rows {
        println!("  {}", row[0].lexical_form());
    }

    // 3. UNION: one report combining mining sites and mercury sites.
    let rs = db.query(
        "SELECT name FROM landfill WHERE kind = 'mining' \
         UNION \
         SELECT landfill_name FROM elem_contained WHERE elem_name = 'Hg' \
         ORDER BY name",
    )?;
    println!("\nmining ∪ mercury sites:\n{rs}");

    // 4. Result preview (Sec. I-B(c) summaries), via the prepared-cursor
    //    path: the cursor streams and `collect_rows` materialises only
    //    what the preview needs.
    let all = db.prepare("SELECT * FROM landfill")?
        .execute(&Params::new())?
        .collect_rows()?;
    println!("preview of the landfill table:\n{}", explore::preview_text(&all));

    // 5. Concept highlighting in free text.
    let note = "The mercury levels near the Torino municipal landfill \
                exceeded the 2017 threshold; lead was within limits.";
    println!(
        "highlighted note:\n  {}\n",
        explore::highlight(note, &["mercury", "lead", "Torino"])
    );

    // 6. Knowledge export: the director's KB as N-Triples and DOT.
    let kb = KnowledgeBase::new();
    kb.register_user("director");
    for (s, p, o) in [
        ("Hg", "dangerLevel", "5"),
        ("Pb", "dangerLevel", "4"),
    ] {
        kb.assert_statement(
            "director",
            &Triple::new(Term::iri(s), Term::iri(p), Term::lit(o)),
        )?;
    }
    kb.assert_statement(
        "director",
        &Triple::new(Term::iri("Hg"), Term::iri("isA"), Term::iri("HazardousWaste")),
    )?;
    let graph = crosse::rdf::provenance::user_graph("director");
    let triples = kb.store().graph_triples(&graph);
    println!("director's KB as N-Triples:\n{}", to_ntriples(&triples));
    println!("as Graphviz DOT (pipe into `dot -Tsvg`):\n{}", to_dot("director", &triples));

    // 7. Round-trip: export a query result as CSV.
    let csv = export_csv(&rs);
    println!("UNION result as CSV:\n{csv}");
    Ok(())
}
