//! Crowdsourced semantic enrichment (paper Sec. III): two users with
//! different interpretations of "pollution", belief import, and how the
//! same SESQL query answers differently in each context.
//!
//! ```sh
//! cargo run --example crowdsourced_kb
//! ```

use crosse::core::platform::CrossePlatform;
use crosse::core::recommend;
use crosse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT, amount FLOAT);
         INSERT INTO elem_contained VALUES
           ('Hg','a',12.5), ('Pb','a',30.0), ('Cu','a',100.0),
           ('Zn','b',55.0), ('As','b',5.2);",
    )?;
    let platform = CrossePlatform::new(db, KnowledgeBase::new());
    platform.register_user("researcher")?;
    platform.register_user("city_planner")?;

    // The researcher annotates from a toxicology standpoint. The subject
    // must exist in the databank → integrated annotation scenario.
    for elem in ["Hg", "Pb", "As"] {
        platform.integrated_annotation(
            "researcher",
            "elem_contained",
            "elem_name",
            elem,
            "isA",
            Term::iri("HazardousWaste"),
        )?;
    }
    // The city planner's urban-planning context: anything above visual-
    // impact thresholds is a concern, including plain copper and zinc.
    for elem in ["Cu", "Zn"] {
        platform.integrated_annotation(
            "city_planner",
            "elem_contained",
            "elem_name",
            elem,
            "isA",
            Term::iri("HazardousWaste"),
        )?;
    }
    // Independent annotation: free knowledge not anchored in the databank.
    platform.independent_annotation(
        "researcher",
        Term::iri("HazardousWaste"),
        Term::iri("regulatedBy"),
        Term::lit("EU Directive 2008/98/EC"),
    )?;

    // The same *prepared* SESQL query, two contexts, two answers
    // (Sec. I-B(a)) — compiled once, executed per user through the
    // platform so the query log still builds activity context.
    let hazardous = platform.engine().prepare(
        "SELECT elem_name FROM elem_contained \
         ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)",
    )?;
    for user in ["researcher", "city_planner"] {
        println!("=== `{user}` asks: which elements are hazardous? ===");
        let result = platform.query_prepared(user, &hazardous, &Params::new())?;
        println!("{}", result.rows);
    }

    // Crowdsourcing: the planner browses the researcher's public
    // statements and adopts the mercury one.
    println!("=== statements visible to city_planner ===");
    let visible = platform.browse_peer_statements("city_planner");
    for s in &visible {
        println!(
            "  [{}] by {}: {} (believers: {:?})",
            s.id.0, s.author, s.triple, s.believers
        );
    }
    let mercury = visible
        .iter()
        .find(|s| s.triple.subject == Term::iri("Hg"))
        .expect("researcher asserted Hg");
    platform.import_statement("city_planner", mercury.id)?;
    println!("\ncity_planner imported statement [{}]; querying again:", mercury.id.0);
    let result = platform.query_prepared("city_planner", &hazardous, &Params::new())?;
    println!("{}", result.rows);

    // Peer services (Sec. I-B): who is similar, what else to adopt?
    let peers = recommend::recommend_peers(&platform, "city_planner", 3);
    println!("peer recommendations for city_planner:");
    for p in &peers {
        println!("  {} (score {:.3})", p.item, p.score);
    }
    let stmts = recommend::recommend_statements(&platform, "city_planner", 3);
    println!("statement recommendations for city_planner:");
    for s in &stmts {
        let triple = platform.knowledge_base().statement_triple(s.item)?;
        println!("  [{}] {} (score {:.3})", s.item.0, triple, s.score);
    }
    Ok(())
}
