//! Quickstart: build a databank, add personal knowledge, then run the
//! paper's Example 4.1 through the prepare-once / execute-many lifecycle.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use crosse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The relational databank (the SmartGround "main platform").
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT, amount FLOAT);
         INSERT INTO elem_contained VALUES
           ('Hg', 'a', 12.5),
           ('Pb', 'a', 30.0),
           ('Cu', 'a', 100.0),
           ('As', 'b', 5.2);",
    )?;

    // 2. The user's personal contextual knowledge (the "semantic
    //    platform"): RDF statements about danger levels.
    let kb = KnowledgeBase::new();
    kb.register_user("director");
    for (elem, level) in [("Hg", "5"), ("Pb", "4"), ("Cu", "1")] {
        kb.assert_statement(
            "director",
            &Triple::new(Term::iri(elem), Term::iri("dangerLevel"), Term::lit(level)),
        )?;
    }

    // 3. SESQL through a session: prepare the parameterised query once,
    //    execute it for as many bindings as needed — repeated traffic
    //    never re-parses (paper Example 4.1, per landfill).
    let engine = SesqlEngine::new(db, kb);
    let session = Session::new(&engine, "director")?;
    let by_landfill = session.prepare(
        "SELECT elem_name, landfill_name \
         FROM elem_contained \
         WHERE landfill_name = $lf \
         ENRICH \
         SCHEMAEXTENSION( elem_name, dangerLevel)",
    )?;

    let result = session.execute(&by_landfill, &Params::new().set("lf", "a"))?;
    println!("Enriched result (Example 4.1, landfill a):");
    println!("{}", result.rows);

    // Execute-many: same compiled handle, different binding.
    let other = session.execute(&by_landfill, &Params::new().set("lf", "b"))?;
    println!("Same prepared query for landfill b ({} row(s)).", other.rows.len());

    println!("Pipeline (Fig. 6 stages):");
    let r = &result.report;
    println!("  SQP parse     : {:?}", r.parse);
    println!("  SQL leg       : {:?} ({} rows)", r.sql_exec, r.base_rows);
    println!("  SPARQL leg(s) : {:?}", r.sparql_exec);
    for run in &r.sparql_runs {
        println!("    {} -> {} solutions", run.purpose, run.solutions);
        println!("    generated: {}", run.sparql);
    }
    println!("  JoinManager   : {:?}", r.join);
    println!("  final SQL     : {:?} ({} rows)", r.final_sql, r.result_rows);
    Ok(())
}
