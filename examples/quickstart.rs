//! Quickstart: build a databank, add personal knowledge, run the paper's
//! Example 4.1 as a SESQL query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use crosse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The relational databank (the SmartGround "main platform").
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT, amount FLOAT);
         INSERT INTO elem_contained VALUES
           ('Hg', 'a', 12.5),
           ('Pb', 'a', 30.0),
           ('Cu', 'a', 100.0),
           ('As', 'b', 5.2);",
    )?;

    // 2. The user's personal contextual knowledge (the "semantic
    //    platform"): RDF statements about danger levels.
    let kb = KnowledgeBase::new();
    kb.register_user("director");
    for (elem, level) in [("Hg", "5"), ("Pb", "4"), ("Cu", "1")] {
        kb.assert_statement(
            "director",
            &Triple::new(Term::iri(elem), Term::iri("dangerLevel"), Term::lit(level)),
        )?;
    }

    // 3. SESQL: query the databank in the context of that knowledge
    //    (paper Example 4.1).
    let engine = SesqlEngine::new(db, kb);
    let result = engine.execute(
        "director",
        "SELECT elem_name, landfill_name \
         FROM elem_contained \
         WHERE landfill_name = 'a' \
         ENRICH \
         SCHEMAEXTENSION( elem_name, dangerLevel)",
    )?;

    println!("Enriched result (Example 4.1):");
    println!("{}", result.rows);

    println!("Pipeline (Fig. 6 stages):");
    let r = &result.report;
    println!("  SQP parse     : {:?}", r.parse);
    println!("  SQL leg       : {:?} ({} rows)", r.sql_exec, r.base_rows);
    println!("  SPARQL leg(s) : {:?}", r.sparql_exec);
    for run in &r.sparql_runs {
        println!("    {} -> {} solutions", run.purpose, run.solutions);
        println!("    generated: {}", run.sparql);
    }
    println!("  JoinManager   : {:?}", r.join);
    println!("  final SQL     : {:?} ({} rows)", r.final_sql, r.result_rows);
    Ok(())
}
