//! Golden lint snapshots: the corpus gate behind `cargo xtask lint`.
//!
//! Two snapshots pin the linter's behaviour:
//!
//! * `lint_corpus.snap` — the committed SESQL corpus (the paper's
//!   Ex. 4.1–4.6 workload templates against the SmartGround databank)
//!   must lint *clean*: a new rule that starts firing on real queries is
//!   a false-positive regression and fails the gate.
//! * `lint_fixtures.snap` — one deliberately-defective and one clean
//!   fixture per rule: a rule that silently stops firing (or fires on
//!   the clean twin) also fails the gate.
//!
//! To regenerate after an intentional rule change:
//!
//! ```text
//! CROSSE_UPDATE_SNAPSHOTS=1 cargo test --test lint_golden
//! cargo xtask lint   # regenerates, then diffs via git
//! ```

use std::fmt::Write as _;

use crosse::core::session::Session;
use crosse::prelude::*;
use crosse::smartground::paper_examples;

fn session() -> Session {
    let engine = standard_engine(&SmartGroundConfig::tiny(), "director").unwrap();
    Session::new(&engine, "director").unwrap()
}

fn check(name: &str, got: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.snap"));
    if std::env::var_os("CROSSE_UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}) — regenerate with \
             CROSSE_UPDATE_SNAPSHOTS=1 cargo test --test lint_golden",
            path.display()
        )
    });
    assert_eq!(
        got, &want,
        "lint output for {name} diverged from its committed snapshot; if \
         the rule change is intentional, regenerate with \
         CROSSE_UPDATE_SNAPSHOTS=1 cargo test --test lint_golden"
    );
}

fn render(diags: &[crosse::core::Diagnostic]) -> String {
    if diags.is_empty() {
        "(clean)\n".to_string()
    } else {
        diags.iter().fold(String::new(), |mut s, d| {
            let _ = writeln!(s, "{d}");
            s
        })
    }
}

/// The committed corpus — every workload template must stay lint-clean.
#[test]
fn corpus_lints_clean() {
    let s = session();
    let mut out = String::new();
    for q in paper_examples("LF00000") {
        let diags = s.lint(&q.sesql).unwrap();
        let _ = writeln!(out, "== {} ==", q.name);
        out.push_str(&render(&diags));
        assert!(
            diags.is_empty(),
            "corpus query {} is no longer lint-clean: {diags:?}",
            q.name
        );
    }
    check("lint_corpus", &out);
}

/// One firing and one non-firing fixture per rule. The firing fixture's
/// diagnostics (codes, messages, spans) are pinned verbatim.
#[test]
fn rule_fixtures() {
    let s = session();
    let mut out = String::new();
    // (label, SESQL statement) pairs linted in the director's context.
    let sesql_fixtures: &[(&str, &str)] = &[
        ("L001 always-false literal", "SELECT name FROM landfill WHERE 1 = 2"),
        (
            "L001 contradictory equalities",
            "SELECT name FROM landfill WHERE city = 'Torino' AND city = 'Lyon'",
        ),
        ("L001 clean twin", "SELECT name FROM landfill WHERE city = 'Torino'"),
        ("L002 always-true literal", "SELECT name FROM landfill WHERE 1 = 1"),
        ("L002 self-comparison", "SELECT name FROM landfill WHERE city = city"),
        ("L002 clean twin", "SELECT name FROM landfill WHERE city <> name"),
        (
            "L003 implicit cross join",
            "SELECT name FROM landfill, elem_contained",
        ),
        (
            "L003 clean twin (equi-linked)",
            "SELECT name FROM landfill, elem_contained WHERE name = landfill_name",
        ),
        (
            "L004 string-numeric coercion",
            "SELECT name FROM landfill WHERE city = 3",
        ),
        ("L004 clean twin", "SELECT name FROM landfill WHERE city = 'Torino'"),
        (
            "L005 DISTINCT under GROUP BY",
            "SELECT DISTINCT city FROM landfill GROUP BY city",
        ),
        ("L005 clean twin", "SELECT city FROM landfill GROUP BY city"),
        (
            "E001 unreferenced condition tag",
            "SELECT elem_name FROM elem_contained WHERE ${amount > 10:cond1} \
             ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
        ),
        (
            "E001 clean twin",
            "SELECT elem_name FROM elem_contained WHERE ${amount > 10:cond1} \
             ENRICH REPLACEVARIABLE(cond1, elem_name, oreAssemblage)",
        ),
        (
            "E003 unresolvable property",
            "SELECT elem_name FROM elem_contained \
             ENRICH SCHEMAEXTENSION(elem_name, noSuchProperty)",
        ),
        (
            "E003 clean twin (stored query)",
            "SELECT elem_name FROM elem_contained WHERE ${elem_name = X:c1} \
             ENRICH REPLACECONSTANT(c1, X, dangerQuery)",
        ),
    ];
    for (label, stmt) in sesql_fixtures {
        let _ = writeln!(out, "== {label} ==");
        out.push_str(&render(&s.lint(stmt).unwrap()));
    }

    // L006 fires on ad-hoc SQL lint (prepare-time linting allows params).
    let _ = writeln!(out, "== L006 unbound params (ad-hoc SQL) ==");
    out.push_str(&render(
        &s.lint_sql("SELECT name FROM landfill WHERE city = $city").unwrap(),
    ));
    let _ = writeln!(out, "== L006 clean twin ==");
    out.push_str(&render(
        &s.lint_sql("SELECT name FROM landfill WHERE city = 'Torino'").unwrap(),
    ));

    // SPARQL rules in the session's context.
    let sparql_fixtures: &[(&str, &str)] = &[
        (
            "S001 bound-never-used",
            "SELECT ?s WHERE { ?s <urn:p> ?dead }",
        ),
        (
            "S001 clean twin (join variable)",
            "SELECT ?s WHERE { ?s <urn:p> ?o . ?o <urn:q> <urn:x> }",
        ),
        (
            "S002 projected-never-bound",
            "SELECT ?s ?ghost WHERE { ?s <urn:p> ?o . ?o <urn:q> <urn:x> }",
        ),
        ("S002 clean twin", "SELECT ?s ?o WHERE { ?s <urn:p> ?o }"),
        (
            "S003 always-false FILTER",
            "SELECT * WHERE { ?s <urn:p> ?o FILTER(1 > 2) }",
        ),
        (
            "S003 clean twin",
            "SELECT * WHERE { ?s <urn:p> ?o FILTER(?o > 2) }",
        ),
    ];
    for (label, sparql) in sparql_fixtures {
        let _ = writeln!(out, "== {label} ==");
        out.push_str(&render(&s.lint_sparql(sparql).unwrap()));
    }

    check("lint_fixtures", &out);

    // Beyond the snapshot: the seeded always-false fixture must keep
    // producing an error-severity L001 — the gate's canary.
    let diags = s.lint("SELECT name FROM landfill WHERE 1 = 2").unwrap();
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["L001"]);
    assert_eq!(
        crosse::relational::Severity::Error,
        diags[0].severity,
        "the seeded always-false fixture must stay an error"
    );
}
