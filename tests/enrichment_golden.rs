//! Golden-output tests pinning the paper's Ex. 4.1–4.6 enrichment results
//! on the running example of Fig. 3, so representation changes in the
//! value layer (string interning, hash-keyed dedup, join reordering,
//! pairs caching) cannot silently alter enrichment semantics.
//!
//! Row order is not part of the contract (UNION/DISTINCT are set-
//! oriented), so every expectation is sorted.

use crosse::prelude::*;

fn iri(s: &str) -> Term {
    Term::iri(s)
}
fn lit(s: &str) -> Term {
    Term::lit(s)
}

/// The running example: the SmartGround fragment of Fig. 3 plus the
/// director's personal ontology from the paper's examples.
fn engine() -> SesqlEngine {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE landfill (name TEXT, city TEXT);
         INSERT INTO landfill VALUES
           ('a', 'Torino'), ('b', 'Lyon'), ('c', 'Collegno');
         CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT, amount FLOAT);
         INSERT INTO elem_contained VALUES
           ('Hg', 'a', 12.5), ('Pb', 'a', 30.0), ('Cu', 'a', 100.0),
           ('As', 'b', 5.2), ('Hg', 'c', 3.5), ('Sn', 'c', 7.0);",
    )
    .unwrap();

    let kb = KnowledgeBase::new();
    kb.register_user("director");
    for (s, p, o) in [
        ("Hg", "dangerLevel", "5"),
        ("Pb", "dangerLevel", "4"),
        ("As", "dangerLevel", "5"),
        ("Cu", "dangerLevel", "1"),
    ] {
        kb.assert_statement("director", &Triple::new(iri(s), iri(p), lit(o))).unwrap();
    }
    for s in ["Hg", "Pb", "As"] {
        kb.assert_statement("director", &Triple::new(iri(s), iri("isA"), iri("HazardousWaste")))
            .unwrap();
    }
    for (s, o) in [("Torino", "Italy"), ("Collegno", "Italy"), ("Lyon", "France")] {
        kb.assert_statement("director", &Triple::new(iri(s), iri("inCountry"), iri(o)))
            .unwrap();
    }
    for (s, o) in [("Hg", "As"), ("Hg", "Sb"), ("Sn", "Cu")] {
        kb.assert_statement("director", &Triple::new(iri(s), iri("oreAssemblage"), iri(o)))
            .unwrap();
    }
    let engine = SesqlEngine::new(db, kb);
    engine
        .stored_queries()
        .register("dangerQuery", "SELECT ?e WHERE { ?e <dangerLevel> ?d . FILTER(?d >= 4) }")
        .unwrap();
    engine
}

/// Execute and render as sorted lexical rows (NULL → `∅`).
fn golden(engine: &SesqlEngine, sesql: &str) -> Vec<Vec<String>> {
    let result = engine.execute("director", sesql).unwrap();
    let mut rows: Vec<Vec<String>> = result
        .rows
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| if v.is_null() { "∅".to_string() } else { v.lexical_form() })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

fn rows(expect: &[&[&str]]) -> Vec<Vec<String>> {
    expect.iter().map(|r| r.iter().map(|s| s.to_string()).collect()).collect()
}

#[test]
fn ex41_schema_extension_golden() {
    let e = engine();
    let got = golden(
        &e,
        "SELECT elem_name, landfill_name FROM elem_contained \
         WHERE landfill_name = 'a' \
         ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
    );
    assert_eq!(
        got,
        rows(&[&["Cu", "a", "1"], &["Hg", "a", "5"], &["Pb", "a", "4"]])
    );
}

#[test]
fn ex42_schema_replacement_golden() {
    let e = engine();
    let got = golden(
        &e,
        "SELECT name, city FROM landfill ENRICH SCHEMAREPLACEMENT(city, inCountry)",
    );
    assert_eq!(
        got,
        rows(&[&["a", "Italy"], &["b", "France"], &["c", "Italy"]])
    );
}

#[test]
fn ex43_bool_extension_golden() {
    let e = engine();
    let got = golden(
        &e,
        "SELECT elem_name FROM elem_contained WHERE landfill_name = 'a' \
         ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)",
    );
    assert_eq!(
        got,
        rows(&[&["Cu", "false"], &["Hg", "true"], &["Pb", "true"]])
    );
}

#[test]
fn ex44_bool_replacement_golden() {
    let e = engine();
    let got = golden(
        &e,
        "SELECT name, city FROM landfill \
         ENRICH BOOLSCHEMAREPLACEMENT(city, inCountry, Italy)",
    );
    assert_eq!(
        got,
        rows(&[&["a", "true"], &["b", "false"], &["c", "true"]])
    );
}

#[test]
fn ex45_replace_constant_golden() {
    let e = engine();
    // dangerQuery selects dangerLevel >= 4 → {Hg, Pb, As}.
    let got = golden(
        &e,
        "SELECT landfill_name, elem_name FROM elem_contained \
         WHERE ${elem_name = HazardousWaste:cond1} \
         ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)",
    );
    assert_eq!(
        got,
        rows(&[&["a", "Hg"], &["a", "Pb"], &["b", "As"], &["c", "Hg"]])
    );
}

#[test]
fn ex45_replace_constant_property_golden() {
    // The property-based variant: the constant's objects under `isA` are
    // fetched with the constant pushed into the SPARQL pattern. `isA`
    // relates elements → HazardousWaste, so expanding the *subject* side
    // through a dedicated inclusion property exercises the pushdown.
    let e = engine();
    e.knowledge_base()
        .assert_statement(
            "director",
            &Triple::new(iri("DangerList"), iri("includes"), iri("Hg")),
        )
        .unwrap();
    e.knowledge_base()
        .assert_statement(
            "director",
            &Triple::new(iri("DangerList"), iri("includes"), iri("As")),
        )
        .unwrap();
    let got = golden(
        &e,
        "SELECT landfill_name, elem_name FROM elem_contained \
         WHERE ${elem_name = DangerList:cond1} \
         ENRICH REPLACECONSTANT(cond1, DangerList, includes)",
    );
    // Hg in a and c; As in b.
    assert_eq!(got, rows(&[&["a", "Hg"], &["b", "As"], &["c", "Hg"]]));
}

const EX46: &str = "SELECT e1.landfill_name AS l1, e2.landfill_name AS l2, e1.elem_name \
                    FROM elem_contained AS e1, elem_contained AS e2 \
                    WHERE e1.landfill_name <> e2.landfill_name AND \
                          ${ e1.elem_name = e2.elem_name :cond1} \
                    ENRICH REPLACEVARIABLE(cond1, e2.elem_name, oreAssemblage)";

const EX46_GOLDEN: &[&[&str]] = &[
    &["a", "b", "Hg"],
    &["a", "c", "Cu"],
    &["a", "c", "Hg"],
    &["b", "a", "As"],
    &["b", "c", "As"],
    &["c", "a", "Hg"],
    &["c", "a", "Sn"],
    &["c", "b", "Hg"],
];

#[test]
fn ex46_replace_variable_golden() {
    let e = engine();
    assert_eq!(golden(&e, EX46), rows(EX46_GOLDEN));
}

#[test]
fn ex46_replace_variable_golden_stable_under_caching() {
    // Cold pairs cache, warm pairs cache, and cache-disabled executions
    // must all produce the identical row set.
    let e = engine();
    let cold = golden(&e, EX46);
    let warm = golden(&e, EX46);
    assert_eq!(cold, warm, "pairs-cache hit changed the result");
    assert_eq!(warm, rows(EX46_GOLDEN));

    let uncached = engine().with_options(EnrichOptions {
        use_cache: false,
        ..EnrichOptions::default()
    });
    assert_eq!(golden(&uncached, EX46), rows(EX46_GOLDEN));
}

#[test]
fn ex46_leg_reporting_distinguishes_recomputed_cached_shared() {
    // Cold run: the SPARQL leg is recomputed (not a pairs-table hit).
    let e = engine();
    let cold = e.execute("director", EX46).unwrap();
    assert_eq!(cold.report.sparql_runs.len(), 1);
    assert!(!cold.report.sparql_runs[0].shared, "cold leg cannot be shared");
    // Warm run: served from the persistent pairs table — `shared: true`
    // with the original leg's solution count, zero duration.
    let warm = e.execute("director", EX46).unwrap();
    let leg = &warm.report.sparql_runs[0];
    assert!(leg.cached && leg.shared, "warm pairs hit must report cached+shared");
    assert_eq!(leg.solutions, cold.report.sparql_runs[0].solutions);
    // The persistent pairs table exists exactly once and clear_cache
    // removes it.
    let pairs: Vec<String> = e
        .database()
        .catalog()
        .table_names()
        .into_iter()
        .filter(|t| t.starts_with("__kb_pairs"))
        .collect();
    assert_eq!(pairs.len(), 1, "{pairs:?}");
    e.clear_cache();
    assert!(
        !e.database().catalog().table_names().iter().any(|t| t.starts_with("__kb_pairs")),
        "clear_cache must drop the persistent pairs table"
    );
    // Cache off: recomputed every time, never shared, no persistent table.
    let uncached = engine().with_options(EnrichOptions {
        use_cache: false,
        ..EnrichOptions::default()
    });
    uncached.execute("director", EX46).unwrap();
    let again = uncached.execute("director", EX46).unwrap();
    assert!(!again.report.sparql_runs[0].shared);
    assert!(
        !uncached.database().catalog().table_names().iter().any(|t| t.starts_with("__kb_pairs")),
        "uncached executions must drop their pairs table"
    );
}

#[test]
fn ex46_cache_invalidates_on_kb_change() {
    let e = engine();
    assert_eq!(golden(&e, EX46), rows(EX46_GOLDEN));
    // New assemblage knowledge: Pb occurs with Sn → e2 matches through
    // (Sn,Pb)/(Pb,Sn) pairs must appear after the KB version bump.
    e.knowledge_base()
        .assert_statement(
            "director",
            &Triple::new(iri("Pb"), iri("oreAssemblage"), iri("Sn")),
        )
        .unwrap();
    let got = golden(&e, EX46);
    assert!(
        got.contains(&rows(&[&["a", "c", "Pb"]])[0]),
        "stale pairs cache served after KB mutation: {got:?}"
    );
    assert!(got.contains(&rows(&[&["c", "a", "Sn"]])[0]));
}
