//! End-to-end integration tests: the full CroSSE stack, cross-crate.

use crosse::core::platform::CrossePlatform;
use crosse::prelude::*;
use crosse::smartground::{
    danger_level, landfill_name, paper_examples, standard_engine, SmartGroundConfig,
};

fn tiny_engine() -> SesqlEngine {
    standard_engine(&SmartGroundConfig::tiny(), "director").unwrap()
}

#[test]
fn all_paper_examples_run_end_to_end() {
    let engine = tiny_engine();
    for q in paper_examples(&landfill_name(0)) {
        let r = engine
            .execute("director", &q.sesql)
            .unwrap_or_else(|e| panic!("{} failed: {e}", q.name));
        assert!(
            r.report.total() > std::time::Duration::ZERO,
            "{}: pipeline must be timed",
            q.name
        );
    }
}

#[test]
fn schema_extension_agrees_with_manual_join() {
    // The enrichment must compute exactly what a manual KB-to-SQL join
    // would: for each contained element of LF00000, its danger level.
    let engine = tiny_engine();
    let target = landfill_name(0);
    let r = engine
        .execute(
            "director",
            &format!(
                "SELECT elem_name FROM elem_contained WHERE landfill_name = '{target}' \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)"
            ),
        )
        .unwrap();
    assert!(!r.rows.is_empty());
    for row in &r.rows.rows {
        let elem = row[0].lexical_form();
        let expected = danger_level(&elem);
        assert_eq!(
            row[1],
            Value::Int(expected),
            "danger level of {elem} must match the ontology source"
        );
    }
}

#[test]
fn bool_extension_matches_threshold_rule() {
    let engine = tiny_engine();
    let target = landfill_name(1);
    let r = engine
        .execute(
            "director",
            &format!(
                "SELECT elem_name FROM elem_contained WHERE landfill_name = '{target}' \
                 ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)"
            ),
        )
        .unwrap();
    for row in &r.rows.rows {
        let elem = row[0].lexical_form();
        let expected = danger_level(&elem) >= crosse::smartground::ontogen::HAZARD_THRESHOLD;
        assert_eq!(row[1], Value::Bool(expected), "hazard flag of {elem}");
    }
}

#[test]
fn replace_constant_equals_manual_filter() {
    // ex4.5 must equal: SELECT landfill_name FROM elem_contained WHERE
    // elem_name IN (dangerous elements).
    let engine = tiny_engine();
    let r = engine
        .execute(
            "director",
            "SELECT landfill_name FROM elem_contained \
             WHERE ${elem_name = HazardousWaste:cond1} \
             ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)",
        )
        .unwrap();
    let dangerous: Vec<String> = crosse::smartground::schema::ELEMENTS
        .iter()
        .filter(|(s, _, _)| danger_level(s) >= 4)
        .map(|(s, _, _)| format!("'{s}'"))
        .collect();
    let manual = engine
        .database()
        .query(&format!(
            "SELECT landfill_name FROM elem_contained WHERE elem_name IN ({})",
            dangerous.join(", ")
        ))
        .unwrap();
    let mut a: Vec<String> = r.rows.rows.iter().map(|x| x[0].lexical_form()).collect();
    let mut b: Vec<String> = manual.rows.iter().map(|x| x[0].lexical_form()).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn replace_variable_supersets_baseline() {
    // With include_self (default), ex4.6 must contain every row of the
    // plain common-element self-join.
    let engine = tiny_engine();
    let q = paper_examples(&landfill_name(0))
        .into_iter()
        .find(|q| q.name == "ex4.6-replace-variable")
        .unwrap();
    let enriched = engine.execute("director", &q.sesql).unwrap();
    let baseline = engine.database().query(&q.baseline_sql).unwrap();
    let enriched_set: std::collections::HashSet<Vec<String>> = enriched
        .rows
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.lexical_form()).collect())
        .collect();
    for row in &baseline.rows {
        let key: Vec<String> = row.iter().map(|v| v.lexical_form()).collect();
        assert!(
            enriched_set.contains(&key),
            "baseline row {key:?} missing from the enriched result"
        );
    }
}

#[test]
fn contexts_isolate_users_end_to_end() {
    let engine = tiny_engine();
    let kb = engine.knowledge_base();
    kb.register_user("skeptic"); // no knowledge at all
    let sesql = format!(
        "SELECT elem_name FROM elem_contained WHERE landfill_name = '{}' \
         ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
        landfill_name(0)
    );
    let skeptic = engine.execute("skeptic", &sesql).unwrap();
    assert!(
        skeptic.rows.rows.iter().all(|r| r[1].is_null()),
        "user without knowledge gets NULL enrichments"
    );
}

#[test]
fn belief_import_changes_query_results() {
    let engine = tiny_engine();
    let kb = engine.knowledge_base();
    kb.register_user("apprentice");
    let sesql = format!(
        "SELECT elem_name FROM elem_contained WHERE landfill_name = '{}' \
         ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)",
        landfill_name(0)
    );
    let before = engine.execute("apprentice", &sesql).unwrap();
    assert!(before.rows.rows.iter().all(|r| r[1] == Value::Bool(false)));

    // Adopt every isA statement from the director.
    for info in kb.public_statements() {
        if info.triple.predicate == Term::iri("isA") {
            kb.accept_statement("apprentice", info.id).unwrap();
        }
    }
    let after = engine.execute("apprentice", &sesql).unwrap();
    assert_eq!(
        before.rows.rows.len(),
        after.rows.rows.len(),
        "bool extension never changes cardinality"
    );
    let flips = after
        .rows
        .rows
        .iter()
        .filter(|r| r[1] == Value::Bool(true))
        .count();
    let expected = after
        .rows
        .rows
        .iter()
        .filter(|r| danger_level(&r[0].lexical_form()) >= 4)
        .count();
    assert_eq!(flips, expected, "adopted knowledge now flags hazards");
}

#[test]
fn rdfs_inference_feeds_enrichment() {
    // Classes inferred by the reasoner are visible to SESQL through the
    // inferred graph: HeavyMetal ⊑ Metal means rdf:type edges for Metal.
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
         INSERT INTO elem_contained VALUES ('Hg','a'), ('Fe','a');",
    )
    .unwrap();
    let kb = KnowledgeBase::new();
    kb.register_user("u");
    kb.load_common(&[
        Triple::new(
            Term::iri("HeavyMetal"),
            crosse::rdf::schema::rdfs_subclass_of(),
            Term::iri("Pollutant"),
        ),
        Triple::new(
            Term::iri("Hg"),
            crosse::rdf::schema::rdf_type(),
            Term::iri("HeavyMetal"),
        ),
    ]);
    kb.materialize_inferences();
    let engine = SesqlEngine::new(db, kb);
    let r = engine
        .execute(
            "u",
            "SELECT elem_name FROM elem_contained \
             ENRICH BOOLSCHEMAEXTENSION(elem_name, type, Pollutant)",
        )
        .unwrap();
    let by_elem: std::collections::HashMap<String, &Value> = r
        .rows
        .rows
        .iter()
        .map(|row| (row[0].lexical_form(), &row[1]))
        .collect();
    assert_eq!(by_elem["Hg"], &Value::Bool(true), "inferred type reached SESQL");
    assert_eq!(by_elem["Fe"], &Value::Bool(false));
}

#[test]
fn federation_feeds_sesql() {
    use std::sync::Arc;
    let remote = Database::new();
    remote
        .execute_script(
            "CREATE TABLE landfill (name TEXT, city TEXT);
             INSERT INTO landfill VALUES ('x','Torino'), ('y','Lyon');",
        )
        .unwrap();
    let fed = FederatedDatabase::new();
    fed.register_source(Arc::new(RemoteSource::new(
        "nat",
        remote,
        LatencyModel::instant(),
    )))
    .unwrap();
    let kb = KnowledgeBase::new();
    kb.register_user("u");
    kb.assert_statement(
        "u",
        &Triple::new(Term::iri("Torino"), Term::iri("inCountry"), Term::iri("Italy")),
    )
    .unwrap();
    let engine = SesqlEngine::new(fed.local().clone(), kb);
    let r = engine
        .execute(
            "u",
            "SELECT name, city FROM nat__landfill \
             ENRICH SCHEMAREPLACEMENT(city, inCountry)",
        )
        .unwrap();
    let by_name: std::collections::HashMap<String, String> = r
        .rows
        .rows
        .iter()
        .map(|row| (row[0].lexical_form(), row[1].lexical_form()))
        .collect();
    assert_eq!(by_name["x"], "Italy");
    assert_eq!(by_name["y"], "", "unknown city → NULL");
}

#[test]
fn platform_full_session() {
    // A realistic session: register, annotate, import, query, recommend.
    let db = crosse::smartground::generate(&SmartGroundConfig::tiny()).unwrap();
    let platform = CrossePlatform::new(db, KnowledgeBase::new());
    platform.register_user("anna").unwrap();
    platform.register_user("ben").unwrap();

    let id = platform
        .integrated_annotation(
            "anna",
            "elem_contained",
            "elem_name",
            "Hg",
            "dangerLevel",
            Term::lit("5"),
        )
        .or_else(|_| {
            // Hg may not be in the tiny sample; fall back to any element.
            let rs = platform
                .database()
                .query("SELECT elem_name FROM elem_contained LIMIT 1")
                .unwrap();
            let elem = rs.rows[0][0].lexical_form();
            platform.integrated_annotation(
                "anna",
                "elem_contained",
                "elem_name",
                &elem,
                "dangerLevel",
                Term::lit("5"),
            )
        })
        .unwrap();

    platform.import_statement("ben", id).unwrap();
    let r = platform
        .query(
            "ben",
            "SELECT elem_name FROM elem_contained \
             ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
        )
        .unwrap();
    assert!(r.rows.rows.iter().any(|row| !row[1].is_null()));

    let peers = crosse::core::recommend::recommend_peers(&platform, "ben", 3);
    assert_eq!(peers[0].item, "anna");
    assert_eq!(platform.query_log().len(), 1);
}

#[test]
fn multi_enrichment_pipeline_report_is_complete() {
    let engine = tiny_engine();
    let r = engine
        .execute(
            "director",
            &format!(
                "SELECT elem_name, landfill_name FROM elem_contained \
                 WHERE landfill_name = '{}' \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel) \
                        BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste) \
                        SCHEMAREPLACEMENT(landfill_name, inCountry)",
                landfill_name(2)
            ),
        )
        .unwrap();
    assert_eq!(r.report.sparql_runs.len(), 3, "one SPARQL leg per clause");
    // Output: elem_name, inCountry (replacement), dangerLevel, HazardousWaste.
    let names: Vec<String> = r.rows.schema.columns.iter().map(|c| c.name.clone()).collect();
    assert_eq!(names, vec!["elem_name", "inCountry", "dangerLevel", "HazardousWaste"]);
}

#[test]
fn concurrent_queries_share_one_engine() {
    let engine = std::sync::Arc::new(tiny_engine());
    let mut handles = Vec::new();
    for i in 0..8 {
        let engine = std::sync::Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let target = landfill_name(i % 10);
            let r = engine
                .execute(
                    "director",
                    &format!(
                        "SELECT elem_name FROM elem_contained \
                         WHERE landfill_name = '{target}' \
                         ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)"
                    ),
                )
                .unwrap();
            r.rows.len()
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
