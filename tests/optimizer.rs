//! The plan-rewrite optimizer layer: pass toggles, limit pushdown
//! semantics (asserted through the scanned-rows counter), shared-subplan
//! spooling, and property tests that every pass subset is result-
//! equivalent to the unoptimized plan.

use proptest::prelude::*;

use crosse::relational::{Database, OptimizerConfig, Row, Value};

fn db_two_tables() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE t1 (a INT, b TEXT, c FLOAT);
         CREATE TABLE t2 (d INT, e TEXT);",
    )
    .unwrap();
    let t1 = db.catalog().get_table("t1").unwrap();
    let t2 = db.catalog().get_table("t2").unwrap();
    let tags = ["x", "y", "z", "x", "w"];
    let mut rows = Vec::new();
    for i in 0i64..200 {
        rows.push(vec![
            Value::Int(i % 23),
            if i % 11 == 0 { Value::Null } else { Value::from(tags[(i % 5) as usize]) },
            Value::Float((i % 7) as f64 * 1.5),
        ]);
    }
    t1.insert_many(rows).unwrap();
    let mut rows = Vec::new();
    for i in 0i64..120 {
        rows.push(vec![
            Value::Int(i % 19),
            if i % 13 == 0 { Value::Null } else { Value::from(tags[(i % 4) as usize]) },
        ]);
    }
    t2.insert_many(rows).unwrap();
    db
}

/// Run `sql` under `cfg` and return the result rows.
fn run_with(db: &Database, cfg: OptimizerConfig, sql: &str) -> Vec<Row> {
    db.set_optimizer_config(cfg);
    let out = db.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}")).rows;
    db.set_optimizer_config(OptimizerConfig::default());
    out
}

fn explain(db: &Database, sql: &str) -> String {
    let rs = db.query(&format!("EXPLAIN {sql}")).unwrap();
    rs.rows
        .iter()
        .map(|r| r[0].lexical_form())
        .collect::<Vec<_>>()
        .join("\n")
}

// ---- limit pushdown --------------------------------------------------------

#[test]
fn limit_sinks_below_project_and_into_union_all_members() {
    let db = db_two_tables();
    let text = explain(
        &db,
        "SELECT a FROM t1 UNION ALL SELECT d FROM t2 LIMIT 3 OFFSET 2",
    );
    // Pass fired and the member caps sit below the member projections.
    assert!(text.contains("limit-pushdown"), "{text}");
    let union_at = text.find("UnionAll").expect("union in plan");
    let inner_limit = text[union_at..].find("Limit: limit=Some(5)");
    assert!(
        inner_limit.is_some(),
        "members should be capped at limit+offset:\n{text}"
    );
}

#[test]
fn limit_over_projected_union_stops_member_scans_early() {
    let db = Database::new();
    db.execute_script("CREATE TABLE big1 (x INT); CREATE TABLE big2 (y INT);").unwrap();
    for name in ["big1", "big2"] {
        let t = db.catalog().get_table(name).unwrap();
        t.insert_many((0..50_000).map(|i| vec![Value::Int(i)]).collect())
            .unwrap();
    }
    let mut cur = db
        .query_cursor("SELECT x + 1 FROM big1 UNION ALL SELECT y + 1 FROM big2 LIMIT 5")
        .unwrap();
    let mut n = 0;
    while let Some(r) = cur.next_row() {
        r.unwrap();
        n += 1;
    }
    assert_eq!(n, 5);
    let scanned = cur.rows_scanned();
    assert!(
        scanned < 5_000,
        "LIMIT 5 over two projected 50k members scanned {scanned} rows"
    );
}

#[test]
fn limit_offset_over_union_all_matches_unoptimized() {
    let db = db_two_tables();
    let sql = "SELECT b FROM t1 UNION ALL SELECT e FROM t2 LIMIT 7 OFFSET 5";
    let optimized = run_with(&db, OptimizerConfig::default(), sql);
    let plain = run_with(&db, OptimizerConfig::none(), sql);
    assert_eq!(optimized, plain);
}

// ---- shared subplans -------------------------------------------------------

#[test]
fn self_join_scans_base_table_once_through_spool() {
    let db = Database::new();
    db.execute("CREATE TABLE big (x INT, t TEXT)").unwrap();
    let t = db.catalog().get_table("big").unwrap();
    t.insert_many(
        (0..10_000)
            .map(|i| vec![Value::Int(i % 97), Value::from("k")])
            .collect(),
    )
    .unwrap();
    // Both union members scan `big` twice each; the spool makes the heap
    // fetch happen once, and the scanned counter proves it.
    let sql = "SELECT e1.x FROM big e1, big e2 WHERE e1.x = e2.x AND e1.t <> e2.t \
               UNION ALL SELECT e1.x FROM big e1, big e2 WHERE e1.x = e2.x AND e1.t <> e2.t";
    let text = explain(&db, sql);
    assert!(text.contains("Shared spool #"), "{text}");
    assert!(text.contains("-- cse:"), "{text}");

    let mut cur = db.query_cursor(sql).unwrap();
    while let Some(r) = cur.next_row() {
        r.unwrap();
    }
    assert_eq!(
        cur.rows_scanned(),
        10_000,
        "four structurally-equal scans must fetch the heap exactly once"
    );
}

#[test]
fn shared_spool_results_match_unshared() {
    let db = db_two_tables();
    let sql = "SELECT b FROM t1 WHERE a > 5 UNION SELECT b FROM t1 WHERE a > 5";
    let optimized = run_with(&db, OptimizerConfig::default(), sql);
    let plain = run_with(&db, OptimizerConfig::none(), sql);
    assert_eq!(optimized, plain);
}

#[test]
fn optimizer_config_toggles_are_independent() {
    let db = db_two_tables();
    let sql = "SELECT a FROM t1 UNION ALL SELECT d FROM t2 LIMIT 3";
    // CSE off, limit on: no spool note, limit note present.
    db.set_optimizer_config(OptimizerConfig {
        shared_subplans: false,
        ..OptimizerConfig::default()
    });
    let text = explain(&db, "SELECT x.b FROM t1 x, t1 y WHERE x.a = y.a");
    assert!(!text.contains("Shared spool"), "{text}");
    db.set_optimizer_config(OptimizerConfig::none());
    let text = explain(&db, sql);
    assert!(!text.contains("--"), "no pass may fire when disabled:\n{text}");
    db.set_optimizer_config(OptimizerConfig::default());
}

// ---- equivalence property tests --------------------------------------------

/// Every subset of passes worth distinguishing, all with the plan-
/// invariant validator explicitly on: every property-test query also
/// asserts that no pass trips a structural invariant.
fn configs() -> Vec<OptimizerConfig> {
    vec![
        OptimizerConfig { validate: true, ..OptimizerConfig::none() },
        OptimizerConfig { filter_pushdown: true, validate: true, ..OptimizerConfig::none() },
        OptimizerConfig { prune_projections: true, validate: true, ..OptimizerConfig::none() },
        OptimizerConfig { limit_pushdown: true, validate: true, ..OptimizerConfig::none() },
        OptimizerConfig { shared_subplans: true, validate: true, ..OptimizerConfig::none() },
        OptimizerConfig { validate: true, ..OptimizerConfig::default() },
    ]
}

// ---- plan-invariant validator ----------------------------------------------

/// Injected-bug tests: a deliberately broken pass (via the test-only
/// sabotage hook) must be caught by the validator, with the error naming
/// the offending pass.
#[test]
fn validator_catches_sabotaged_limit_pushdown() {
    use crosse::relational::opt::Sabotage;
    let db = db_two_tables();
    db.set_optimizer_config(OptimizerConfig {
        validate: true,
        sabotage: Sabotage::WidenLimit,
        ..OptimizerConfig::default()
    });
    let err = db.query("SELECT a FROM t1 LIMIT 2").unwrap_err();
    assert!(
        err.to_string().contains("limit_pushdown"),
        "error should name the broken pass: {err}"
    );
    db.set_optimizer_config(OptimizerConfig::default());
}

#[test]
fn validator_catches_sabotaged_projection_pruning() {
    use crosse::relational::opt::Sabotage;
    let db = db_two_tables();
    db.set_optimizer_config(OptimizerConfig {
        validate: true,
        sabotage: Sabotage::DropProjectColumn,
        ..OptimizerConfig::default()
    });
    let err = db.query("SELECT a, b FROM t1 WHERE a > 3").unwrap_err();
    assert!(
        err.to_string().contains("prune_projections"),
        "error should name the broken pass: {err}"
    );
    db.set_optimizer_config(OptimizerConfig::default());
}

/// With validation off the sabotaged pass slips through and corrupts the
/// result — proof the injected bug is real (and that release builds,
/// where `validate` defaults off, rely on the debug gate having run).
#[test]
fn sabotage_is_a_real_bug_without_validation() {
    use crosse::relational::opt::Sabotage;
    let db = db_two_tables();
    db.set_optimizer_config(OptimizerConfig {
        validate: false,
        sabotage: Sabotage::WidenLimit,
        ..OptimizerConfig::default()
    });
    let rows = db.query("SELECT a FROM t1 LIMIT 2").unwrap().rows;
    assert_eq!(rows.len(), 3, "WidenLimit should leak one extra row");
    db.set_optimizer_config(OptimizerConfig::default());
}

/// A generated SELECT core over t1/t2 that is type-correct by
/// construction (comparisons stay within one column's type).
fn arb_core() -> impl Strategy<Value = String> {
    let filter = prop_oneof![
        Just(String::new()),
        (0i64..25).prop_map(|n| format!(" WHERE a > {n}")),
        "[wxyz]".prop_map(|s| format!(" WHERE b = '{s}'")),
        (0i64..25, "[wxyz]").prop_map(|(n, s)| format!(" WHERE a < {n} AND b <> '{s}'")),
        (0i64..10).prop_map(|n| format!(" WHERE c >= {n}.0 OR b IS NULL")),
    ];
    // Single-table shapes take the random filter; join shapes carry
    // their own complete WHERE (extra unqualified conjuncts would be
    // ambiguous across the join).
    prop_oneof![
        (
            prop_oneof![
                Just("SELECT a, b FROM t1"),
                Just("SELECT b, a + 1 FROM t1"),
                Just("SELECT DISTINCT b, a FROM t1"),
            ],
            filter,
        )
            .prop_map(|(shape, filter)| format!("{shape}{filter}")),
        prop_oneof![
            Just("SELECT t1.a, t2.e FROM t1, t2 WHERE t1.a = t2.d".to_string()),
            Just(
                "SELECT t1.b, t2.e FROM t1 JOIN t2 ON t1.b = t2.e WHERE t1.a > 3"
                    .to_string()
            ),
            Just(
                "SELECT x.a, y.b FROM t1 x, t1 y WHERE x.a = y.a AND x.c > y.c"
                    .to_string()
            ),
        ],
    ]
}

/// Optional ORDER BY / LIMIT / OFFSET suffix.
fn arb_tail() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just(" ORDER BY 1".to_string()),
        (1u64..8).prop_map(|k| format!(" LIMIT {k}")),
        (1u64..8, 0u64..4).prop_map(|(k, o)| format!(" ORDER BY 1, 2 LIMIT {k} OFFSET {o}")),
    ]
}

/// A two-column core suitable as a UNION member.
fn arb_member() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("SELECT a, b FROM t1".to_string()),
        Just("SELECT d, e FROM t2".to_string()),
        Just("SELECT a, b FROM t1 WHERE a > 7".to_string()),
        Just("SELECT t1.a, t2.e FROM t1, t2 WHERE t1.a = t2.d".to_string()),
    ]
}

/// A full statement: one core, optionally UNION/UNION ALL another core of
/// the same arity, optionally ORDER BY / LIMIT.
fn arb_query() -> impl Strategy<Value = String> {
    prop_oneof![
        (arb_core(), arb_tail()).prop_map(|(core, tail)| format!("{core}{tail}")),
        (
            arb_member(),
            prop_oneof![Just("UNION"), Just("UNION ALL")],
            arb_member(),
            arb_tail(),
        )
            .prop_map(|(a, u, b, tail)| format!("{a} {u} {b}{tail}")),
    ]
}

proptest! {
    /// Optimized execution is row-for-row identical to the unoptimized
    /// plan, for every pass subset — the passes are pure plan rewrites.
    #[test]
    fn optimized_equals_unoptimized(sql in arb_query()) {
        let db = db_two_tables();
        let baseline = run_with(&db, OptimizerConfig::none(), &sql);
        for cfg in configs() {
            let got = run_with(&db, cfg, &sql);
            prop_assert_eq!(&got, &baseline, "config {:?} diverged on {}", cfg, sql);
        }
    }
}

#[test]
fn prepared_explain_shows_optimized_plan() {
    let db = db_two_tables();
    let p = db.prepare("SELECT a FROM t1 ORDER BY a LIMIT 2").unwrap();
    let text = p.explain().unwrap();
    assert!(text.contains("SeqScan: t1"), "{text}");
    // Parameterised statements defer to explain_with.
    let p = db.prepare("SELECT a FROM t1 WHERE b = $tag").unwrap();
    assert!(p.explain().is_err());
    let text = p
        .explain_with(&crosse::relational::Params::new().set("tag", "x"))
        .unwrap();
    assert!(text.contains("Filter") || text.contains("SeqScan"), "{text}");
}
