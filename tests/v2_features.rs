//! Cross-crate integration tests for the second-wave features
//! (DESIGN.md §5c): secondary indexes under SESQL, aggregate stored
//! queries, federation pushdown feeding an engine, and the SPARQL-leg
//! cache observed through the platform.

use std::sync::Arc;
use std::time::Duration;

use crosse::federation::{FederatedDatabase, LatencyModel, RemoteSource};
use crosse::prelude::*;
use crosse::smartground::{landfill_name, standard_engine, SmartGroundConfig};

fn engine() -> SesqlEngine {
    standard_engine(&SmartGroundConfig::tiny(), "director").unwrap()
}

#[test]
fn replace_constant_runs_on_indexed_attr_with_same_result() {
    // REPLACECONSTANT rewrites the tagged condition into `elem_name IN
    // (...)` — exactly the shape a secondary index accelerates. The result
    // must be identical with and without the index.
    let sesql = "SELECT landfill_name FROM elem_contained \
                 WHERE ${elem_name = HazardousWaste:cond1} \
                 ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)";
    let plain = engine().execute("director", sesql).unwrap();
    let indexed_engine = engine();
    indexed_engine
        .database()
        .execute("CREATE INDEX idx_elem ON elem_contained (elem_name)")
        .unwrap();
    let indexed = indexed_engine.execute("director", sesql).unwrap();
    assert_eq!(plain.rows.rows, indexed.rows.rows);
    assert!(!plain.rows.rows.is_empty(), "fixture has hazardous elements");
}

#[test]
fn aggregate_stored_query_drives_replace_constant() {
    // A stored query using SPARQL 1.1 aggregates: elements that carry at
    // least two statements in the director's context (dangerLevel + isA
    // for the hazardous ones).
    let e = engine();
    e.stored_queries()
        .register(
            "wellDescribed",
            "SELECT ?e (COUNT(?p) AS ?n) WHERE { ?e ?p ?o } \
             GROUP BY ?e HAVING(?n >= 2)",
        )
        .unwrap();
    let r = e
        .execute(
            "director",
            "SELECT elem_name FROM elem_contained \
             WHERE ${elem_name = Interesting:c1} \
             ENRICH REPLACECONSTANT(c1, Interesting, wellDescribed)",
        )
        .unwrap();
    assert!(!r.rows.rows.is_empty(), "hazardous elements have ≥2 statements");
    // Every returned element must indeed have ≥2 statements about it.
    let kb = e.knowledge_base();
    let graphs = kb.context_graphs("director");
    let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
    for row in &r.rows.rows {
        let elem = row[0].lexical_form();
        let sols = crosse::rdf::sparql::eval::query(
            kb.store(),
            &refs,
            &format!("SELECT ?p ?o WHERE {{ <{elem}> ?p ?o }}"),
        )
        .unwrap();
        assert!(sols.len() >= 2, "{elem} has only {} statement(s)", sols.len());
    }
}

#[test]
fn property_path_stored_query_expands_hierarchy() {
    // A stored query with a sequence/alternative path works end to end:
    // everything reachable from Hg through symmetric assemblage edges.
    let e = engine();
    e.stored_queries()
        .register(
            "hgCluster",
            "SELECT ?x WHERE { <Hg> (<oreAssemblage>|^<oreAssemblage>)+ ?x }",
        )
        .unwrap();
    let r = e
        .execute(
            "director",
            "SELECT elem_name, landfill_name FROM elem_contained \
             WHERE ${elem_name = Cluster:c1} \
             ENRICH REPLACECONSTANT(c1, Cluster, hgCluster)",
        )
        .unwrap();
    // Whatever matched must be in Hg's assemblage cluster (As or Sb or Hg
    // itself via a cycle); the fixture stores As in some landfill.
    for row in &r.rows.rows {
        let elem = row[0].lexical_form();
        assert!(
            ["Hg", "As", "Sb"].contains(&elem.as_str()),
            "unexpected cluster member {elem}"
        );
    }
}

#[test]
fn pushdown_federation_feeds_a_sesql_engine() {
    // Build a mediator over a remote SmartGround databank, pull one
    // landfill's rows via pushdown, materialise them locally, and run a
    // SESQL enrichment on the staged copy.
    let source_engine = engine();
    let fed = FederatedDatabase::new();
    fed.register_source(Arc::new(RemoteSource::new(
        "eu",
        source_engine.database().clone(),
        LatencyModel {
            per_request: Duration::from_micros(50),
            per_row: Duration::from_micros(1),
            realtime: false,
        },
    )))
    .unwrap();
    let target = landfill_name(0);
    let out = fed
        .query_pushdown(&format!(
            "SELECT elem_name, landfill_name, amount FROM eu__elem_contained \
             WHERE landfill_name = '{target}'"
        ))
        .unwrap();
    assert!(out.pushed[0].remote_sql.contains("WHERE"));
    assert!(!out.result.is_empty());

    // Materialise the mediated result as the engine's own table.
    let local = Database::new();
    local
        .execute("CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT, amount FLOAT)")
        .unwrap();
    local
        .catalog()
        .get_table("elem_contained")
        .unwrap()
        .insert_many(out.result.rows.clone())
        .unwrap();
    let kb = source_engine.knowledge_base().clone();
    let mediated = SesqlEngine::new(local, kb);
    let r = mediated
        .execute(
            "director",
            "SELECT elem_name FROM elem_contained \
             ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)",
        )
        .unwrap();
    assert_eq!(r.rows.len(), out.result.len());
}

#[test]
fn cache_behaviour_visible_through_platform() {
    use crosse::core::platform::CrossePlatform;
    let p = CrossePlatform::from_engine(engine());
    let sesql = "SELECT elem_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";
    let r1 = p.query("director", sesql).unwrap();
    let r2 = p.query("director", sesql).unwrap();
    assert!(!r1.report.sparql_runs[0].cached);
    assert!(r2.report.sparql_runs[0].cached);
    // An annotation through the platform invalidates the cache.
    p.independent_annotation(
        "director",
        Term::iri("Xx"),
        Term::iri("note"),
        Term::lit("y"),
    )
    .unwrap();
    let r3 = p.query("director", sesql).unwrap();
    assert!(!r3.report.sparql_runs[0].cached);
}

#[test]
fn sql_subqueries_work_on_the_smartground_schema() {
    let e = engine();
    let db = e.database();
    // Landfills that contain at least one element analysed at a
    // concentration above the overall average.
    let rs = db
        .query(
            "SELECT DISTINCT name FROM landfill WHERE name IN \
             (SELECT landfill_name FROM analysis WHERE concentration > \
               (SELECT AVG(concentration) FROM analysis)) ORDER BY name",
        )
        .unwrap();
    let total = db.query("SELECT COUNT(DISTINCT name) FROM landfill").unwrap();
    let Value::Int(n_landfills) = total.rows[0][0] else { panic!() };
    assert!(rs.len() as i64 <= n_landfills);
    assert!(!rs.rows.is_empty(), "someone is above average");
}
