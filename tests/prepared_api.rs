//! End-to-end coverage of the prepare → bind → cursor lifecycle across
//! SESQL, SQL and SPARQL (the PR's acceptance criteria):
//!
//! * prepare + execute round-trips with bound parameters in all three
//!   languages;
//! * executing a cached `Prepared` skips parsing (cache-hit stats);
//! * `LIMIT k` over a large table provably stops scanning early.

use crosse::prelude::*;
use crosse::relational::DataType;

fn engine() -> SesqlEngine {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE landfill (name TEXT, city TEXT, tons FLOAT);
         INSERT INTO landfill VALUES
           ('Basse di Stura', 'Torino', 1200.0),
           ('Barricalla', 'Collegno', 800.5),
           ('Gerbido', 'Torino', 450.0);
         CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT, amount FLOAT);
         INSERT INTO elem_contained VALUES
           ('Hg', 'Basse di Stura', 12.5), ('Pb', 'Basse di Stura', 30.0),
           ('Cu', 'Gerbido', 100.0), ('Hg', 'Gerbido', 3.5);",
    )
    .unwrap();
    let kb = KnowledgeBase::new();
    kb.register_user("director");
    for (s, o) in [("Hg", "5"), ("Pb", "4"), ("Cu", "1")] {
        kb.assert_statement(
            "director",
            &Triple::new(Term::iri(s), Term::iri("dangerLevel"), Term::lit(o)),
        )
        .unwrap();
    }
    SesqlEngine::new(db, kb)
}

// ---- round-trips in all three languages ------------------------------------

#[test]
fn sesql_prepare_execute_round_trip() {
    let e = engine();
    let session = Session::new(&e, "director").unwrap();
    let p = session
        .prepare(
            "SELECT elem_name FROM elem_contained WHERE landfill_name = $lf \
             ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
        )
        .unwrap();
    let r1 = session.execute(&p, &Params::new().set("lf", "Gerbido")).unwrap();
    assert_eq!(r1.rows.len(), 2);
    let r2 = session
        .execute(&p, &Params::new().set("lf", "Basse di Stura"))
        .unwrap();
    assert_eq!(r2.rows.len(), 2);
    assert_ne!(r1.rows.rows, r2.rows.rows, "bindings change results");
}

#[test]
fn sql_prepare_execute_round_trip() {
    let e = engine();
    let session = Session::new(&e, "director").unwrap();
    let p = session
        .prepare_sql("SELECT name FROM landfill WHERE city = $c AND tons > ? ORDER BY name")
        .unwrap();
    let rs = session
        .execute_sql(&p, &Params::new().set("c", "Torino").push(500))
        .unwrap()
        .collect_rows()
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][0], Value::from("Basse di Stura"));
}

#[test]
fn sparql_prepare_execute_round_trip() {
    let e = engine();
    let session = Session::new(&e, "director").unwrap();
    let p = session
        .prepare_sparql("SELECT ?o WHERE { $elem <dangerLevel> ?o }")
        .unwrap();
    let mut cur = session
        .execute_sparql(&p, &SparqlParams::new().set("elem", Term::iri("Pb")))
        .unwrap();
    let row = cur.next_row().unwrap().unwrap();
    assert_eq!(row[0], Value::Int(4));
    assert!(cur.next_row().is_none());
}

// ---- cached Prepared skips parsing -----------------------------------------

#[test]
fn cached_prepare_skips_parsing() {
    let e = engine();
    let q = "SELECT elem_name FROM elem_contained WHERE landfill_name = $lf";
    let before = e.prepared_cache_stats();
    let _p1 = e.prepare(q).unwrap();
    // Different whitespace, same normalized text → cache hit, no parse.
    let _p2 = e.prepare("SELECT elem_name  FROM elem_contained\n WHERE landfill_name = $lf").unwrap();
    let _p3 = e.prepare(q).unwrap();
    let stats = e.prepared_cache_stats();
    assert_eq!(stats.misses - before.misses, 1, "{stats:?}");
    assert_eq!(stats.hits - before.hits, 2, "{stats:?}");

    // Same at the relational layer.
    let db = e.database();
    let before = db.prepare_cache_stats();
    db.prepare("SELECT name FROM landfill WHERE city = $c").unwrap();
    db.prepare("select name from landfill where city = $c").unwrap();
    let stats = db.prepare_cache_stats();
    assert_eq!(stats.misses - before.misses, 1, "{stats:?}");
    assert_eq!(stats.hits - before.hits, 1, "{stats:?}");
}

#[test]
fn caches_are_bounded_and_count_evictions() {
    let e = engine();
    e.set_cache_capacity(4);
    for i in 0..16 {
        e.prepare(&format!("SELECT elem_name FROM elem_contained LIMIT {i}"))
            .unwrap();
    }
    let stats = e.prepared_cache_stats();
    assert!(stats.evictions >= 12, "{stats:?}");
}

// ---- LIMIT short-circuits the scan -----------------------------------------

#[test]
fn limit_stops_scanning_early_sql_cursor() {
    let db = Database::new();
    db.execute("CREATE TABLE big (id INT, tag TEXT)").unwrap();
    let t = db.catalog().get_table("big").unwrap();
    let rows: Vec<Vec<Value>> = (0..100_000)
        .map(|i| vec![Value::Int(i), Value::from("x")])
        .collect();
    t.insert_many(rows).unwrap();

    let p = db.prepare("SELECT id FROM big WHERE tag = $t LIMIT 7").unwrap();
    let mut cur = p.execute(&Params::new().set("t", "x")).unwrap();
    let mut n = 0;
    while let Some(r) = crosse::relational::Rows::next_row(&mut cur) {
        r.unwrap();
        n += 1;
    }
    assert_eq!(n, 7);
    let scanned = cur.rows_scanned();
    assert!(
        scanned < 10_000,
        "LIMIT 7 over 100k rows fetched {scanned} — no short-circuit"
    );

    // The filter → limit pipeline also stops once satisfied.
    let p = db.prepare("SELECT id FROM big WHERE id >= $lo LIMIT 3").unwrap();
    let rs = p.query(&Params::new().set("lo", 10)).unwrap();
    assert_eq!(rs.len(), 3);
}

#[test]
fn full_scan_still_sees_everything() {
    // The batched scan must not lose rows when fully drained.
    let db = Database::new();
    db.execute("CREATE TABLE big (id INT)").unwrap();
    let t = db.catalog().get_table("big").unwrap();
    t.insert_many((0..10_000).map(|i| vec![Value::Int(i)]).collect())
        .unwrap();
    let p = db.prepare("SELECT COUNT(*) FROM big").unwrap();
    let rs = p.query(&Params::new()).unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(10_000));
}

// ---- type mismatches --------------------------------------------------------

#[test]
fn type_mismatch_errors_across_layers() {
    let e = engine();
    // SQL: FLOAT slot rejects text.
    let p = e.database().prepare("SELECT name FROM landfill WHERE tons > $t").unwrap();
    assert_eq!(p.param_slots()[0].expected, Some(DataType::Float));
    let err = p.query(&Params::new().set("t", "heavy")).unwrap_err();
    assert!(err.to_string().contains("expects FLOAT"), "{err}");

    // SESQL inherits the same typed slots.
    let session = Session::new(&e, "director").unwrap();
    let p = session
        .prepare("SELECT elem_name FROM elem_contained WHERE amount > $min")
        .unwrap();
    assert_eq!(p.param_slots()[0].expected, Some(DataType::Float));
    let err = session
        .execute(&p, &Params::new().set("min", "lots"))
        .unwrap_err();
    assert!(err.to_string().contains("expects FLOAT"), "{err}");
}

#[test]
fn missing_and_excess_bindings_error() {
    let e = engine();
    let session = Session::new(&e, "director").unwrap();
    let p = session
        .prepare("SELECT elem_name FROM elem_contained WHERE landfill_name = $lf")
        .unwrap();
    assert!(session.execute(&p, &Params::new()).is_err());
    let p = session
        .prepare("SELECT elem_name FROM elem_contained WHERE landfill_name = ?")
        .unwrap();
    let err = session
        .execute(&p, &Params::new().push("a").push("b"))
        .unwrap_err();
    assert!(err.to_string().contains("positional"), "{err}");
}

// ---- collect adapters keep the legacy shapes --------------------------------

#[test]
fn collect_adapters_match_legacy_apis() {
    let e = engine();
    let session = Session::new(&e, "director").unwrap();

    let text = "SELECT elem_name FROM elem_contained WHERE landfill_name = 'Gerbido' \
                ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";
    let p = session.prepare(text).unwrap();
    let via_cursor = session
        .execute_cursor(&p, &Params::new())
        .unwrap()
        .collect()
        .unwrap();
    let legacy = e.execute("director", text).unwrap();
    assert_eq!(via_cursor.rows.rows, legacy.rows.rows);
    assert_eq!(
        via_cursor.rows.schema.columns.last().unwrap().name,
        "dangerLevel"
    );
}

#[test]
fn platform_logs_prepared_queries() {
    let e = engine();
    let platform = CrossePlatform::from_engine(e);
    let p = platform
        .engine()
        .prepare(
            "SELECT elem_name FROM elem_contained WHERE landfill_name = $lf \
             ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
        )
        .unwrap();
    platform
        .query_prepared("director", &p, &Params::new().set("lf", "Gerbido"))
        .unwrap();
    platform
        .query_prepared("director", &p, &Params::new().set("lf", "Basse di Stura"))
        .unwrap();
    let log = platform.query_log();
    assert_eq!(log.len(), 2);
    assert!(log[0].concepts.iter().any(|c| c == "dangerLevel"));
    let profile = platform.user_profile("director");
    assert_eq!(profile["dangerLevel"], 2, "prepared reuse builds the profile");
}

// ---- DDL-version invalidation across a live Prepared handle -----------------

#[test]
fn live_prepared_handle_revalidates_after_drop_and_recreate() {
    // Hold one Prepared across DROP TABLE + re-CREATE with a *different*
    // column type: every later execution must bind against fresh slot
    // types (or fail with a clean typed error) — never serve stale-plan
    // results or reject bindings with the stale inference.
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE scores (v FLOAT);
         INSERT INTO scores VALUES (1.5), (2.5);",
    )
    .unwrap();
    let p = db.prepare("SELECT v FROM scores WHERE v > $p ORDER BY v").unwrap();
    assert_eq!(p.param_slots()[0].expected, Some(DataType::Float));
    assert_eq!(p.query(&Params::new().set("p", 2)).unwrap().len(), 1);
    // A text binding is rejected against the FLOAT inference.
    assert!(p.query(&Params::new().set("p", "a")).is_err());

    // Re-type the column while the handle stays live.
    db.execute_script(
        "DROP TABLE scores;
         CREATE TABLE scores (v TEXT);
         INSERT INTO scores VALUES ('a'), ('b'), ('c');",
    )
    .unwrap();
    // The stale FLOAT slot would reject 'a'; re-validation must accept it
    // and evaluate against the new TEXT column.
    let rs = p.query(&Params::new().set("p", "a")).unwrap();
    assert_eq!(rs.len(), 2, "{rs:?}"); // 'b', 'c' > 'a'
    assert_eq!(rs.rows[0][0], Value::from("b"));
    // And a numeric binding now coerces to TEXT comparison (clean typed
    // behaviour, not a stale-plan result).
    let rs = p.query(&Params::new().set("p", "z")).unwrap();
    assert!(rs.is_empty());
}

#[test]
fn live_parameterless_prepared_replans_after_recreate() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE snap (v INT);
         INSERT INTO snap VALUES (1), (2), (3);",
    )
    .unwrap();
    let p = db.prepare("SELECT v FROM snap ORDER BY v").unwrap();
    assert_eq!(p.query(&Params::new()).unwrap().len(), 3);
    db.execute_script(
        "DROP TABLE snap;
         CREATE TABLE snap (v TEXT);
         INSERT INTO snap VALUES ('x');",
    )
    .unwrap();
    // The cached plan template is version-tagged: execution re-plans and
    // returns the new table's rows, never the dropped heap.
    let rs = p.query(&Params::new()).unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][0], Value::from("x"));
}

#[test]
fn live_prepared_handle_errors_cleanly_when_table_vanishes() {
    let db = Database::new();
    db.execute("CREATE TABLE gone (v INT)").unwrap();
    let p = db.prepare("SELECT v FROM gone WHERE v = $p").unwrap();
    db.execute("DROP TABLE gone").unwrap();
    let err = p.query(&Params::new().set("p", 1)).unwrap_err();
    assert!(err.to_string().contains("does not exist"), "{err}");
}

#[test]
fn live_sesql_prepared_handle_revalidates_after_ddl() {
    // Same DDL-survival contract at the SESQL layer: a live PreparedSesql
    // must re-infer slot types against the live catalog.
    let e = engine();
    let db = e.database().clone();
    db.execute_script(
        "CREATE TABLE readings (site TEXT, v FLOAT);
         INSERT INTO readings VALUES ('s1', 1.5), ('s2', 2.5);",
    )
    .unwrap();
    let p = e.prepare("SELECT site FROM readings WHERE v > $p ORDER BY site").unwrap();
    assert_eq!(p.param_slots()[0].expected, Some(DataType::Float));
    assert!(p.execute("director", &Params::new().set("p", "a")).is_err());

    db.execute_script(
        "DROP TABLE readings;
         CREATE TABLE readings (site TEXT, v TEXT);
         INSERT INTO readings VALUES ('s1', 'a'), ('s2', 'b');",
    )
    .unwrap();
    // Stale FLOAT inference would reject the text binding; the live
    // handle must bind it against the re-created TEXT column.
    let r = p.execute("director", &Params::new().set("p", "a")).unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows.rows[0][0], Value::from("s2"));
}
