//! Engine-level durability tests: the fault-injection matrix (torn
//! tails, bit-flipped records, missing/stale snapshots) and the
//! crash-equivalence property — recovery after a crash at any record
//! boundary must reproduce exactly the prefix of the workload that made
//! it to the log.
//!
//! Faults are injected by editing the on-disk WAL directly, using the
//! documented format: a 16-byte segment header (`CROSWAL1` magic +
//! base LSN), then length-prefixed records `[len u32][crc u32][body]`,
//! all little-endian.

use proptest::prelude::*;

use crosse::core::sqm::SesqlEngine;
use crosse::core::Error as CoreError;
use crosse::rdf::provenance::KnowledgeBase;
use crosse::rdf::store::Triple;
use crosse::rdf::term::Term;
use crosse::relational::{Database, Value};
use std::path::{Path, PathBuf};

const WAL_HEADER: usize = 16;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "crosse-durability-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Byte offsets of each record boundary in `wal.log` (the offset *after*
/// each record), by walking the `[len][crc][body]` framing.
fn record_boundaries(dir: &Path) -> Vec<usize> {
    let bytes = std::fs::read(dir.join("wal.log")).unwrap();
    let mut offsets = Vec::new();
    let mut at = WAL_HEADER;
    while at + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        if at + 8 + len > bytes.len() {
            break;
        }
        at += 8 + len;
        offsets.push(at);
    }
    offsets
}

fn truncate_log(dir: &Path, len: usize) {
    let log = dir.join("wal.log");
    let bytes = std::fs::read(&log).unwrap();
    std::fs::write(&log, &bytes[..len.min(bytes.len())]).unwrap();
}

/// Flip one bit inside the record that *ends* at `boundary`.
fn corrupt_record_at(dir: &Path, start: usize) {
    let log = dir.join("wal.log");
    let mut bytes = std::fs::read(&log).unwrap();
    // Flip a bit in the CRC field so the frame length stays plausible.
    bytes[start + 4] ^= 0x40;
    std::fs::write(&log, &bytes).unwrap();
}

fn seeded(dir: &Path) -> SesqlEngine {
    let engine = SesqlEngine::open(dir).unwrap();
    engine
        .database()
        .execute_script(
            "CREATE TABLE t (x INT);
             INSERT INTO t VALUES (1), (2), (3);
             INSERT INTO t VALUES (4);",
        )
        .unwrap();
    engine
}

#[test]
fn truncated_tail_recovers_with_warning() {
    let dir = tmp_dir("torn");
    drop(seeded(&dir));
    let boundaries = record_boundaries(&dir);
    assert!(boundaries.len() >= 3, "workload should log several records");
    // Cut mid-way through the final record.
    truncate_log(&dir, boundaries[boundaries.len() - 1] - 2);
    let engine = SesqlEngine::open(&dir).unwrap();
    assert!(!engine.recovery_warnings().is_empty());
    // The torn record was the second INSERT; the first batch survived.
    let rows = engine.database().query("SELECT COUNT(*) AS n FROM t").unwrap();
    assert_eq!(rows.rows[0][0], Value::Int(3));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_in_final_record_is_a_torn_tail() {
    let dir = tmp_dir("flip-final");
    drop(seeded(&dir));
    let boundaries = record_boundaries(&dir);
    let start = boundaries[boundaries.len() - 2];
    corrupt_record_at(&dir, start);
    let engine = SesqlEngine::open(&dir).unwrap();
    assert!(
        !engine.recovery_warnings().is_empty(),
        "a corrupt final record truncates with a warning"
    );
    let rows = engine.database().query("SELECT COUNT(*) AS n FROM t").unwrap();
    assert_eq!(rows.rows[0][0], Value::Int(3));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_mid_log_is_a_typed_error() {
    let dir = tmp_dir("flip-mid");
    drop(seeded(&dir));
    let boundaries = record_boundaries(&dir);
    assert!(boundaries.len() >= 3);
    // Corrupt the first record: valid records follow it, so this is not
    // a torn tail and recovery must refuse rather than guess.
    corrupt_record_at(&dir, WAL_HEADER);
    match SesqlEngine::open(&dir) {
        Err(CoreError::Storage(m)) => {
            assert!(m.contains("corrupt"), "unexpected message: {m}")
        }
        Err(e) => panic!("expected a Storage error, got {e:?}"),
        Ok(_) => panic!("mid-log corruption must not open"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_snapshot_is_a_typed_error() {
    let dir = tmp_dir("no-snap");
    {
        let engine = seeded(&dir);
        engine.checkpoint().unwrap();
        engine.checkpoint_join().unwrap();
        engine.database().execute("INSERT INTO t VALUES (5)").unwrap();
    }
    std::fs::remove_file(dir.join("snapshot.bin")).unwrap();
    match SesqlEngine::open(&dir) {
        Err(CoreError::Storage(m)) => {
            assert!(m.contains("snapshot"), "unexpected message: {m}")
        }
        Err(e) => panic!("expected a Storage error, got {e:?}"),
        Ok(_) => panic!("a log with a checkpointed base needs its snapshot"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_snapshot_with_long_tail_recovers() {
    let dir = tmp_dir("stale");
    {
        let engine = seeded(&dir);
        engine.knowledge_base().register_user("u");
        engine.checkpoint().unwrap();
        engine.checkpoint_join().unwrap();
        // A long post-checkpoint tail on both channels.
        for i in 0..200 {
            engine
                .database()
                .execute(&format!("INSERT INTO t VALUES ({})", 10 + i))
                .unwrap();
            engine
                .knowledge_base()
                .assert_statement(
                    "u",
                    &Triple::new(
                        Term::iri(format!("s{i}")),
                        Term::iri("p"),
                        Term::lit(i.to_string()),
                    ),
                )
                .unwrap();
        }
    }
    let engine = SesqlEngine::open(&dir).unwrap();
    assert!(engine.recovery_warnings().is_empty(), "clean close, clean open");
    let rows = engine.database().query("SELECT COUNT(*) AS n FROM t").unwrap();
    assert_eq!(rows.rows[0][0], Value::Int(204));
    assert_eq!(engine.knowledge_base().statements_by("u").len(), 200);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_is_a_typed_error_not_a_panic() {
    let dir = tmp_dir("bad-snap");
    {
        let engine = seeded(&dir);
        engine.checkpoint().unwrap();
        engine.checkpoint_join().unwrap();
    }
    let snap = dir.join("snapshot.bin");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap, &bytes).unwrap();
    assert!(
        SesqlEngine::open(&dir).is_err(),
        "a snapshot failing its CRC must be rejected, not half-loaded"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- crash-equivalence property --------------------------------------------

/// One workload operation, applicable to a durable engine and to the
/// in-memory reference alike.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Delete(i64),
    Assert(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0i64..50).prop_map(Op::Insert),
            (0i64..50).prop_map(Op::Delete),
            any::<u8>().prop_map(|s| Op::Assert(s % 20)),
        ],
        1..24,
    )
}

fn apply(op: &Op, db: &Database, kb: &KnowledgeBase) {
    match op {
        Op::Insert(x) => {
            db.execute(&format!("INSERT INTO t VALUES ({x})")).unwrap();
        }
        Op::Delete(x) => {
            db.execute(&format!("DELETE FROM t WHERE x = {x}")).unwrap();
        }
        Op::Assert(s) => {
            kb.assert_statement(
                "u",
                &Triple::new(
                    Term::iri(format!("s{s}")),
                    Term::iri("observed"),
                    // Distinct object per call so repeated asserts of one
                    // subject are distinct statements.
                    Term::lit(format!("{s}-{}", kb.statements_by("u").len())),
                ),
            )
            .unwrap();
        }
    }
}

/// Observable state of an engine: the table contents plus the per-subject
/// statement counts visible to the user.
fn observe(db: &Database, kb: &KnowledgeBase) -> (Vec<Vec<Value>>, usize, usize) {
    let rows = db.query("SELECT x FROM t ORDER BY x").unwrap().rows;
    let stmts = kb.statements_by("u").len();
    let sols = kb
        .query_as("u", "SELECT ?s ?o WHERE { ?s <observed> ?o }")
        .unwrap()
        .len();
    (rows, stmts, sols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Run a workload against a durable engine, cut the log at an
    /// arbitrary operation boundary (simulating a crash whose last write
    /// completed there), reopen, and compare against an in-memory
    /// reference that executed exactly the surviving prefix.
    #[test]
    fn crash_at_any_op_boundary_matches_prefix_reference(
        ops in arb_ops(),
        cut_raw in any::<u32>(),
    ) {
        let dir = tmp_dir("prop");
        // Byte length of wal.log after each op: op boundaries are record
        // boundaries, so cutting there is a legal crash point.
        let mut cut_points = Vec::with_capacity(ops.len() + 1);
        {
            let engine = SesqlEngine::open_with(
                &dir,
                crosse::core::WalOptions { sync: crosse::core::SyncPolicy::Off },
            ).unwrap();
            engine.database().execute("CREATE TABLE t (x INT)").unwrap();
            engine.knowledge_base().register_user("u");
            cut_points.push(std::fs::metadata(dir.join("wal.log")).unwrap().len() as usize);
            for op in &ops {
                apply(op, engine.database(), engine.knowledge_base());
                cut_points.push(
                    std::fs::metadata(dir.join("wal.log")).unwrap().len() as usize
                );
            }
        }
        let k = cut_raw as usize % cut_points.len();
        truncate_log(&dir, cut_points[k]);

        // Recover the truncated directory.
        let engine = SesqlEngine::open(&dir).unwrap();

        // Reference: a fresh in-memory engine executing ops[..k].
        let ref_db = Database::new();
        let ref_kb = KnowledgeBase::new();
        ref_db.execute("CREATE TABLE t (x INT)").unwrap();
        ref_kb.register_user("u");
        for op in &ops[..k] {
            apply(op, &ref_db, &ref_kb);
        }

        prop_assert_eq!(
            observe(engine.database(), engine.knowledge_base()),
            observe(&ref_db, &ref_kb)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
