//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use crosse::core::sesql::scanner::extract_tags;
use crosse::prelude::*;
use crosse::rdf::{TriplePattern, TripleStore};
use crosse::relational::value::Value as RValue;

// ---- relational value ordering ---------------------------------------------

fn arb_value() -> impl Strategy<Value = RValue> {
    prop_oneof![
        Just(RValue::Null),
        any::<bool>().prop_map(RValue::Bool),
        any::<i64>().prop_map(RValue::Int),
        // Finite floats only: total_cmp handles NaN, but SQL never
        // produces one from our literals.
        (-1e12f64..1e12).prop_map(RValue::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(RValue::from),
    ]
}

proptest! {
    /// total_cmp is a total order: antisymmetric and transitive on samples.
    #[test]
    fn value_total_order(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Less && b.total_cmp(&c) == Ordering::Less {
            prop_assert_eq!(a.total_cmp(&c), Ordering::Less);
        }
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    /// sql_cmp agrees with total_cmp whenever it is defined.
    #[test]
    fn sql_cmp_consistent_with_total(a in arb_value(), b in arb_value()) {
        if let Some(ord) = a.sql_cmp(&b) {
            prop_assert_eq!(ord, a.total_cmp(&b));
        }
    }
}

// ---- interned value semantics -----------------------------------------------

/// Text across scripts (ASCII, accented Latin, Greek/Cyrillic, CJK) so
/// interning is exercised on multi-byte UTF-8, not just ASCII.
fn arb_text() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9 ]{0,12}".prop_map(|s| s),
        "[À-ÿ]{1,8}".prop_map(|s| s),
        "[α-ωа-я]{1,8}".prop_map(|s| s),
        "[一-十]{1,6}".prop_map(|s| s),
    ]
}

fn value_hash(v: &RValue) -> u64 {
    use std::hash::{DefaultHasher, Hash, Hasher};
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    /// Interned values are observationally identical to fresh values:
    /// round-trip through the lexical form, equality mirrors string
    /// equality, ordering mirrors string ordering, and hashes agree with
    /// equality — across Unicode scripts.
    #[test]
    fn interning_preserves_lexical_semantics(s in arb_text(), t in arb_text()) {
        let interner = crosse::relational::Interner::new();
        let interned_s = interner.value(&s);
        let fresh_s = RValue::from(s.as_str());
        prop_assert_eq!(&interned_s, &fresh_s);
        prop_assert_eq!(interned_s.lexical_form(), s.clone());
        prop_assert_eq!(value_hash(&interned_s), value_hash(&fresh_s));

        // A second interned string compares exactly like the raw strings
        // (the pointer fast path must never change the answer).
        let interned_t = interner.value(&t);
        prop_assert_eq!(interned_s == interned_t, s == t);
        prop_assert_eq!(interned_s.total_cmp(&interned_t), s.cmp(&t));
        if s == t {
            prop_assert_eq!(value_hash(&interned_s), value_hash(&interned_t));
        }
    }

    /// NULL and NaN have stable positions under the grouping semantics:
    /// ORDER BY puts NULLs first and NaNs inside the numeric class, and
    /// DISTINCT collapses NULL==NULL / NaN==NaN while keeping them apart.
    #[test]
    fn null_and_nan_ordering_in_group_keys_and_order_by(
        floats in prop::collection::vec(-1e9f64..1e9, 0..12),
        nulls in 0usize..3,
        nans in 0usize..3,
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (x FLOAT)").unwrap();
        let table = db.catalog().get_table("t").unwrap();
        let mut rows: Vec<Vec<RValue>> =
            floats.iter().map(|f| vec![RValue::Float(*f)]).collect();
        rows.extend((0..nulls).map(|_| vec![RValue::Null]));
        rows.extend((0..nans).map(|_| vec![RValue::Float(f64::NAN)]));
        table.insert_many(rows).unwrap();

        // ORDER BY follows the total order: NULLs first, then numbers
        // (NaN sorted by the IEEE total order, i.e. after every finite).
        let sorted = db.query("SELECT x FROM t ORDER BY x").unwrap();
        for pair in sorted.rows.windows(2) {
            prop_assert!(
                pair[0][0].total_cmp(&pair[1][0]) != std::cmp::Ordering::Greater,
                "ORDER BY out of total order"
            );
        }
        for (i, row) in sorted.rows.iter().enumerate() {
            prop_assert_eq!(row[0].is_null(), i < nulls, "NULLs sort first");
        }

        // DISTINCT groups by the same semantics: all NULLs collapse to
        // one row, all NaNs to one row, finite values by value.
        let distinct = db.query("SELECT DISTINCT x FROM t").unwrap();
        let mut expect: std::collections::HashSet<u64> = floats
            .iter()
            .map(|f| f.to_bits())
            .collect();
        if nans > 0 {
            expect.insert(f64::NAN.to_bits());
        }
        let want = expect.len() + usize::from(nulls > 0);
        prop_assert_eq!(distinct.rows.len(), want);
    }

    /// A table loaded through the interner and one loaded with fresh
    /// strings answer every query shape identically (grouping, DISTINCT,
    /// ORDER BY, self-join through text keys).
    #[test]
    fn interned_and_fresh_tables_agree(
        rows in prop::collection::vec((0i64..20, "[a-zA-Z ]{0,6}"), 1..30),
    ) {
        let fresh_db = Database::new();
        let interned_db = Database::new();
        for db in [&fresh_db, &interned_db] {
            db.execute("CREATE TABLE t (x INT, tag TEXT)").unwrap();
        }
        let fresh_rows: Vec<Vec<RValue>> = rows
            .iter()
            .map(|(x, s)| vec![RValue::Int(*x), RValue::from(s.as_str())])
            .collect();
        let interned_rows: Vec<Vec<RValue>> = rows
            .iter()
            .map(|(x, s)| {
                vec![RValue::Int(*x), interned_db.interner().value(s)]
            })
            .collect();
        fresh_db.catalog().get_table("t").unwrap().insert_many(fresh_rows).unwrap();
        interned_db.catalog().get_table("t").unwrap().insert_many(interned_rows).unwrap();

        for q in [
            "SELECT tag, COUNT(*), SUM(x) FROM t GROUP BY tag ORDER BY tag",
            "SELECT DISTINCT tag FROM t ORDER BY tag",
            "SELECT x, tag FROM t ORDER BY tag, x",
            "SELECT a.x, b.x FROM t a, t b WHERE a.tag = b.tag ORDER BY a.x, b.x",
            "SELECT COUNT(DISTINCT tag) FROM t",
        ] {
            let f = fresh_db.query(q).unwrap();
            let i = interned_db.query(q).unwrap();
            prop_assert_eq!(&f.rows, &i.rows, "query: {}", q);
        }
    }
}

// ---- relational engine ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rows inserted are rows scanned; ORDER BY really sorts; LIMIT bounds.
    #[test]
    fn insert_scan_sort_limit(
        amounts in prop::collection::vec(-1e6f64..1e6, 1..40),
        limit in 1usize..10,
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (x FLOAT)").unwrap();
        let t = db.catalog().get_table("t").unwrap();
        t.insert_many(amounts.iter().map(|&a| vec![RValue::Float(a)]).collect())
            .unwrap();

        let rs = db.query("SELECT x FROM t ORDER BY x").unwrap();
        prop_assert_eq!(rs.len(), amounts.len());
        for w in rs.rows.windows(2) {
            prop_assert!(w[0][0].total_cmp(&w[1][0]) != std::cmp::Ordering::Greater);
        }

        let rs = db.query(&format!("SELECT x FROM t LIMIT {limit}")).unwrap();
        prop_assert_eq!(rs.len(), limit.min(amounts.len()));
    }

    /// DISTINCT returns the exact set of distinct values.
    #[test]
    fn distinct_matches_set(xs in prop::collection::vec(0i64..20, 0..60)) {
        let db = Database::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        let t = db.catalog().get_table("t").unwrap();
        t.insert_many(xs.iter().map(|&x| vec![RValue::Int(x)]).collect()).unwrap();
        let rs = db.query("SELECT DISTINCT x FROM t").unwrap();
        let expected: std::collections::HashSet<i64> = xs.iter().copied().collect();
        prop_assert_eq!(rs.len(), expected.len());
    }

    /// COUNT/SUM/MIN/MAX agree with a direct computation.
    #[test]
    fn aggregates_agree(xs in prop::collection::vec(-1000i64..1000, 1..50)) {
        let db = Database::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        let t = db.catalog().get_table("t").unwrap();
        t.insert_many(xs.iter().map(|&x| vec![RValue::Int(x)]).collect()).unwrap();
        let rs = db
            .query("SELECT COUNT(*), SUM(x), MIN(x), MAX(x) FROM t")
            .unwrap();
        prop_assert_eq!(&rs.rows[0][0], &RValue::Int(xs.len() as i64));
        prop_assert_eq!(&rs.rows[0][1], &RValue::Int(xs.iter().sum()));
        prop_assert_eq!(&rs.rows[0][2], &RValue::Int(*xs.iter().min().unwrap()));
        prop_assert_eq!(&rs.rows[0][3], &RValue::Int(*xs.iter().max().unwrap()));
    }

    /// Hash join equals nested-loop join (cross + filter) on random data.
    #[test]
    fn hash_join_equals_cross_filter(
        left in prop::collection::vec(0i64..8, 0..25),
        right in prop::collection::vec(0i64..8, 0..25),
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE l (k INT)").unwrap();
        db.execute("CREATE TABLE r (k INT)").unwrap();
        db.catalog().get_table("l").unwrap()
            .insert_many(left.iter().map(|&x| vec![RValue::Int(x)]).collect()).unwrap();
        db.catalog().get_table("r").unwrap()
            .insert_many(right.iter().map(|&x| vec![RValue::Int(x)]).collect()).unwrap();
        // planner picks HashJoin for ON l.k = r.k
        let a = db.query("SELECT COUNT(*) FROM l JOIN r ON l.k = r.k").unwrap();
        // cross + filter goes through the nested-loop path
        let b = db.query("SELECT COUNT(*) FROM l, r WHERE l.k = r.k").unwrap();
        prop_assert_eq!(&a.rows[0][0], &b.rows[0][0]);
    }
}

// ---- SESQL scanner ----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cleaning is exactly marker-stripping: re-inserting `( text )` for
    /// each tag reproduces the cleaned output, and the recovered tags carry
    /// the original condition text.
    #[test]
    fn scanner_clean_preserves_condition_text(
        cond in "[a-z]{1,6} = [0-9]{1,4}",
        id in "[a-z][a-z0-9]{0,5}",
        prefix in "[a-z ]{0,10}",
        suffix in "[a-z ]{0,10}",
    ) {
        let input = format!("{prefix}${{{cond}:{id}}}{suffix}");
        let (clean, tags) = extract_tags(&input).unwrap();
        prop_assert_eq!(tags.len(), 1);
        prop_assert_eq!(&tags[0].id, &id);
        prop_assert_eq!(&tags[0].text, &cond);
        prop_assert_eq!(clean, format!("{prefix}({cond}){suffix}"));
    }

    /// Text without markers passes through extract_tags untouched, and
    /// split_enrich never loses characters of the SQL part.
    #[test]
    fn scanner_is_identity_without_markers(text in "[a-zA-Z0-9 =<>,.']{0,60}") {
        // Skip inputs with unbalanced quotes (a lexical error by design).
        if text.matches('\'').count() % 2 == 1 {
            return Ok(());
        }
        if let Ok((clean, tags)) = extract_tags(&text) {
            prop_assert!(tags.is_empty());
            prop_assert_eq!(clean, text);
        }
    }
}

// ---- triple store -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every indexed pattern lookup agrees with filtering a full scan.
    #[test]
    fn pattern_match_agrees_with_scan(
        triples in prop::collection::vec((0u8..6, 0u8..4, 0u8..6), 0..60),
        qs in 0u8..6, qp in 0u8..4, qo in 0u8..6,
        mask in 0u8..8,
    ) {
        let store = TripleStore::new();
        for (s, p, o) in &triples {
            store.insert("g", &Triple::new(
                Term::iri(format!("s{s}")),
                Term::iri(format!("p{p}")),
                Term::iri(format!("o{o}")),
            ));
        }
        let pattern = TriplePattern {
            subject: (mask & 1 != 0).then(|| Term::iri(format!("s{qs}"))),
            predicate: (mask & 2 != 0).then(|| Term::iri(format!("p{qp}"))),
            object: (mask & 4 != 0).then(|| Term::iri(format!("o{qo}"))),
        };
        let got: std::collections::HashSet<_> =
            store.match_pattern(&["g"], &pattern).into_iter().collect();
        let want: std::collections::HashSet<_> = store
            .graph_triples("g")
            .into_iter()
            .filter(|t| {
                pattern.subject.as_ref().map(|x| *x == t.subject).unwrap_or(true)
                    && pattern.predicate.as_ref().map(|x| *x == t.predicate).unwrap_or(true)
                    && pattern.object.as_ref().map(|x| *x == t.object).unwrap_or(true)
            })
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Insert + remove is a no-op on membership.
    #[test]
    fn insert_remove_roundtrip(s in 0u8..5, p in 0u8..5, o in 0u8..5) {
        let store = TripleStore::new();
        let t = Triple::new(
            Term::iri(format!("s{s}")),
            Term::iri(format!("p{p}")),
            Term::lit(format!("o{o}")),
        );
        prop_assert!(store.insert("g", &t));
        prop_assert!(store.contains("g", &t));
        prop_assert!(store.remove("g", &t));
        prop_assert!(!store.contains("g", &t));
        prop_assert_eq!(store.graph_len("g"), 0);
    }
}

// ---- SESQL enrichment invariants ---------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SCHEMAEXTENSION with RowPerMatch yields Σ max(1, matches(v)) rows,
    /// and never loses a base row.
    #[test]
    fn schema_extension_cardinality(
        elems in prop::collection::vec(0u8..6, 1..20),
        kb_levels in prop::collection::vec((0u8..6, 1u8..6), 0..10),
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (elem TEXT)").unwrap();
        let tab = db.catalog().get_table("t").unwrap();
        tab.insert_many(
            elems.iter().map(|e| vec![RValue::from(format!("E{e}"))]).collect()
        ).unwrap();

        let kb = KnowledgeBase::new();
        kb.register_user("u");
        let mut seen = std::collections::HashSet::new();
        for (e, l) in &kb_levels {
            if seen.insert((*e, *l)) {
                kb.assert_statement("u", &Triple::new(
                    Term::iri(format!("E{e}")),
                    Term::iri("level"),
                    Term::lit(l.to_string()),
                )).unwrap();
            }
        }
        let per_elem = |e: u8| -> usize {
            seen.iter().filter(|(s, _)| *s == e).count()
        };
        let expected: usize = elems.iter().map(|&e| per_elem(e).max(1)).sum();

        let engine = SesqlEngine::new(db, kb);
        let r = engine
            .execute("u", "SELECT elem FROM t ENRICH SCHEMAEXTENSION(elem, level)")
            .unwrap();
        prop_assert_eq!(r.rows.len(), expected);
    }

    /// BOOL extensions preserve cardinality exactly and only add booleans.
    #[test]
    fn bool_extension_preserves_cardinality(
        elems in prop::collection::vec(0u8..6, 0..20),
        hazards in prop::collection::vec(0u8..6, 0..6),
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (elem TEXT)").unwrap();
        db.catalog().get_table("t").unwrap().insert_many(
            elems.iter().map(|e| vec![RValue::from(format!("E{e}"))]).collect()
        ).unwrap();
        let kb = KnowledgeBase::new();
        kb.register_user("u");
        for h in &hazards {
            kb.assert_statement("u", &Triple::new(
                Term::iri(format!("E{h}")),
                Term::iri("isA"),
                Term::iri("Hazard"),
            )).unwrap();
        }
        let engine = SesqlEngine::new(db, kb);
        let r = engine
            .execute("u", "SELECT elem FROM t ENRICH BOOLSCHEMAEXTENSION(elem, isA, Hazard)")
            .unwrap();
        prop_assert_eq!(r.rows.len(), elems.len());
        let hazard_set: std::collections::HashSet<u8> = hazards.iter().copied().collect();
        for row in &r.rows.rows {
            let e: u8 = row[0].lexical_form()[1..].parse().unwrap();
            prop_assert_eq!(&row[1], &RValue::Bool(hazard_set.contains(&e)));
        }
    }
}

// ---- secondary indexes -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An indexed query plan returns exactly what the sequential plan
    /// returns, for point, IN-list and range predicates — including after
    /// deletes and updates (which force a lazy index rebuild).
    #[test]
    fn index_scan_equals_seq_scan(
        rows in prop::collection::vec((0u8..20, -50i64..50), 0..60),
        point in 0u8..20,
        lo in -50i64..50,
        span in 0i64..40,
        delete_key in 0u8..20,
    ) {
        let make = |indexed: bool| {
            let db = Database::new();
            db.execute("CREATE TABLE t (k TEXT, v INT)").unwrap();
            db.catalog().get_table("t").unwrap().insert_many(
                rows.iter()
                    .map(|(k, v)| vec![RValue::from(format!("k{k}")), RValue::Int(*v)])
                    .collect(),
            ).unwrap();
            if indexed {
                db.execute("CREATE INDEX ik ON t (k)").unwrap();
                db.execute("CREATE INDEX iv ON t (v)").unwrap();
            }
            db
        };
        let seq = make(false);
        let idx = make(true);
        let hi = lo + span;
        let queries = [
            format!("SELECT k, v FROM t WHERE k = 'k{point}' ORDER BY v, k"),
            format!("SELECT k, v FROM t WHERE k IN ('k{point}', 'k0') ORDER BY v, k"),
            format!("SELECT k, v FROM t WHERE v BETWEEN {lo} AND {hi} ORDER BY v, k"),
            format!("SELECT k, v FROM t WHERE v > {lo} ORDER BY v, k"),
        ];
        for q in &queries {
            prop_assert_eq!(
                seq.query(q).unwrap().rows,
                idx.query(q).unwrap().rows,
                "{}", q
            );
        }
        // Churn, then re-check (exercises the dirty-rebuild path).
        for db in [&seq, &idx] {
            db.execute(&format!("DELETE FROM t WHERE k = 'k{delete_key}'")).unwrap();
            db.execute(&format!("UPDATE t SET v = v + 1 WHERE v < {lo}")).unwrap();
        }
        for q in &queries {
            prop_assert_eq!(
                seq.query(q).unwrap().rows,
                idx.query(q).unwrap().rows,
                "after churn: {}", q
            );
        }
    }

    /// `x IN (SELECT ...)` matches the manually computed semi-join, and
    /// `NOT IN` its complement (no NULLs involved here).
    #[test]
    fn in_subquery_equals_semi_join(
        left in prop::collection::vec(0u8..15, 0..30),
        right in prop::collection::vec(0u8..15, 0..30),
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE l (x INT)").unwrap();
        db.execute("CREATE TABLE r (y INT)").unwrap();
        db.catalog().get_table("l").unwrap().insert_many(
            left.iter().map(|v| vec![RValue::Int(*v as i64)]).collect()).unwrap();
        db.catalog().get_table("r").unwrap().insert_many(
            right.iter().map(|v| vec![RValue::Int(*v as i64)]).collect()).unwrap();
        let rset: std::collections::HashSet<u8> = right.iter().copied().collect();

        let in_rows = db.query("SELECT x FROM l WHERE x IN (SELECT y FROM r)").unwrap();
        let expected = left.iter().filter(|v| rset.contains(v)).count();
        prop_assert_eq!(in_rows.len(), expected);

        let notin = db.query("SELECT x FROM l WHERE x NOT IN (SELECT y FROM r)").unwrap();
        if right.is_empty() {
            prop_assert_eq!(notin.len(), left.len());
        } else {
            prop_assert_eq!(notin.len(), left.len() - expected);
        }
    }

    /// A searched CASE with an ELSE branch never yields NULL, and agrees
    /// with the equivalent Rust-side classification.
    #[test]
    fn case_classification_total(vals in prop::collection::vec(-100i64..100, 0..40)) {
        let db = Database::new();
        db.execute("CREATE TABLE t (v INT)").unwrap();
        db.catalog().get_table("t").unwrap().insert_many(
            vals.iter().map(|v| vec![RValue::Int(*v)]).collect()).unwrap();
        let rs = db.query(
            "SELECT v, CASE WHEN v < 0 THEN 'neg' WHEN v = 0 THEN 'zero' \
             ELSE 'pos' END FROM t").unwrap();
        for row in &rs.rows {
            let RValue::Int(v) = row[0] else { panic!() };
            let want = if v < 0 { "neg" } else if v == 0 { "zero" } else { "pos" };
            prop_assert_eq!(&row[1], &RValue::from(want));
        }
    }
}

// ---- SPARQL aggregates, MINUS, paths ----------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GROUP BY + COUNT matches a manual per-key count, and the global
    /// COUNT(*) matches the row total.
    #[test]
    fn sparql_count_matches_manual(edges in prop::collection::vec((0u8..8, 0u8..8), 0..40)) {
        let store = TripleStore::new();
        for (s, o) in &edges {
            store.insert("g", &Triple::new(
                Term::iri(format!("S{s}")),
                Term::iri("p"),
                Term::iri(format!("O{o}")),
            ));
        }
        let distinct: std::collections::HashSet<(u8, u8)> = edges.iter().copied().collect();
        let sols = crosse::rdf::sparql::eval::query(
            &store, &["g"], "SELECT (COUNT(*) AS ?n) WHERE { ?s <p> ?o }").unwrap();
        let total = sols.rows[0][0].clone().unwrap();
        prop_assert_eq!(total.lexical_form(), distinct.len().to_string());

        let by_s = crosse::rdf::sparql::eval::query(
            &store, &["g"],
            "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s <p> ?o } GROUP BY ?s").unwrap();
        let mut manual: std::collections::HashMap<u8, usize> = Default::default();
        for (s, _) in &distinct {
            *manual.entry(*s).or_default() += 1;
        }
        prop_assert_eq!(by_s.len(), manual.len());
        for row in &by_s.rows {
            let s: u8 = row[0].clone().unwrap().lexical_form()[1..].parse().unwrap();
            let n: usize = row[1].clone().unwrap().lexical_form().parse().unwrap();
            prop_assert_eq!(n, manual[&s]);
        }
    }

    /// `A MINUS A` is empty and `A MINUS (disjoint)` is `A`.
    #[test]
    fn sparql_minus_identities(edges in prop::collection::vec((0u8..8, 0u8..8), 1..30)) {
        let store = TripleStore::new();
        for (s, o) in &edges {
            store.insert("g", &Triple::new(
                Term::iri(format!("S{s}")),
                Term::iri("p"),
                Term::iri(format!("O{o}")),
            ));
        }
        let all = crosse::rdf::sparql::eval::query(
            &store, &["g"], "SELECT ?s ?o WHERE { ?s <p> ?o }").unwrap();
        let self_minus = crosse::rdf::sparql::eval::query(
            &store, &["g"],
            "SELECT ?s ?o WHERE { ?s <p> ?o . MINUS { ?s <p> ?o } }").unwrap();
        prop_assert!(self_minus.is_empty());
        let disjoint = crosse::rdf::sparql::eval::query(
            &store, &["g"],
            "SELECT ?s ?o WHERE { ?s <p> ?o . MINUS { ?x <q> ?y } }").unwrap();
        prop_assert_eq!(disjoint.len(), all.len());
    }

    /// The sequence path p/q equals the manual relational composition of
    /// the p and q edge sets, and ^p is the transpose of p.
    #[test]
    fn sparql_path_algebra(
        p_edges in prop::collection::vec((0u8..6, 0u8..6), 0..20),
        q_edges in prop::collection::vec((0u8..6, 0u8..6), 0..20),
    ) {
        let store = TripleStore::new();
        let node = |n: u8| Term::iri(format!("N{n}"));
        for (s, o) in &p_edges {
            store.insert("g", &Triple::new(node(*s), Term::iri("p"), node(*o)));
        }
        for (s, o) in &q_edges {
            store.insert("g", &Triple::new(node(*s), Term::iri("q"), node(*o)));
        }
        let pset: std::collections::HashSet<(u8, u8)> = p_edges.iter().copied().collect();
        let qset: std::collections::HashSet<(u8, u8)> = q_edges.iter().copied().collect();
        let mut composed: std::collections::HashSet<(u8, u8)> = Default::default();
        for (a, b) in &pset {
            for (b2, c) in &qset {
                if b == b2 {
                    composed.insert((*a, *c));
                }
            }
        }
        let seq = crosse::rdf::sparql::eval::query(
            &store, &["g"], "SELECT ?a ?c WHERE { ?a <p>/<q> ?c }").unwrap();
        let got: std::collections::HashSet<(u8, u8)> = seq.rows.iter().map(|r| {
            let a = r[0].clone().unwrap().lexical_form()[1..].parse().unwrap();
            let c = r[1].clone().unwrap().lexical_form()[1..].parse().unwrap();
            (a, c)
        }).collect();
        prop_assert_eq!(got, composed);

        let inv = crosse::rdf::sparql::eval::query(
            &store, &["g"], "SELECT ?o ?s WHERE { ?o ^<p> ?s }").unwrap();
        let inv_set: std::collections::HashSet<(u8, u8)> = inv.rows.iter().map(|r| {
            let o = r[0].clone().unwrap().lexical_form()[1..].parse().unwrap();
            let s = r[1].clone().unwrap().lexical_form()[1..].parse().unwrap();
            (s, o)
        }).collect();
        prop_assert_eq!(inv_set, pset);
    }
}

// ---- ID-native SPARQL engine vs reference evaluation ------------------------
//
// The compiled, id-native BGP evaluator (constant pre-resolution, greedy
// reordering with cardinality tiebreaks, prefix-sorted streaming probes)
// must return exactly the solution multiset of a straightforward
// nested-loop evaluation over the raw triples, for randomized BGPs over
// `smartground::random_kb` vocabularies.

/// One position of a generated pattern: a shared variable or a constant
/// drawn from (a superset of) the `random_kb` vocabulary — constants the
/// dictionary has never seen exercise the compile-time short-circuit.
#[derive(Debug, Clone, Copy)]
enum GenTerm {
    Var(u8),
    Node(u8),
    Prop(u8),
    Val(u8),
}

impl GenTerm {
    fn from_code(kind: u8, idx: u8) -> GenTerm {
        match kind % 4 {
            0 => GenTerm::Var(idx % 3),
            1 => GenTerm::Node(idx % 7),
            2 => GenTerm::Prop(idx % 5),
            _ => GenTerm::Val(idx % 24),
        }
    }

    fn to_term(self) -> Option<Term> {
        match self {
            GenTerm::Var(_) => None,
            GenTerm::Node(n) => Some(Term::iri(format!("node{n}"))),
            GenTerm::Prop(p) => Some(Term::iri(format!("prop{p}"))),
            GenTerm::Val(v) => Some(Term::lit(format!("val{v}"))),
        }
    }

    fn to_sparql(self) -> String {
        match self {
            GenTerm::Var(v) => format!("?v{v}"),
            GenTerm::Node(n) => format!("<node{n}>"),
            GenTerm::Prop(p) => format!("<prop{p}>"),
            GenTerm::Val(v) => format!("\"val{v}\""),
        }
    }
}

/// Brute-force BGP evaluation: nested loop over the raw triples in written
/// pattern order, no indexes, no reordering, terms compared structurally.
fn reference_bgp(
    triples: &[Triple],
    patterns: &[(GenTerm, GenTerm, GenTerm)],
) -> Vec<std::collections::BTreeMap<String, Term>> {
    use std::collections::BTreeMap;
    let mut rows: Vec<BTreeMap<String, Term>> = vec![BTreeMap::new()];
    for &(ps, pp, po) in patterns {
        let mut next = Vec::new();
        for row in &rows {
            'triple: for t in triples {
                let mut extended = row.clone();
                for (gen, part) in
                    [(ps, &t.subject), (pp, &t.predicate), (po, &t.object)]
                {
                    match gen.to_term() {
                        Some(c) => {
                            if c != *part {
                                continue 'triple;
                            }
                        }
                        None => {
                            let GenTerm::Var(v) = gen else { unreachable!() };
                            let name = format!("v{v}");
                            match extended.get(&name) {
                                Some(bound) if bound != part => continue 'triple,
                                Some(_) => {}
                                None => {
                                    extended.insert(name, part.clone());
                                }
                            }
                        }
                    }
                }
                next.push(extended);
            }
        }
        rows = next;
    }
    rows
}

/// Canonical multiset rendering: each solution as sorted (var, term) pairs,
/// the whole result sorted — row order is implementation-defined on both
/// sides.
fn canon(rows: Vec<Vec<(String, String)>>) -> Vec<Vec<(String, String)>> {
    let mut rows = rows;
    for r in &mut rows {
        r.sort();
    }
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The compiled engine and the reference evaluator agree on the
    /// solution multiset of randomized BGPs over `random_kb`.
    #[test]
    fn id_native_bgp_matches_reference(
        n in 5usize..50,
        seed in 0u64..1000,
        raw_patterns in prop::collection::vec((0u8..4, 0u8..24, 0u8..4, 0u8..24, 0u8..4, 0u8..24), 1..4),
    ) {
        let patterns: Vec<(GenTerm, GenTerm, GenTerm)> = raw_patterns
            .iter()
            .map(|&(ks, is, kp, ip, ko, io)| {
                (
                    GenTerm::from_code(ks, is),
                    GenTerm::from_code(kp, ip),
                    GenTerm::from_code(ko, io),
                )
            })
            .collect();

        let triples = crosse::smartground::random_kb(n, 5, 3, seed).unwrap();
        let store = TripleStore::new();
        store.insert_all("g", triples.iter());

        let body: Vec<String> = patterns
            .iter()
            .map(|(s, p, o)| {
                format!("{} {} {}", s.to_sparql(), p.to_sparql(), o.to_sparql())
            })
            .collect();
        let sparql = format!("SELECT * WHERE {{ {} }}", body.join(" . "));
        let sols = crosse::rdf::sparql::eval::query(&store, &["g"], &sparql).unwrap();

        let engine_rows: Vec<Vec<(String, String)>> = sols
            .rows
            .iter()
            .map(|r| {
                sols.variables
                    .iter()
                    .zip(r)
                    .filter_map(|(v, t)| {
                        t.as_ref().map(|t| (v.clone(), t.to_string()))
                    })
                    .collect()
            })
            .collect();
        let reference_rows: Vec<Vec<(String, String)>> = reference_bgp(&triples, &patterns)
            .into_iter()
            .map(|m| m.into_iter().map(|(v, t)| (v, t.to_string())).collect())
            .collect();

        prop_assert_eq!(canon(engine_rows), canon(reference_rows), "{}", sparql);
    }

    /// Single-pattern sanity: every probe shape agrees with the reference
    /// (this isolates index selection from join ordering).
    #[test]
    fn id_native_single_pattern_matches_reference(
        n in 5usize..60,
        seed in 0u64..1000,
        ks in 0u8..4, is in 0u8..24,
        kp in 0u8..4, ip in 0u8..24,
        ko in 0u8..4, io in 0u8..24,
    ) {
        let pattern = (
            GenTerm::from_code(ks, is),
            GenTerm::from_code(kp, ip),
            GenTerm::from_code(ko, io),
        );
        let triples = crosse::smartground::random_kb(n, 5, 3, seed).unwrap();
        let store = TripleStore::new();
        store.insert_all("g", triples.iter());
        let sparql = format!(
            "SELECT * WHERE {{ {} {} {} }}",
            pattern.0.to_sparql(),
            pattern.1.to_sparql(),
            pattern.2.to_sparql()
        );
        let sols = crosse::rdf::sparql::eval::query(&store, &["g"], &sparql).unwrap();
        let reference = reference_bgp(&triples, &[pattern]);
        prop_assert_eq!(sols.len(), reference.len(), "{}", sparql);
    }
}

// ---- prepared statements ----------------------------------------------------

/// Render a value as a SQL literal (the textual-substitution side of the
/// prepare+bind ≡ substitution property).
fn sql_literal(v: &RValue) -> String {
    match v {
        RValue::Null => "NULL".to_string(),
        RValue::Bool(b) => b.to_string().to_uppercase(),
        RValue::Int(i) => i.to_string(),
        RValue::Float(f) => format!("{f:?}"),
        RValue::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// prepare + bind is observationally identical to substituting the
    /// literal into the query text and re-parsing, over randomized data,
    /// operators and bindings — in both the SQL and SESQL entry points.
    #[test]
    fn prepare_bind_equals_textual_substitution(
        rows in prop::collection::vec((0i64..50, "[a-z]{1,6}"), 1..40),
        needle in 0i64..50,
        tag in "[a-z]{1,6}",
        op_idx in 0usize..5,
        limit in 0u64..10,
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (x INT, tag TEXT)").unwrap();
        let table = db.catalog().get_table("t").unwrap();
        table
            .insert_many(
                rows.iter()
                    .map(|(x, s)| vec![RValue::Int(*x), RValue::from(s.as_str())])
                    .collect(),
            )
            .unwrap();

        let op = ["=", "<>", "<", ">=", ">"][op_idx];
        // 0 stands for "no LIMIT clause".
        let limit_clause = if limit == 0 {
            String::new()
        } else {
            format!(" LIMIT {limit}")
        };
        let shape = format!(
            "SELECT x, tag FROM t WHERE x {op} $n OR tag = ? ORDER BY x, tag{limit_clause}"
        );
        let prepared = db.prepare(&shape).unwrap();
        let bound = prepared
            .query(
                &crosse::relational::Params::new()
                    .set("n", needle)
                    .push(tag.clone()),
            )
            .unwrap();

        let textual = shape
            .replace("$n", &sql_literal(&RValue::Int(needle)))
            .replace('?', &sql_literal(&RValue::from(tag.as_str())));
        let direct = db.query(&textual).unwrap();
        prop_assert_eq!(&bound.rows, &direct.rows, "shape: {}", shape);

        // Same property through the SESQL engine's prepare path.
        let kb = crosse::rdf::provenance::KnowledgeBase::new();
        kb.register_user("u");
        let engine = crosse::core::SesqlEngine::new(db, kb);
        let sesql_shape = format!(
            "SELECT x, tag FROM t WHERE x {op} $n ORDER BY x, tag{limit_clause}"
        );
        let p = engine.prepare(&sesql_shape).unwrap();
        let via_prepared = p
            .execute("u", &crosse::relational::Params::new().set("n", needle))
            .unwrap();
        let via_text = engine
            .execute(
                "u",
                &sesql_shape.replace("$n", &sql_literal(&RValue::Int(needle))),
            )
            .unwrap();
        prop_assert_eq!(&via_prepared.rows.rows, &via_text.rows.rows);
    }

    /// Binding through a prepared SPARQL query equals writing the constant
    /// in the query text.
    #[test]
    fn sparql_prepare_bind_equals_substitution(
        subjects in prop::collection::vec("[a-z]{1,5}", 1..20),
        pick in 0usize..20,
    ) {
        let store = TripleStore::new();
        for (i, s) in subjects.iter().enumerate() {
            store.insert(
                "kb",
                &crosse::rdf::store::Triple::new(
                    crosse::rdf::term::Term::iri(s.clone()),
                    crosse::rdf::term::Term::iri("level"),
                    crosse::rdf::term::Term::lit(format!("{i}")),
                ),
            );
        }
        let target = &subjects[pick % subjects.len()];
        let p = crosse::rdf::sparql::prepare("SELECT ?o WHERE { $s <level> ?o }").unwrap();
        let bound = p
            .execute(
                &store,
                &["kb"],
                &crosse::rdf::sparql::SparqlParams::new()
                    .set("s", crosse::rdf::term::Term::iri(target.clone())),
            )
            .unwrap();
        let textual = crosse::rdf::sparql::eval::query(
            &store,
            &["kb"],
            &format!("SELECT ?o WHERE {{ <{target}> <level> ?o }}"),
        )
        .unwrap();
        prop_assert_eq!(bound.rows, textual.rows);
    }
}

// ---- semantic linter robustness ---------------------------------------------

/// A small pool of composable SQL shapes over two tables: clean queries,
/// every rule's trigger, and mixtures.
fn arb_lint_sql() -> impl Strategy<Value = String> {
    let filter = prop_oneof![
        Just(String::new()),
        (0i64..6, 0i64..6).prop_map(|(a, b)| format!(" WHERE {a} = {b}")),
        "[a-z]{1,4}".prop_map(|s| format!(" WHERE city = '{s}'")),
        (0i64..6).prop_map(|n| format!(" WHERE city = {n}")),
        Just(" WHERE city = city".to_string()),
        Just(" WHERE city = 'a' AND city = 'b'".to_string()),
        Just(" WHERE name = $p".to_string()),
        Just(" WHERE name = landfill_name".to_string()),
    ];
    (
        any::<bool>(),
        prop_oneof![Just("landfill"), Just("landfill, elem_contained")],
        filter,
        any::<bool>(),
    )
        .prop_map(|(distinct, from, filter, group)| {
            let mut s = format!(
                "SELECT {}city FROM {from}{filter}",
                if distinct { "DISTINCT " } else { "" }
            );
            // Unqualified-conjunct filters are ambiguous over the join
            // shape; GROUP BY keeps the statement well-formed either way.
            if group {
                s.push_str(" GROUP BY city");
            }
            s
        })
}

/// SPARQL shapes mixing every S-rule trigger with clean twins.
fn arb_lint_sparql() -> impl Strategy<Value = String> {
    let proj = prop_oneof![
        Just("*"),
        Just("?s"),
        Just("?s ?o"),
        Just("?ghost"),
        Just("(COUNT(*) AS ?n)"),
    ];
    let pattern = prop_oneof![
        Just("?s <urn:p> ?o"),
        Just("?s <urn:p> ?o . ?o <urn:q> ?z"),
        Just("?s <urn:p> ?dead"),
    ];
    let filter = prop_oneof![
        Just(""),
        Just(" FILTER(1 > 2)"),
        Just(" FILTER(2 > 1)"),
        Just(" FILTER(?o > 3)"),
    ];
    (proj, pattern, filter)
        .prop_map(|(p, b, f)| format!("SELECT {p} WHERE {{ {b}{f} }}"))
}

fn lint_fixture_session() -> crosse::core::session::Session {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE landfill (name TEXT, city TEXT);
         CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT, amount FLOAT);",
    )
    .unwrap();
    let kb = KnowledgeBase::new();
    kb.register_user("u");
    crosse::core::session::Session::new(&SesqlEngine::new(db, kb), "u").unwrap()
}

proptest! {
    /// The linter never panics and never errors on any parseable SQL
    /// statement, and rendering every diagnostic (message + span) is
    /// total.
    #[test]
    fn sql_linter_total_on_parseable_statements(sql in arb_lint_sql()) {
        let s = lint_fixture_session();
        let diags = s.lint_sql(&sql).unwrap();
        for d in &diags {
            let rendered = d.to_string();
            prop_assert!(!rendered.is_empty());
            if let Some(span) = &d.span {
                prop_assert!(span.start <= span.end && span.end <= sql.len());
            }
        }
    }

    /// Same for SESQL: the enrichment rules compose with the SQL rules
    /// without panicking, whatever the combination.
    #[test]
    fn sesql_linter_total(
        sql in arb_lint_sql(),
        enrich in prop_oneof![
            Just(""),
            Just(" ENRICH SCHEMAEXTENSION(city, someProp)"),
            Just(" ENRICH SCHEMAREPLACEMENT(city, urn://p)"),
        ],
    ) {
        let s = lint_fixture_session();
        let stmt = format!("{sql}{enrich}");
        let diags = s.lint(&stmt).unwrap();
        for d in &diags {
            let rendered = d.to_string();
            prop_assert!(!rendered.is_empty());
        }
    }

    /// And for SPARQL: every parseable query lints without panicking.
    #[test]
    fn sparql_linter_total(sparql in arb_lint_sparql()) {
        let s = lint_fixture_session();
        let diags = s.lint_sparql(&sparql).unwrap();
        for d in &diags {
            let rendered = d.to_string();
            prop_assert!(!rendered.is_empty());
            if let Some(span) = &d.span {
                prop_assert!(span.start <= span.end && span.end <= sparql.len());
            }
        }
    }
}
