//! Network-server robustness tests: frame-decoder totality, admission
//! control under overload, query deadlines and cooperative cancellation,
//! and slot reclamation on client disconnect.
//!
//! These run an in-process [`Server`] over a real TCP loopback socket —
//! the same code path as `crosse-cli --serve`, without process spawning.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use crosse::exec::{CancelToken, Interrupt};
use crosse::relational::{Error as RelError, Params, Value};
use crosse::server::{
    Client, ErrorCode, Lang, ProtocolError, QueryOutcome, Request, Response, Server,
    ServerConfig, ServerHandle, MAGIC,
};
use crosse::smartground::{standard_engine, SmartGroundConfig};

/// Rows in the `big` table; `big a, big b` is `SLOW_N`² pending join rows,
/// slow enough in a debug build to hold an execution slot for a while.
const SLOW_N: usize = 1200;

/// A cross join sized to run for at least hundreds of milliseconds.
const SLOW_QUERY: &str = "SELECT COUNT(*) AS n FROM big a, big b";

fn test_engine() -> crosse::core::sqm::SesqlEngine {
    let engine = standard_engine(&SmartGroundConfig::tiny(), "director")
        .expect("build tiny databank");
    let db = engine.database();
    db.execute("CREATE TABLE big (x INT)").expect("create big");
    let values: Vec<String> = (0..SLOW_N).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO big VALUES {}", values.join(",")))
        .expect("fill big");
    engine
}

fn start(config: ServerConfig) -> ServerHandle {
    Server::start(test_engine(), config).expect("start server")
}

fn connect(handle: &ServerHandle) -> Client {
    let mut c = Client::connect(handle.addr()).expect("connect");
    c.hello("director").expect("hello");
    c
}

fn stat(handle: &ServerHandle, key: &str) -> u64 {
    handle
        .stats()
        .into_iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("missing stat {key}"))
}

// ---- decoder totality -------------------------------------------------------

proptest! {
    /// The request decoder is total: arbitrary bytes decode or fail with
    /// a typed error — never a panic, never an out-of-bounds read.
    #[test]
    fn request_decoder_total_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..200)
    ) {
        let _ = Request::decode(&bytes);
    }

    /// Same for the response decoder (the client's attack surface).
    #[test]
    fn response_decoder_total_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..200)
    ) {
        let _ = Response::decode(&bytes);
    }

    /// Mutating any single byte of a valid frame still decodes totally.
    #[test]
    fn corrupted_valid_frames_decode_totally(pos in 0usize..64, val in any::<u8>()) {
        let mut frame = Request::Query {
            lang: Lang::Sesql,
            deadline_ms: 250,
            text: "SELECT name FROM landfill LIMIT 1".into(),
        }
        .encode();
        let idx = pos % frame.len();
        frame[idx] = val;
        let _ = Request::decode(&frame);
    }
}

/// Fixed corpus: each malformed shape maps to its specific typed error.
#[test]
fn malformed_frame_corpus_yields_typed_errors() {
    // Unknown request tag.
    assert_eq!(Request::decode(&[0x7f]), Err(ProtocolError::UnknownRequest(0x7f)));
    // Truncated HELLO: tag + partial length prefix.
    assert!(matches!(
        Request::decode(&[0x01, 0x05, 0x00]),
        Err(ProtocolError::Truncated { .. })
    ));
    // HELLO whose string length runs past the payload.
    assert!(matches!(
        Request::decode(&[0x01, 0xff, 0x00, 0x00, 0x00, b'a']),
        Err(ProtocolError::Truncated { .. })
    ));
    // Query with an unknown language byte.
    let mut q = vec![0x02, 9];
    q.extend_from_slice(&0u32.to_le_bytes());
    q.extend_from_slice(&1u32.to_le_bytes());
    q.push(b'x');
    assert_eq!(Request::decode(&q), Err(ProtocolError::BadLang(9)));
    // Invalid UTF-8 in a string field.
    let mut h = vec![0x01];
    h.extend_from_slice(&2u32.to_le_bytes());
    h.extend_from_slice(&[0xc3, 0x28]);
    assert_eq!(Request::decode(&h), Err(ProtocolError::BadUtf8));
    // Trailing garbage after a complete message.
    let mut ping = Request::Ping.encode();
    ping.push(0xaa);
    assert_eq!(Request::decode(&ping), Err(ProtocolError::TrailingBytes { extra: 1 }));
    // Error response with an unknown code byte.
    let mut e = vec![0x85, 0xee];
    e.extend_from_slice(&0u32.to_le_bytes());
    assert_eq!(Response::decode(&e), Err(ProtocolError::BadErrorCode(0xee)));
    // Row batch with a bad value tag.
    let mut rb = vec![0x83];
    rb.extend_from_slice(&1u32.to_le_bytes()); // 1 row
    rb.extend_from_slice(&1u16.to_le_bytes()); // 1 column
    rb.push(0x9c); // bad value tag
    assert_eq!(Response::decode(&rb), Err(ProtocolError::BadValueTag(0x9c)));
}

/// Malformed frames on a live connection get a typed ERROR reply (when
/// framing is intact) or a typed close (when it is not) — the server
/// never dies, and intact-framing errors don't kill the session.
#[test]
fn live_malformed_frames_answered_typed() {
    let mut handle = start(ServerConfig::default());
    let mut c = connect(&handle);

    // Valid framing, bogus payload: typed error, connection survives.
    let mut raw = TcpStream::connect(handle.addr()).expect("raw connect");
    raw.write_all(MAGIC).expect("magic");
    let mut echo = [0u8; 8];
    raw.read_exact(&mut echo).expect("echo");
    let payload = [0x7fu8; 3];
    raw.write_all(&(payload.len() as u32).to_le_bytes()).expect("len");
    raw.write_all(&payload).expect("payload");
    let reply = read_raw_frame(&mut raw);
    match Response::decode(&reply).expect("typed reply") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }
    // Same connection still serves after the malformed frame.
    let hello = Request::Hello { user: "director".into() }.encode();
    raw.write_all(&(hello.len() as u32).to_le_bytes()).expect("len2");
    raw.write_all(&hello).expect("hello");
    let reply = read_raw_frame(&mut raw);
    assert!(matches!(
        Response::decode(&reply).expect("hello reply"),
        Response::HelloOk { .. }
    ));
    drop(raw);

    // Oversized length prefix: typed TOO_LARGE, then close.
    let mut raw = TcpStream::connect(handle.addr()).expect("raw connect 2");
    raw.write_all(MAGIC).expect("magic");
    raw.read_exact(&mut echo).expect("echo");
    raw.write_all(&u32::MAX.to_le_bytes()).expect("huge len");
    let reply = read_raw_frame(&mut raw);
    match Response::decode(&reply).expect("typed reply") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::TooLarge),
        other => panic!("expected too-large error, got {other:?}"),
    }

    // Wrong magic: silent close, no crash.
    let mut raw = TcpStream::connect(handle.addr()).expect("raw connect 3");
    raw.write_all(b"GET / HT").expect("http-ish");
    let mut buf = [0u8; 16];
    // Server closes without echoing a valid magic.
    let n = raw.read(&mut buf).unwrap_or(0);
    assert!(n < 8 || &buf[..8] != MAGIC);

    // The real client still works: the server survived everything above.
    let r = c.query(Lang::Sql, "SELECT 1", 0).expect("query after abuse");
    assert!(r.error().is_none(), "{:?}", r.outcome);
    assert!(stat(&handle, "protocol_errors") >= 2);
    handle.shutdown();
}

fn read_raw_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("frame len");
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).expect("frame payload");
    payload
}

// ---- admission control ------------------------------------------------------

/// Overload: with one execution slot and no queue, concurrent queries
/// beyond 2x capacity are shed with typed BUSY — no hangs, no panics —
/// and the server recovers to serve normally afterwards.
#[test]
fn overload_sheds_typed_busy_and_recovers() {
    let mut handle = start(ServerConfig {
        max_active: 1,
        queue_depth: 0,
        default_deadline_ms: 0,
        ..ServerConfig::default()
    });

    // Occupy the only slot with the slow cross join (bounded by its own
    // deadline so the test can't wedge).
    let addr = handle.addr();
    let holder = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("holder connect");
        c.hello("director").expect("holder hello");
        c.query(Lang::Sql, SLOW_QUERY, 10_000).expect("holder query")
    });
    // Wait until the slot is actually held.
    let t0 = Instant::now();
    while stat(&handle, "active_queries") == 0 {
        assert!(t0.elapsed() < Duration::from_secs(10), "slot never taken");
        std::thread::sleep(Duration::from_millis(5));
    }

    // 2×+ offered load against a capacity of 1: every extra query must
    // come back quickly with a typed BUSY.
    let shed_threads: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("shed connect");
                c.hello("director").expect("shed hello");
                let t0 = Instant::now();
                let r = c.query(Lang::Sql, "SELECT COUNT(*) FROM big", 0).expect("shed query");
                (r, t0.elapsed())
            })
        })
        .collect();
    for t in shed_threads {
        let (r, latency) = t.join().expect("shed thread");
        match r.outcome {
            QueryOutcome::Error { code, .. } => assert_eq!(code, ErrorCode::Busy),
            other => panic!("expected BUSY under overload, got {other:?}"),
        }
        // Shedding is immediate — bounded latency under overload.
        assert!(latency < Duration::from_secs(2), "shed took {latency:?}");
    }
    assert!(stat(&handle, "shed") >= 4);

    // The holder finishes (or hits its own deadline) and the slot frees:
    // the server serves normally again.
    let held = holder.join().expect("holder join");
    assert!(
        held.error().is_none()
            || matches!(held.outcome, QueryOutcome::Error { code: ErrorCode::DeadlineExceeded, .. }),
        "unexpected holder outcome: {:?}",
        held.outcome
    );
    let mut c = connect(&handle);
    let r = c.query(Lang::Sql, "SELECT COUNT(*) FROM big", 0).expect("recovery query");
    assert!(r.error().is_none(), "{:?}", r.outcome);
    handle.shutdown();
}

/// Queue depth > 0: a waiter outlasts the holder and then runs (FIFO),
/// instead of being shed.
#[test]
fn queued_query_runs_after_slot_frees() {
    let mut handle = start(ServerConfig {
        max_active: 1,
        queue_depth: 4,
        default_deadline_ms: 0,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let holder = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.hello("director").expect("hello");
        c.query(Lang::Sql, "SELECT COUNT(*) AS n FROM big a, big b WHERE a.x < 200", 10_000)
            .expect("holder query")
    });
    let t0 = Instant::now();
    while stat(&handle, "active_queries") == 0 {
        assert!(t0.elapsed() < Duration::from_secs(10));
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut c = connect(&handle);
    let r = c.query(Lang::Sql, "SELECT COUNT(*) FROM big", 30_000).expect("queued query");
    assert!(r.error().is_none(), "queued query should run, got {:?}", r.outcome);
    assert_eq!(r.rows, vec![vec![Value::Int(SLOW_N as i64)]]);
    holder.join().expect("holder").error();
    handle.shutdown();
}

// ---- deadlines & cancellation -----------------------------------------------

/// Engine-level: a deadline interrupts a streaming scan mid-way — typed
/// `DeadlineExceeded`, and `rows_scanned` strictly below a completed run.
#[test]
fn deadline_stops_scan_before_completion() {
    let engine = test_engine();
    let db = engine.database();
    // A streaming (non-aggregate) join of two DISTINCT tables: a self
    // cross join would share one spooled scan (charged fully up front),
    // while distinct tables leave the probe side streaming — its scan
    // charges the counter batch by batch until the interrupt lands.
    db.execute("CREATE TABLE big2 (y INT)").expect("create big2");
    let values: Vec<String> = (0..SLOW_N).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO big2 VALUES {}", values.join(",")))
        .expect("fill big2");
    let prepared =
        db.prepare("SELECT big.x, big2.y FROM big, big2").expect("prepare slow");

    // Reference: the full run's scan count.
    let mut complete = prepared.execute(&Params::new()).expect("complete run");
    while let Some(r) = complete.next_row() {
        r.expect("complete rows");
    }
    let full_scan = complete.rows_scanned();
    assert!(full_scan > 0);

    // Interrupted: ambient token with a short deadline, installed on this
    // thread exactly like the server does per query.
    let token = CancelToken::with_deadline(Duration::from_millis(30));
    let _guard = token.make_current();
    let mut rows = prepared.execute(&Params::new()).expect("interrupted run starts");
    let mut saw_interrupt = None;
    while let Some(r) = rows.next_row() {
        match r {
            Ok(_) => {}
            Err(RelError::Interrupted(i)) => {
                saw_interrupt = Some(i);
                break;
            }
            Err(e) => panic!("expected Interrupted, got {e}"),
        }
    }
    assert_eq!(saw_interrupt, Some(Interrupt::DeadlineExceeded));
    assert!(
        rows.rows_scanned() < full_scan,
        "interrupted scan touched {} rows, full scan {}",
        rows.rows_scanned(),
        full_scan
    );
}

/// Over the wire: a short per-query deadline surfaces as a typed
/// `DEADLINE_EXCEEDED` response mid-stream, and the stats count it.
#[test]
fn deadline_exceeded_over_the_wire() {
    let mut handle = start(ServerConfig {
        default_deadline_ms: 0,
        ..ServerConfig::default()
    });
    let mut c = connect(&handle);
    let r = c.query(Lang::Sql, SLOW_QUERY, 40).expect("deadline query");
    match r.outcome {
        QueryOutcome::Error { code, ref message } => {
            assert_eq!(code, ErrorCode::DeadlineExceeded, "{message}");
            assert!(message.contains("deadline"), "{message}");
        }
        ref other => panic!("expected deadline error, got {other:?}"),
    }
    assert!(stat(&handle, "deadline_exceeded") >= 1);
    // The session survives a deadline: next query runs normally.
    let ok = c.query(Lang::Sql, "SELECT COUNT(*) FROM big", 0).expect("follow-up");
    assert!(ok.error().is_none(), "{:?}", ok.outcome);
    handle.shutdown();
}

/// Cancellation also reaches SESQL enrichment and SPARQL paths (the
/// ambient token is installed for the whole pipeline).
#[test]
fn deadline_applies_to_sesql_and_sparql() {
    let mut handle = start(ServerConfig {
        default_deadline_ms: 0,
        ..ServerConfig::default()
    });
    let mut c = connect(&handle);
    // A SESQL statement over the slow relational core.
    let r = c.query(Lang::Sesql, SLOW_QUERY, 40).expect("sesql deadline");
    match r.outcome {
        QueryOutcome::Error { code, .. } => assert_eq!(code, ErrorCode::DeadlineExceeded),
        ref other => panic!("expected deadline error, got {other:?}"),
    }
    // SPARQL with an immediate deadline: the evaluator's batch checks trip
    // before (or while) producing solutions.
    let r = c
        .query(Lang::Sparql, "SELECT ?s ?p ?o WHERE { ?s ?p ?o }", 1)
        .expect("sparql deadline");
    if let QueryOutcome::Error { code, .. } = r.outcome {
        assert!(
            code == ErrorCode::DeadlineExceeded || code == ErrorCode::Cancelled,
            "unexpected code {code:?}"
        );
    }
    // (A fast SPARQL query may still finish inside 1ms — both outcomes
    // are legal; what matters is no hang and no panic.)
    handle.shutdown();
}

// ---- disconnect reclamation -------------------------------------------------

/// A client that starts a row-heavy query and vanishes mid-stream frees
/// its execution slot: the server notices the dead socket, drops the
/// permit, and admits the next query.
#[test]
fn disconnect_mid_stream_frees_the_slot() {
    let mut handle = start(ServerConfig {
        max_active: 1,
        queue_depth: 0,
        default_deadline_ms: 0,
        ..ServerConfig::default()
    });

    // Raw connection: handshake, hello, fire a row-heavy query, vanish.
    let mut raw = TcpStream::connect(handle.addr()).expect("raw connect");
    raw.write_all(MAGIC).expect("magic");
    let mut echo = [0u8; 8];
    raw.read_exact(&mut echo).expect("echo");
    let hello = Request::Hello { user: "director".into() }.encode();
    raw.write_all(&(hello.len() as u32).to_le_bytes()).expect("len");
    raw.write_all(&hello).expect("hello");
    let _ = read_raw_frame(&mut raw);
    // Row-heavy: the server must actually write (and fail) to notice.
    let q = Request::Query {
        lang: Lang::Sql,
        deadline_ms: 60_000,
        text: "SELECT a.x, b.x FROM big a, big b".into(),
    }
    .encode();
    raw.write_all(&(q.len() as u32).to_le_bytes()).expect("len");
    raw.write_all(&q).expect("query");
    let t0 = Instant::now();
    while stat(&handle, "active_queries") == 0 {
        assert!(t0.elapsed() < Duration::from_secs(10), "query never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(raw); // vanish mid-stream

    // The slot must free without the query running to completion: a new
    // client gets admitted (not BUSY) within the reclamation window.
    let mut c = connect(&handle);
    let t0 = Instant::now();
    loop {
        let r = c.query(Lang::Sql, "SELECT COUNT(*) FROM big", 5_000).expect("probe");
        match r.outcome {
            QueryOutcome::Done { .. } => break,
            QueryOutcome::Error { code: ErrorCode::Busy, .. } => {
                assert!(
                    t0.elapsed() < Duration::from_secs(20),
                    "slot never reclaimed after disconnect"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("unexpected probe outcome: {other:?}"),
        }
    }
    handle.shutdown();
}

// ---- shutdown ---------------------------------------------------------------

/// Graceful drain: shutdown lets a running query finish, refuses new
/// connections' queries with SHUTTING_DOWN, and returns.
#[test]
fn shutdown_drains_then_stops() {
    let mut handle = start(ServerConfig {
        default_deadline_ms: 0,
        drain_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let in_flight = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.hello("director").expect("hello");
        c.query(Lang::Sql, "SELECT COUNT(*) AS n FROM big a, big b WHERE a.x < 150", 30_000)
            .expect("in-flight query")
    });
    let t0 = Instant::now();
    while stat(&handle, "active_queries") == 0 {
        assert!(t0.elapsed() < Duration::from_secs(10));
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown();
    let r = in_flight.join().expect("in-flight join");
    // Drain let it finish (or, if the drain window elapsed, it was
    // cancelled cooperatively — typed either way).
    match r.outcome {
        QueryOutcome::Done { .. } => {}
        QueryOutcome::Error { code, .. } => assert_eq!(code, ErrorCode::Cancelled),
    }
}
