//! Fig. 5 grammar conformance: a corpus of valid and invalid SESQL texts
//! mirroring every production of the paper's BNF (experiment E1's
//! correctness side).

use crosse::core::parse_sesql;

/// Every production of Fig. 5 exercised at least once.
const VALID: &[&str] = &[
    // s → ENRICH body, body → exp (single clause of each kind)
    "SELECT a FROM t ENRICH SCHEMAEXTENSION(a, p)",
    "SELECT a FROM t ENRICH SCHEMAREPLACEMENT(a, p)",
    "SELECT a FROM t ENRICH BOOLSCHEMAEXTENSION(a, p, C)",
    "SELECT a FROM t ENRICH BOOLSCHEMAREPLACEMENT(a, p, C)",
    "SELECT a FROM t WHERE ${a = X:c1} ENRICH REPLACECONSTANT(c1, X, p)",
    "SELECT a FROM t WHERE ${a = a:c1} ENRICH REPLACEVARIABLE(c1, a, p)",
    // body → exp body (repetition)
    "SELECT a, b FROM t ENRICH SCHEMAEXTENSION(a, p) SCHEMAEXTENSION(b, q)",
    "SELECT a, b FROM t ENRICH SCHEMAEXTENSION(a, p) SCHEMAREPLACEMENT(b, q) \
     BOOLSCHEMAEXTENSION(a, r, C)",
    // wexp alongside exp
    "SELECT a FROM t WHERE ${a = X:c1} \
     ENRICH SCHEMAEXTENSION(a, p) REPLACECONSTANT(c1, X, q)",
    // keyword case-insensitivity and optional spacing (the paper itself
    // writes both SCHEMAEXTENSION and SCHEMA EXTENSION)
    "select a from t enrich schemaextension(a, p)",
    "SELECT a FROM t ENRICH SCHEMA EXTENSION(a, p)",
    "SELECT a FROM t ENRICH Bool Schema Extension(a, p, C)",
    // map/property/concept as quoted strings (STRING terminals)
    "SELECT a FROM t ENRICH SCHEMAEXTENSION('a', 'my prop')",
    // qualified attributes
    "SELECT t.a FROM t ENRICH SCHEMAEXTENSION(t.a, p)",
    // full paper examples, verbatim shapes
    "SELECT elem_name, landfill_name FROM elem_contained WHERE landfill_name = 'a' \
     ENRICH SCHEMAEXTENSION( elem_name, dangerLevel)",
    "SELECT name, city FROM landfill ENRICH SCHEMAREPLACEMENT(city, inCountry)",
    "SELECT elem_name FROM elem_contained WHERE landfill_name = 'a' \
     ENRICH BOOLSCHEMAEXTENSION( elem_name, isA, HazardousWaste)",
    "SELECT name, city FROM landfill ENRICH BOOLSCHEMAREPLACEMENT(city, inCountry, Italy)",
    "SELECT landfill_name FROM elem_contained WHERE ${elem_name = HazardousWaste:cond1} \
     ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)",
    "SELECT Elecond1.landfill_name AS l_name1, Elecond2.landfill_name AS l_name2, \
     Elecond1.elem_name \
     FROM elem_contained AS Elecond1, elem_contained AS Elecond2 \
     WHERE ${ Elecond1.elem_name <> Elecond2.elem_name :cond1} AND \
     Elecond1.elem_name = Elecond2.elem_name \
     ENRICH REPLACEVARIABLE(cond1, Elecond2.elem_name, oreAssemblage)",
    // plain SQL is valid SESQL (no ENRICH)
    "SELECT a FROM t",
    // SESQL composes with the extended SQL surface: subqueries, CASE and
    // IN-lists in the SQL part must survive the ENRICH split untouched.
    "SELECT a FROM t WHERE a IN (SELECT b FROM u) ENRICH SCHEMAEXTENSION(a, p)",
    "SELECT a FROM t WHERE EXISTS (SELECT b FROM u) ENRICH SCHEMAREPLACEMENT(a, p)",
    "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END AS c FROM t \
     ENRICH SCHEMAEXTENSION(c, p)",
    "SELECT a FROM t WHERE ${a = X:c1} AND a > (SELECT AVG(b) FROM u) \
     ENRICH REPLACECONSTANT(c1, X, p)",
];

const INVALID: &[&str] = &[
    // ENRICH with no clause
    "SELECT a FROM t ENRICH",
    // unknown clause keyword
    "SELECT a FROM t ENRICH EXTEND(a, p)",
    // wrong arity per production
    "SELECT a FROM t ENRICH SCHEMAEXTENSION(a)",
    "SELECT a FROM t ENRICH SCHEMAEXTENSION(a, p, c)",
    "SELECT a FROM t ENRICH SCHEMAREPLACEMENT(a)",
    "SELECT a FROM t ENRICH BOOLSCHEMAEXTENSION(a, p)",
    "SELECT a FROM t ENRICH BOOLSCHEMAREPLACEMENT(a, p, c, d)",
    "SELECT a FROM t WHERE ${a = X:c1} ENRICH REPLACECONSTANT(c1, X)",
    "SELECT a FROM t WHERE ${a = a:c1} ENRICH REPLACEVARIABLE(c1)",
    // missing parens / unterminated argument list
    "SELECT a FROM t ENRICH SCHEMAEXTENSION a, p",
    "SELECT a FROM t ENRICH SCHEMAEXTENSION(a, p",
    // condition id referenced but never tagged
    "SELECT a FROM t ENRICH REPLACECONSTANT(c1, X, p)",
    // malformed tagging
    "SELECT a FROM t WHERE ${a = X} ENRICH REPLACECONSTANT(c1, X, p)",
    "SELECT a FROM t WHERE ${a = X:c1 ENRICH REPLACECONSTANT(c1, X, p)",
    "SELECT a FROM t WHERE ${:c1} ENRICH REPLACECONSTANT(c1, X, p)",
    // duplicate condition ids
    "SELECT a FROM t WHERE ${a = 1:c} AND ${b = 2:c} ENRICH REPLACECONSTANT(c, X, p)",
    // SQL part must be a SELECT
    "INSERT INTO t VALUES (1) ENRICH SCHEMAEXTENSION(a, p)",
    "DELETE FROM t ENRICH SCHEMAEXTENSION(a, p)",
    // broken SQL part
    "SELECT FROM t ENRICH SCHEMAEXTENSION(a, p)",
    "ENRICH SCHEMAEXTENSION(a, p)",
];

#[test]
fn valid_corpus_parses() {
    for (i, text) in VALID.iter().enumerate() {
        parse_sesql(text).unwrap_or_else(|e| panic!("VALID[{i}] rejected: {e}\n  {text}"));
    }
}

#[test]
fn invalid_corpus_is_rejected() {
    for (i, text) in INVALID.iter().enumerate() {
        assert!(
            parse_sesql(text).is_err(),
            "INVALID[{i}] unexpectedly accepted:\n  {text}"
        );
    }
}

#[test]
fn parsed_clause_kinds_match_keywords() {
    use crosse::core::Enrichment;
    let q = parse_sesql(
        "SELECT a, b FROM t WHERE ${a = X:c1} ENRICH \
         SCHEMAEXTENSION(a, p) BOOLSCHEMAREPLACEMENT(b, q, C) \
         REPLACECONSTANT(c1, X, r)",
    )
    .unwrap();
    let kinds: Vec<&str> = q.enrichments.iter().map(Enrichment::keyword).collect();
    assert_eq!(
        kinds,
        vec!["SCHEMAEXTENSION", "BOOLSCHEMAREPLACEMENT", "REPLACECONSTANT"]
    );
}

#[test]
fn display_round_trips_through_parser() {
    // Queries with `${...:id}` markers render without the markers (the
    // Display form is the cleaned query), so only marker-free queries are
    // expected to reparse identically.
    for text in VALID {
        let q = parse_sesql(text).unwrap();
        if !q.conditions.is_empty() {
            continue;
        }
        let rendered = q.to_string();
        let q2 = parse_sesql(&rendered)
            .unwrap_or_else(|e| panic!("render of `{text}` failed to reparse: {e}\n  {rendered}"));
        assert_eq!(q.enrichments, q2.enrichments, "{rendered}");
    }
}

// ---- parameter placeholders (`$name` / `?`) across the three grammars ------

/// SESQL texts with placeholders that must parse, with the expected number
/// of parameter slots.
#[test]
fn sesql_parameter_grammar() {
    for (text, slots) in [
        // named in WHERE
        ("SELECT a FROM t WHERE a = $x", 1),
        // repeated named = one slot
        ("SELECT a FROM t WHERE a = $x OR b = $x", 1),
        // positional each get a slot
        ("SELECT a FROM t WHERE a = ? AND b = ?", 2),
        // mixed
        ("SELECT a FROM t WHERE a = $x AND b = ?", 2),
        // in projection / LIMIT-adjacent clauses
        ("SELECT a, $tag FROM t", 1),
        // inside IN-lists and BETWEEN
        ("SELECT a FROM t WHERE a IN ($x, $y, ?)", 3),
        ("SELECT a FROM t WHERE a BETWEEN $lo AND $hi", 2),
        // inside subqueries
        ("SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE c = $x)", 1),
        // with enrichment clauses
        (
            "SELECT a FROM t WHERE b = $x ENRICH SCHEMAEXTENSION(a, p)",
            1,
        ),
        // named params inside tagged conditions share the global slots
        (
            "SELECT a FROM t WHERE ${a = $x:c1} ENRICH REPLACEVARIABLE(c1, a, p)",
            1,
        ),
    ] {
        let q = parse_sesql(text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        assert_eq!(q.params.len(), slots, "{text}");
    }
}

#[test]
fn sesql_parameter_grammar_rejects() {
    // `$` without a name.
    assert!(parse_sesql("SELECT a FROM t WHERE a = $ 1").is_err());
    // positional placeholders inside tagged conditions are ambiguous.
    let err = parse_sesql(
        "SELECT a FROM t WHERE ${a = ?:c1} ENRICH REPLACEVARIABLE(c1, a, p)",
    )
    .unwrap_err();
    assert!(err.to_string().contains("positional"), "{err}");
}

#[test]
fn sql_parameter_grammar() {
    use crosse::relational::sql::parser::parse_statement_with_params;
    for (text, slots) in [
        ("SELECT a FROM t WHERE a = $x", 1),
        ("SELECT a FROM t WHERE a = ? OR b = ?", 2),
        ("SELECT a FROM t WHERE a LIKE $pat", 1),
        ("SELECT a FROM t GROUP BY a HAVING COUNT(*) > $n", 1),
        ("SELECT a FROM t ORDER BY a LIMIT 5", 0),
        ("SELECT a FROM t JOIN u ON t.a = u.b WHERE u.c = ?", 1),
        ("SELECT a FROM t WHERE x = $x UNION SELECT b FROM u WHERE y = $y", 2),
    ] {
        let (_, params) = parse_statement_with_params(text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        assert_eq!(params.len(), slots, "{text}");
    }
    // Display renders placeholders back as written.
    let (stmt, _) =
        parse_statement_with_params("SELECT a FROM t WHERE a = $x AND b = ?").unwrap();
    let rendered = stmt.to_string();
    assert!(rendered.contains("$x"), "{rendered}");
    assert!(rendered.contains('?'), "{rendered}");
}

#[test]
fn sparql_parameter_grammar() {
    use crosse::rdf::sparql::prepare;
    for (text, slots) in [
        // $name in each triple position
        ("SELECT ?o WHERE { $s <p> ?o }", 1),
        ("SELECT ?s WHERE { ?s $p ?o }", 1),
        ("SELECT ?s WHERE { ?s <p> $o }", 1),
        // repeated named = one slot
        ("SELECT ?s WHERE { ?s <p> $x . ?s <q> $x }", 1),
        // positional
        ("SELECT ?s WHERE { ?s ? ? }", 2),
        // in FILTER
        ("SELECT ?s WHERE { ?s <p> ?v . FILTER(?v >= $min && ?v < $max) }", 2),
        // across UNION / OPTIONAL branches
        (
            "SELECT ?s WHERE { { ?s <p> $x } UNION { ?s <q> $x } }",
            1,
        ),
        // `?name` stays a plain variable
        ("SELECT ?s WHERE { ?s <p> ?name }", 0),
    ] {
        let p = prepare(text).unwrap_or_else(|e| panic!("`{text}` failed: {e}"));
        assert_eq!(p.params().len(), slots, "{text}");
    }
    // `$` without a name is rejected.
    assert!(prepare("SELECT ?s WHERE { ?s <p> $ }").is_err());
}
