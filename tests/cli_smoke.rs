//! Smoke test for the `crosse-cli` binary: drive it with a scripted
//! session over a pipe and check the printed results.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_script(script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_crosse-cli"))
        .args(["--landfills", "10", "--seed", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn crosse-cli");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "cli exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn sql_and_sesql_statements_print_tables() {
    let out = run_script(
        "SELECT name FROM landfill ORDER BY name LIMIT 2;\n\
         SELECT elem_name FROM elem_contained LIMIT 1 \
         ENRICH SCHEMAEXTENSION(elem_name, dangerLevel);\n",
    );
    assert!(out.contains("LF00000"), "{out}");
    assert!(out.contains("dangerLevel"), "{out}");
}

#[test]
fn multi_line_statement_and_error_reporting() {
    let out = run_script(
        "SELECT name\nFROM landfill\nLIMIT 1;\n\
         SELECT nope FROM landfill;\n",
    );
    assert!(out.contains("(1 rows)") || out.contains("| name"), "{out}");
    assert!(out.contains("error:"), "{out}");
}

#[test]
fn dot_commands_work_scripted() {
    let out = run_script(
        ".tables\n\
         .schema landfill\n\
         .user alice\n\
         .assert Hg isA Dangerous\n\
         .kb\n\
         .sparql ASK { <Hg> <isA> <Dangerous> }\n\
         .explain SELECT name FROM landfill ENRICH SCHEMAEXTENSION(name, p)\n\
         .quit\n",
    );
    assert!(out.contains("elem_contained"), "{out}");
    assert!(out.contains("tons"), "{out}");
    assert!(out.contains("asserted statement"), "{out}");
    assert!(out.contains("<Hg> <isA> <Dangerous>"), "{out}");
    assert!(out.contains("true"), "{out}");
    assert!(out.contains("SESQL plan"), "{out}");
}

#[test]
fn users_are_isolated() {
    // alice's annotation must not leak into the director's context.
    let out = run_script(
        ".user alice\n\
         .assert Zz dangerLevel 9\n\
         .user director\n\
         .sparql ASK { <Zz> <dangerLevel> ?d }\n",
    );
    assert!(out.contains("false"), "{out}");
}
