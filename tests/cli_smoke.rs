//! Smoke test for the `crosse-cli` binary: drive it with a scripted
//! session over a pipe and check the printed results.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_script(script: &str) -> String {
    run_script_with_args(&[], script)
}

fn run_script_with_args(extra: &[&str], script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_crosse-cli"))
        .args(["--landfills", "10", "--seed", "1"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn crosse-cli");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "cli exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn sql_and_sesql_statements_print_tables() {
    let out = run_script(
        "SELECT name FROM landfill ORDER BY name LIMIT 2;\n\
         SELECT elem_name FROM elem_contained LIMIT 1 \
         ENRICH SCHEMAEXTENSION(elem_name, dangerLevel);\n",
    );
    assert!(out.contains("LF00000"), "{out}");
    assert!(out.contains("dangerLevel"), "{out}");
}

#[test]
fn multi_line_statement_and_error_reporting() {
    let out = run_script(
        "SELECT name\nFROM landfill\nLIMIT 1;\n\
         SELECT nope FROM landfill;\n",
    );
    assert!(out.contains("(1 rows)") || out.contains("| name"), "{out}");
    assert!(out.contains("error:"), "{out}");
}

#[test]
fn dot_commands_work_scripted() {
    let out = run_script(
        ".tables\n\
         .schema landfill\n\
         .user alice\n\
         .assert Hg isA Dangerous\n\
         .kb\n\
         .sparql ASK { <Hg> <isA> <Dangerous> }\n\
         .explain SELECT name FROM landfill ENRICH SCHEMAEXTENSION(name, p)\n\
         .quit\n",
    );
    assert!(out.contains("elem_contained"), "{out}");
    assert!(out.contains("tons"), "{out}");
    assert!(out.contains("asserted statement"), "{out}");
    assert!(out.contains("<Hg> <isA> <Dangerous>"), "{out}");
    assert!(out.contains("true"), "{out}");
    assert!(out.contains("SESQL plan"), "{out}");
}

#[test]
fn users_are_isolated() {
    // alice's annotation must not leak into the director's context.
    let out = run_script(
        ".user alice\n\
         .assert Zz dangerLevel 9\n\
         .user director\n\
         .sparql ASK { <Zz> <dangerLevel> ?d }\n",
    );
    assert!(out.contains("false"), "{out}");
}

#[test]
fn exec_binds_quoted_values_with_spaces() {
    // `\exec` arguments honour single quotes: a value containing spaces
    // binds as ONE parameter. The query compares the bound parameter to a
    // multi-word literal, so the count is 10 iff the value arrived intact
    // (the pre-fix tokenizer split it at whitespace and errored).
    let out = run_script(
        "\\prepare q SELECT COUNT(*) AS n FROM landfill WHERE $c = 'Basse di Stura';\n\
         \\exec q $c='Basse di Stura'\n\
         \\exec q $c='other'\n",
    );
    assert!(out.contains("prepared `q`"), "{out}");
    assert!(out.contains("| 10 |"), "space-containing value mangled:\n{out}");
    assert!(out.contains("| 0 "), "non-matching value should count 0:\n{out}");
    assert!(!out.contains("error:"), "{out}");
}

#[test]
fn exec_binds_values_containing_equals_and_dollar() {
    let out = run_script(
        "\\prepare eq SELECT COUNT(*) AS n FROM landfill WHERE $c = 'a=b c';\n\
         \\exec eq $c='a=b c'\n\
         \\prepare dl SELECT COUNT(*) AS n FROM landfill WHERE ? = '$lit x';\n\
         \\exec dl '$lit x'\n",
    );
    let hits = out.matches("| 10 |").count();
    assert_eq!(hits, 2, "= / $ values mangled:\n{out}");
    assert!(!out.contains("error:"), "{out}");
}

#[test]
fn exec_quoted_positional_and_escaped_quote() {
    // `''` escapes a quote inside a quoted value, for positional and named
    // bindings alike.
    let out = run_script(
        "\\prepare who SELECT COUNT(*) AS n FROM landfill WHERE ? = 'O''Brien jr';\n\
         \\exec who 'O''Brien jr'\n\
         \\exec who plain\n",
    );
    assert!(out.contains("| 10 |"), "escaped quote failed:\n{out}");
    assert!(out.contains("| 0 "), "bare positional failed:\n{out}");
    assert!(!out.contains("error:"), "{out}");
}

#[test]
fn exec_unterminated_quote_reports_error() {
    let out = run_script(
        "\\prepare q SELECT name FROM landfill WHERE name = $n;\n\
         \\exec q $n='unclosed\n",
    );
    assert!(out.contains("unterminated quoted string"), "{out}");
}

#[test]
fn quoted_numeric_binds_as_text_not_int() {
    // Quotes force string binding: '123' equals the string literal, a bare
    // 999 binds as Int and trips the typed comparison error instead.
    let out = run_script(
        "\\prepare q SELECT COUNT(*) AS n FROM landfill WHERE $c = '123';\n\
         \\exec q $c='123'\n\
         \\exec q $c=999\n",
    );
    assert!(out.contains("| 10 |"), "quoted numeric must stay a string:\n{out}");
    assert!(out.contains("cannot compare 999"), "{out}");
}

#[test]
fn explain_meta_command_prints_optimized_plan() {
    let out = run_script(
        "\\explain SELECT name FROM landfill WHERE city = 'X' LIMIT 2\n\
         \\prepare q SELECT COUNT(*) AS n FROM landfill;\n\
         \\explain q\n",
    );
    // Plain statement: the SESQL explain shape with the optimized tree.
    assert!(out.contains("SESQL plan"), "{out}");
    assert!(out.contains("SeqScan: landfill"), "{out}");
    // Prepared name resolves to its compiled text.
    assert!(out.contains("Aggregate"), "{out}");
    assert!(!out.contains("error:"), "{out}");
}

#[test]
fn explain_meta_command_shows_shared_spools_for_self_join() {
    let out = run_script(
        "\\explain SELECT e1.elem_name FROM elem_contained e1, elem_contained e2 \
         WHERE e1.elem_name = e2.elem_name AND e1.landfill_name <> e2.landfill_name\n",
    );
    // The self-join scans one table twice; CSE spools it.
    assert!(out.contains("Shared spool #0"), "{out}");
    assert!(out.contains("-- cse:"), "{out}");
}

#[test]
fn explain_flag_prints_plan_before_results() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_crosse-cli"))
        .args(["--landfills", "10", "--seed", "1", "--explain"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn crosse-cli");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"SELECT name FROM landfill ORDER BY name LIMIT 2;\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "{:?}", out.status);
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Plan first (EXPLAIN shape), then the result table.
    let plan_at = stdout.find("relational plan:").expect("plan printed");
    let rows_at = stdout.find("(2 rows)").expect("results printed");
    assert!(plan_at < rows_at, "{stdout}");

    let help = Command::new(env!("CARGO_BIN_EXE_crosse-cli"))
        .arg("--help")
        .output()
        .expect("run --help");
    let help_text = String::from_utf8(help.stdout).unwrap();
    assert!(help_text.contains("--explain"), "{help_text}");
}

#[test]
fn timing_output_tags_shared_pairs_table_legs() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_crosse-cli"))
        .args(["--landfills", "10", "--seed", "1", "--timing"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn crosse-cli");
    let q = "SELECT e1.landfill_name AS l1, e2.landfill_name AS l2 \
             FROM elem_contained AS e1, elem_contained AS e2 \
             WHERE e1.landfill_name <> e2.landfill_name AND \
             ${ e1.elem_name = e2.elem_name :cond1} \
             ENRICH REPLACEVARIABLE(cond1, e2.elem_name, oreAssemblage);\n";
    let script = format!("{q}{q}");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "{:?}", out.status);
    let stdout = String::from_utf8(out.stdout).unwrap();
    // First execution recomputes the leg; the second is served from the
    // persistent pairs table and tagged `shared`.
    assert!(stdout.contains("-- leg") || stdout.contains("--   leg"), "{stdout}");
    assert!(stdout.contains(", shared]"), "{stdout}");
    let recomputed = stdout
        .lines()
        .filter(|l| l.contains("leg [") && !l.contains(", shared]") && !l.contains(", cached]"))
        .count();
    assert!(recomputed >= 1, "first leg should be recomputed:\n{stdout}");
}

#[test]
fn wal_stats_reports_in_memory_without_data_dir() {
    let out = run_script("\\wal-stats\n");
    assert!(out.contains("in-memory engine"), "{out}");
}

#[test]
fn data_dir_persists_sessions_and_checkpoint_truncates() {
    let dir = std::env::temp_dir().join(format!("crosse-cli-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();

    // Session 1: create durable state, checkpoint it, inspect the WAL.
    let out = run_script_with_args(
        &["--data-dir", dir_s, "--wal-sync", "every_n:8"],
        "CREATE TABLE smoke (x INT);\n\
         INSERT INTO smoke VALUES (1), (2);\n\
         \\checkpoint\n\
         \\wal-stats\n",
    );
    assert!(out.contains("checkpoint written at LSN"), "{out}");
    assert!(out.contains("sync policy:     every_n:8"), "{out}");
    assert!(out.contains("snapshot LSN:"), "{out}");

    // Session 2: the same directory recovers the table without re-seeding.
    let out = run_script_with_args(
        &["--data-dir", dir_s],
        "SELECT COUNT(*) AS n FROM smoke;\n\
         SELECT COUNT(*) AS lf FROM landfill;\n",
    );
    assert!(out.contains("| 2 |"), "smoke table lost across restart:\n{out}");
    assert!(out.contains("| 10 |"), "databank should not re-seed:\n{out}");

    // The help text documents the durability surface.
    let help = Command::new(env!("CARGO_BIN_EXE_crosse-cli"))
        .arg("--help")
        .output()
        .expect("run --help");
    let help_text = String::from_utf8(help.stdout).unwrap();
    assert!(help_text.contains("--data-dir"), "{help_text}");
    assert!(help_text.contains("--wal-sync"), "{help_text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn threads_flag_accepted_and_reported_in_help() {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_crosse-cli"))
        .args(["--landfills", "10", "--seed", "1", "--threads", "4"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn crosse-cli");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"SELECT COUNT(*) FROM elem_contained;\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "{:?}", out.status);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("(1 rows)"), "{stdout}");

    let help = std::process::Command::new(env!("CARGO_BIN_EXE_crosse-cli"))
        .arg("--help")
        .output()
        .expect("run --help");
    let help_text = String::from_utf8(help.stdout).unwrap();
    assert!(help_text.contains("--threads"), "{help_text}");
    assert!(help_text.contains("worker threads"), "{help_text}");
}

#[test]
fn lint_meta_command_reports_findings() {
    let out = run_script(
        "\\lint SELECT name FROM landfill WHERE 1 = 2;\n\
         \\lint SELECT name FROM landfill LIMIT 1;\n",
    );
    assert!(out.contains("error[L001]"), "{out}");
    assert!(out.contains("(no lint findings)"), "{out}");
}

#[test]
fn lint_flag_prints_findings_but_still_executes() {
    let out = run_script_with_args(
        &["--lint"],
        "SELECT name FROM landfill WHERE 1 = 2 LIMIT 1;\n",
    );
    assert!(out.contains("-- lint: error[L001]"), "{out}");
    // Without --deny-warnings the statement still runs (empty result).
    assert!(out.contains("(0 rows)"), "{out}");
}

#[test]
fn deny_warnings_refuses_statement_and_exits_nonzero() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_crosse-cli"))
        .args(["--landfills", "10", "--seed", "1", "--deny-warnings"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn crosse-cli");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"SELECT name FROM landfill WHERE 1 = 2 LIMIT 1;\nSELECT name FROM landfill LIMIT 1;\n")
        .expect("write script");
    let out = child.wait_with_output().expect("wait");
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    assert!(!out.status.success(), "deny-warnings must exit non-zero: {stdout}");
    assert!(stdout.contains("refused under --deny-warnings"), "{stdout}");
    // The refused statement produced no result table...
    assert!(!stdout.contains("(0 rows)"), "{stdout}");
    // ...but the clean follow-up still ran.
    assert!(stdout.contains("LF0"), "{stdout}");
}

/// Spawn `--serve 127.0.0.1:0`, read the bound address off stdout, and
/// hand it (plus the server child, whose stdin keeps it alive) to `f`.
fn with_server(extra: &[&str], f: impl FnOnce(&str)) {
    use std::io::{BufRead, BufReader};
    let mut server = Command::new(env!("CARGO_BIN_EXE_crosse-cli"))
        .args(["--landfills", "10", "--seed", "1", "--serve", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server");
    let mut line = String::new();
    BufReader::new(server.stdout.as_mut().expect("stdout"))
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line.trim().rsplit(' ').next().expect("address").to_string();
    f(&addr);
    // Closing stdin asks the server to drain and stop.
    drop(server.stdin.take());
    let status = server.wait().expect("server wait");
    assert!(status.success(), "server exit: {status:?}");
}

#[test]
fn connect_mode_round_trips_queries_over_the_wire() {
    with_server(&[], |addr| {
        let mut child = Command::new(env!("CARGO_BIN_EXE_crosse-cli"))
            .args(["--connect", addr])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn client");
        child
            .stdin
            .as_mut()
            .expect("stdin")
            .write_all(
                b"SELECT name FROM landfill ORDER BY name LIMIT 2;\n\
                  SELECT elem_name FROM elem_contained WHERE landfill_name = 'LF00000' \
                  ENRICH SCHEMAEXTENSION(elem_name, dangerLevel);\n\
                  CREATE TABLE wire_t (a INT);\n\
                  INSERT INTO wire_t VALUES (1), (2);\n\
                  SELECT nope FROM landfill;\n\
                  .sparql SELECT ?s WHERE { ?s ?p ?o } LIMIT 1\n\
                  \\server-stats\n\
                  \\ping\n",
            )
            .expect("write script");
        let out = child.wait_with_output().expect("client wait");
        assert!(out.status.success(), "client exit: {:?}", out.status);
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(stdout.contains("LF00000"), "{stdout}");
        assert!(stdout.contains("dangerLevel"), "{stdout}");
        assert!(stdout.contains("(2 row(s) in"), "{stdout}");
        assert!(stdout.contains("error [Query]"), "{stdout}");
        assert!(stdout.contains("accepted_queries"), "{stdout}");
        assert!(stdout.contains("pong"), "{stdout}");
    });
}

#[test]
fn connect_mode_explain_and_lint_run_remotely() {
    with_server(&[], |addr| {
        let mut child = Command::new(env!("CARGO_BIN_EXE_crosse-cli"))
            .args(["--connect", addr])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn client");
        child
            .stdin
            .as_mut()
            .expect("stdin")
            .write_all(
                b"\\explain SELECT name FROM landfill LIMIT 1\n\
                  \\lint SELECT name FROM landfill WHERE 1 = 2\n",
            )
            .expect("write script");
        let out = child.wait_with_output().expect("client wait");
        assert!(out.status.success(), "client exit: {:?}", out.status);
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(stdout.to_lowercase().contains("scan"), "{stdout}");
        assert!(stdout.contains("L001"), "{stdout}");
    });
}

#[test]
fn help_mentions_server_modes() {
    let help = Command::new(env!("CARGO_BIN_EXE_crosse-cli"))
        .arg("--help")
        .output()
        .expect("run --help");
    let text = String::from_utf8(help.stdout).unwrap();
    assert!(text.contains("--serve"), "{text}");
    assert!(text.contains("--connect"), "{text}");
    assert!(text.contains("crates/server/DESIGN.md"), "{text}");
}
