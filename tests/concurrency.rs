//! Concurrency: the platform is shared mutable state behind locks; these
//! tests exercise parallel readers/writers across every layer.

use std::sync::Arc;
use std::thread;

use crosse::core::platform::CrossePlatform;
use crosse::prelude::*;
use crosse::rdf::TripleStore;

#[test]
fn parallel_triple_store_writers_land_all_triples() {
    let store = TripleStore::new();
    let mut handles = Vec::new();
    for w in 0..8 {
        let store = store.clone();
        handles.push(thread::spawn(move || {
            for i in 0..200 {
                store.insert(
                    &format!("g{w}"),
                    &Triple::new(
                        Term::iri(format!("s{w}_{i}")),
                        Term::iri("p"),
                        Term::lit(i.to_string()),
                    ),
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(store.len(), 8 * 200);
    // Dictionary stayed consistent: every term resolves.
    for w in 0..8 {
        assert_eq!(store.graph_len(&format!("g{w}")), 200);
    }
}

#[test]
fn readers_run_during_writes() {
    let store = TripleStore::new();
    store.insert("kb", &Triple::new(Term::iri("a"), Term::iri("p"), Term::lit("0")));
    let writer = {
        let store = store.clone();
        thread::spawn(move || {
            for i in 0..500 {
                store.insert(
                    "kb",
                    &Triple::new(Term::iri(format!("s{i}")), Term::iri("p"), Term::lit("x")),
                );
            }
        })
    };
    let reader = {
        let store = store.clone();
        thread::spawn(move || {
            let mut last = 0;
            for _ in 0..200 {
                let sols = crosse::rdf::sparql::eval::query(
                    &store,
                    &["kb"],
                    "SELECT ?s WHERE { ?s <p> ?o }",
                )
                .unwrap();
                assert!(sols.len() >= last, "monotone growth under inserts");
                last = sols.len();
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
}

#[test]
fn parallel_sql_writers_on_distinct_tables() {
    let db = Database::new();
    let mut handles = Vec::new();
    for w in 0..6 {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            db.execute(&format!("CREATE TABLE t{w} (x INT)")).unwrap();
            for i in 0..100 {
                db.execute(&format!("INSERT INTO t{w} VALUES ({i})")).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for w in 0..6 {
        let rs = db.query(&format!("SELECT COUNT(*) FROM t{w}")).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(100));
    }
}

#[test]
fn parallel_inserts_into_one_table_lose_nothing() {
    let db = Database::new();
    db.execute("CREATE TABLE shared (who INT, n INT)").unwrap();
    let mut handles = Vec::new();
    for w in 0..4i64 {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            for i in 0..250 {
                db.execute(&format!("INSERT INTO shared VALUES ({w}, {i})")).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let rs = db.query("SELECT COUNT(*) FROM shared").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(1000));
}

#[test]
fn concurrent_annotation_and_import() {
    let db = Database::new();
    db.execute("CREATE TABLE elem_contained (elem_name TEXT)").unwrap();
    db.execute("INSERT INTO elem_contained VALUES ('Hg'), ('Pb')").unwrap();
    let platform = Arc::new(CrossePlatform::new(db, KnowledgeBase::new()));
    for u in 0..4 {
        platform.register_user(&format!("user{u}")).unwrap();
    }
    let mut handles = Vec::new();
    for u in 0..4 {
        let platform = Arc::clone(&platform);
        handles.push(thread::spawn(move || {
            let me = format!("user{u}");
            for i in 0..50 {
                platform
                    .independent_annotation(
                        &me,
                        Term::iri(format!("c{u}_{i}")),
                        Term::iri("p"),
                        Term::lit("v"),
                    )
                    .unwrap();
                // Occasionally adopt whatever peers have published.
                if i % 10 == 0 {
                    for info in platform.browse_peer_statements(&me).into_iter().take(3)
                    {
                        platform.import_statement(&me, info.id).unwrap();
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let kb = platform.knowledge_base();
    // All 200 distinct statements exist and every user holds at least
    // their own 50.
    assert_eq!(kb.public_statements().len(), 200);
    for u in 0..4 {
        assert!(kb.personal_size(&format!("user{u}")) >= 50);
    }
}

#[test]
fn concurrent_sesql_execution_with_kb_updates() {
    let engine = Arc::new(
        crosse::smartground::standard_engine(
            &SmartGroundConfig::tiny(),
            "director",
        )
        .unwrap(),
    );
    let writer = {
        let engine = Arc::clone(&engine);
        thread::spawn(move || {
            let kb = engine.knowledge_base();
            for i in 0..100 {
                kb.assert_statement(
                    "director",
                    &Triple::new(
                        Term::iri(format!("Extra{i}")),
                        Term::iri("dangerLevel"),
                        Term::lit("2"),
                    ),
                )
                .unwrap();
            }
        })
    };
    let mut readers = Vec::new();
    for _ in 0..4 {
        let engine = Arc::clone(&engine);
        readers.push(thread::spawn(move || {
            for _ in 0..20 {
                let r = engine
                    .execute(
                        "director",
                        "SELECT elem_name FROM elem_contained \
                         ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
                    )
                    .unwrap();
                assert!(r.rows.len() >= r.report.base_rows);
            }
        }));
    }
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

#[test]
fn concurrent_replace_variable_queries_do_not_collide() {
    // REPLACEVARIABLE materialises a temporary KB-pairs table in the main
    // database; parallel executions must use distinct names.
    let engine = Arc::new(
        crosse::smartground::standard_engine(&SmartGroundConfig::tiny(), "director")
            .unwrap(),
    );
    let sesql = "SELECT e1.landfill_name AS l1, e2.landfill_name AS l2 \
                 FROM elem_contained AS e1, elem_contained AS e2 \
                 WHERE e1.landfill_name <> e2.landfill_name AND \
                       ${ e1.elem_name = e2.elem_name :cond1} \
                 ENRICH REPLACEVARIABLE(cond1, e2.elem_name, oreAssemblage)";
    let expected = engine.execute("director", sesql).unwrap().rows.len();
    let mut handles = Vec::new();
    for _ in 0..6 {
        let engine = Arc::clone(&engine);
        handles.push(thread::spawn(move || {
            for _ in 0..5 {
                let r = engine.execute("director", sesql).unwrap();
                assert_eq!(r.rows.len(), expected);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // No leaked pairs tables.
    let leftovers: Vec<String> = engine
        .database()
        .catalog()
        .table_names()
        .into_iter()
        .filter(|t| t.starts_with("__kb_pairs"))
        .collect();
    assert!(leftovers.is_empty(), "leaked: {leftovers:?}");
}

#[test]
fn indexed_queries_stay_consistent_under_concurrent_dml() {
    // Writers churn the table (insert + delete, which dirties the index
    // and forces lazy rebuilds) while readers run indexed point queries.
    // Every observed result must be internally consistent: all returned
    // rows actually carry the queried key.
    let db = Database::new();
    db.execute("CREATE TABLE t (k TEXT, v INT)").unwrap();
    db.execute("CREATE INDEX ik ON t (k)").unwrap();
    for i in 0..200 {
        db.execute(&format!("INSERT INTO t VALUES ('k{}', {i})", i % 10))
            .unwrap();
    }
    let db = Arc::new(db);
    let mut handles = Vec::new();
    for w in 0..2 {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            for i in 0..150 {
                db.execute(&format!("INSERT INTO t VALUES ('k{}', {})", i % 10, 1000 + w))
                    .unwrap();
                if i % 7 == 0 {
                    db.execute(&format!("DELETE FROM t WHERE v = {}", i * 3 % 200))
                        .unwrap();
                }
            }
        }));
    }
    for _ in 0..4 {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            for i in 0..200 {
                let key = format!("k{}", i % 10);
                let rs = db
                    .query(&format!("SELECT k, v FROM t WHERE k = '{key}'"))
                    .unwrap();
                for row in &rs.rows {
                    assert_eq!(row[0].lexical_form(), key);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // After the dust settles the index agrees with a sequential scan.
    let with_index = db.query("SELECT COUNT(*) FROM t WHERE k = 'k3'").unwrap();
    db.execute("DROP INDEX ik").unwrap();
    let without = db.query("SELECT COUNT(*) FROM t WHERE k = 'k3'").unwrap();
    assert_eq!(with_index.rows, without.rows);
}

#[test]
fn sparql_leg_cache_safe_under_concurrent_annotation() {
    // Readers enrich repeatedly (hitting and repopulating the cache) while
    // a writer annotates; every result must reflect *some* consistent KB
    // state — in particular, cached results must never contain an element
    // the KB has never described.
    let platform = CrossePlatform::from_engine(
        crosse::smartground::standard_engine(
            &crosse::smartground::SmartGroundConfig::tiny(),
            "director",
        )
        .unwrap(),
    );
    let platform = Arc::new(platform);
    let sesql = "SELECT elem_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";
    let writer = {
        let p = Arc::clone(&platform);
        thread::spawn(move || {
            for i in 0..100 {
                p.independent_annotation(
                    "director",
                    Term::iri(format!("Syn{i}")),
                    Term::iri("dangerLevel"),
                    Term::lit("9"),
                )
                .unwrap();
            }
        })
    };
    let mut readers = Vec::new();
    for _ in 0..3 {
        let p = Arc::clone(&platform);
        readers.push(thread::spawn(move || {
            let mut hits = 0u32;
            for _ in 0..100 {
                let r = p.query("director", sesql).unwrap();
                if r.report.sparql_runs[0].cached {
                    hits += 1;
                }
                // Synthetic subjects never occur in the relational table,
                // so the enrichment may add values only for real elements.
                for row in &r.rows.rows {
                    assert!(!row[0].lexical_form().starts_with("Syn"));
                }
            }
            hits
        }));
    }
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}
