// srclint: allow(R001): the lock_tracking test serializer deliberately uses
// std::sync::Mutex so it stays invisible to the acquisition-order graph it
// is testing.
//! Concurrency: the platform is shared mutable state behind locks; these
//! tests exercise parallel readers/writers across every layer.
//!
//! `cargo xtask stress` re-runs this suite with elevated iteration counts
//! (`CROSSE_STRESS_ITERS` multiplier) and worker-thread budgets
//! (`CROSSE_EXEC_THREADS` ∈ {1, 4, 8}).

use std::sync::Arc;
use std::thread;

use crosse::core::platform::CrossePlatform;
use crosse::prelude::*;
use crosse::rdf::TripleStore;

/// Iteration count scaled by the `CROSSE_STRESS_ITERS` multiplier (1 when
/// unset — the default quick run).
fn stress_iters(base: usize) -> usize {
    std::env::var("CROSSE_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(base, |m| base * m.max(1))
}

/// Worker-thread budget for the morsel-parallel tests: the
/// `CROSSE_EXEC_THREADS` override, or `default`.
fn stress_threads(default: usize) -> usize {
    std::env::var("CROSSE_EXEC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default)
        .max(1)
}

#[test]
fn parallel_triple_store_writers_land_all_triples() {
    let store = TripleStore::new();
    let mut handles = Vec::new();
    for w in 0..8 {
        let store = store.clone();
        handles.push(thread::spawn(move || {
            for i in 0..200 {
                store.insert(
                    &format!("g{w}"),
                    &Triple::new(
                        Term::iri(format!("s{w}_{i}")),
                        Term::iri("p"),
                        Term::lit(i.to_string()),
                    ),
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(store.len(), 8 * 200);
    // Dictionary stayed consistent: every term resolves.
    for w in 0..8 {
        assert_eq!(store.graph_len(&format!("g{w}")), 200);
    }
}

#[test]
fn readers_run_during_writes() {
    let store = TripleStore::new();
    store.insert("kb", &Triple::new(Term::iri("a"), Term::iri("p"), Term::lit("0")));
    let writer = {
        let store = store.clone();
        thread::spawn(move || {
            for i in 0..500 {
                store.insert(
                    "kb",
                    &Triple::new(Term::iri(format!("s{i}")), Term::iri("p"), Term::lit("x")),
                );
            }
        })
    };
    let reader = {
        let store = store.clone();
        thread::spawn(move || {
            let mut last = 0;
            for _ in 0..200 {
                let sols = crosse::rdf::sparql::eval::query(
                    &store,
                    &["kb"],
                    "SELECT ?s WHERE { ?s <p> ?o }",
                )
                .unwrap();
                assert!(sols.len() >= last, "monotone growth under inserts");
                last = sols.len();
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
}

#[test]
fn parallel_sql_writers_on_distinct_tables() {
    let db = Database::new();
    let mut handles = Vec::new();
    for w in 0..6 {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            db.execute(&format!("CREATE TABLE t{w} (x INT)")).unwrap();
            for i in 0..100 {
                db.execute(&format!("INSERT INTO t{w} VALUES ({i})")).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for w in 0..6 {
        let rs = db.query(&format!("SELECT COUNT(*) FROM t{w}")).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(100));
    }
}

#[test]
fn parallel_inserts_into_one_table_lose_nothing() {
    let db = Database::new();
    db.execute("CREATE TABLE shared (who INT, n INT)").unwrap();
    let mut handles = Vec::new();
    for w in 0..4i64 {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            for i in 0..250 {
                db.execute(&format!("INSERT INTO shared VALUES ({w}, {i})")).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let rs = db.query("SELECT COUNT(*) FROM shared").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(1000));
}

#[test]
fn concurrent_annotation_and_import() {
    let db = Database::new();
    db.execute("CREATE TABLE elem_contained (elem_name TEXT)").unwrap();
    db.execute("INSERT INTO elem_contained VALUES ('Hg'), ('Pb')").unwrap();
    let platform = Arc::new(CrossePlatform::new(db, KnowledgeBase::new()));
    for u in 0..4 {
        platform.register_user(&format!("user{u}")).unwrap();
    }
    let mut handles = Vec::new();
    for u in 0..4 {
        let platform = Arc::clone(&platform);
        handles.push(thread::spawn(move || {
            let me = format!("user{u}");
            for i in 0..50 {
                platform
                    .independent_annotation(
                        &me,
                        Term::iri(format!("c{u}_{i}")),
                        Term::iri("p"),
                        Term::lit("v"),
                    )
                    .unwrap();
                // Occasionally adopt whatever peers have published.
                if i % 10 == 0 {
                    for info in platform.browse_peer_statements(&me).into_iter().take(3)
                    {
                        platform.import_statement(&me, info.id).unwrap();
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let kb = platform.knowledge_base();
    // All 200 distinct statements exist and every user holds at least
    // their own 50.
    assert_eq!(kb.public_statements().len(), 200);
    for u in 0..4 {
        assert!(kb.personal_size(&format!("user{u}")) >= 50);
    }
}

#[test]
fn concurrent_sesql_execution_with_kb_updates() {
    let engine = Arc::new(
        crosse::smartground::standard_engine(
            &SmartGroundConfig::tiny(),
            "director",
        )
        .unwrap(),
    );
    let writer = {
        let engine = Arc::clone(&engine);
        thread::spawn(move || {
            let kb = engine.knowledge_base();
            for i in 0..100 {
                kb.assert_statement(
                    "director",
                    &Triple::new(
                        Term::iri(format!("Extra{i}")),
                        Term::iri("dangerLevel"),
                        Term::lit("2"),
                    ),
                )
                .unwrap();
            }
        })
    };
    let mut readers = Vec::new();
    for _ in 0..4 {
        let engine = Arc::clone(&engine);
        readers.push(thread::spawn(move || {
            for _ in 0..20 {
                let r = engine
                    .execute(
                        "director",
                        "SELECT elem_name FROM elem_contained \
                         ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
                    )
                    .unwrap();
                assert!(r.rows.len() >= r.report.base_rows);
            }
        }));
    }
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

#[test]
fn concurrent_replace_variable_queries_do_not_collide() {
    // REPLACEVARIABLE materialises a KB-pairs table in the main database;
    // parallel executions must not corrupt each other. The cache keeps
    // one table alive per (graphs, property) for warm reuse — after
    // `clear_cache` nothing may remain.
    let engine = Arc::new(
        crosse::smartground::standard_engine(&SmartGroundConfig::tiny(), "director")
            .unwrap(),
    );
    let sesql = "SELECT e1.landfill_name AS l1, e2.landfill_name AS l2 \
                 FROM elem_contained AS e1, elem_contained AS e2 \
                 WHERE e1.landfill_name <> e2.landfill_name AND \
                       ${ e1.elem_name = e2.elem_name :cond1} \
                 ENRICH REPLACEVARIABLE(cond1, e2.elem_name, oreAssemblage)";
    let expected = engine.execute("director", sesql).unwrap().rows.len();
    let mut handles = Vec::new();
    for _ in 0..6 {
        let engine = Arc::clone(&engine);
        handles.push(thread::spawn(move || {
            for _ in 0..5 {
                let r = engine.execute("director", sesql).unwrap();
                assert_eq!(r.rows.len(), expected);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let pairs_tables = |engine: &crosse::core::sqm::SesqlEngine| -> Vec<String> {
        engine
            .database()
            .catalog()
            .table_names()
            .into_iter()
            .filter(|t| t.starts_with("__kb_pairs"))
            .collect()
    };
    // The cache owns at most one persistent pairs table for this query
    // shape; concurrent executions must not have leaked extras.
    assert!(pairs_tables(&engine).len() <= 1, "leaked: {:?}", pairs_tables(&engine));
    // Dropping the caches drops the persistent table too.
    engine.clear_cache();
    assert!(pairs_tables(&engine).is_empty(), "leaked: {:?}", pairs_tables(&engine));
}

#[test]
fn indexed_queries_stay_consistent_under_concurrent_dml() {
    // Writers churn the table (insert + delete, which dirties the index
    // and forces lazy rebuilds) while readers run indexed point queries.
    // Every observed result must be internally consistent: all returned
    // rows actually carry the queried key.
    let db = Database::new();
    db.execute("CREATE TABLE t (k TEXT, v INT)").unwrap();
    db.execute("CREATE INDEX ik ON t (k)").unwrap();
    for i in 0..200 {
        db.execute(&format!("INSERT INTO t VALUES ('k{}', {i})", i % 10))
            .unwrap();
    }
    let db = Arc::new(db);
    let mut handles = Vec::new();
    for w in 0..2 {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            for i in 0..150 {
                db.execute(&format!("INSERT INTO t VALUES ('k{}', {})", i % 10, 1000 + w))
                    .unwrap();
                if i % 7 == 0 {
                    db.execute(&format!("DELETE FROM t WHERE v = {}", i * 3 % 200))
                        .unwrap();
                }
            }
        }));
    }
    for _ in 0..4 {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            for i in 0..200 {
                let key = format!("k{}", i % 10);
                let rs = db
                    .query(&format!("SELECT k, v FROM t WHERE k = '{key}'"))
                    .unwrap();
                for row in &rs.rows {
                    assert_eq!(row[0].lexical_form(), key);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // After the dust settles the index agrees with a sequential scan.
    let with_index = db.query("SELECT COUNT(*) FROM t WHERE k = 'k3'").unwrap();
    db.execute("DROP INDEX ik").unwrap();
    let without = db.query("SELECT COUNT(*) FROM t WHERE k = 'k3'").unwrap();
    assert_eq!(with_index.rows, without.rows);
}

#[test]
fn sparql_leg_cache_safe_under_concurrent_annotation() {
    // Readers enrich repeatedly (hitting and repopulating the cache) while
    // a writer annotates; every result must reflect *some* consistent KB
    // state — in particular, cached results must never contain an element
    // the KB has never described.
    let platform = CrossePlatform::from_engine(
        crosse::smartground::standard_engine(
            &crosse::smartground::SmartGroundConfig::tiny(),
            "director",
        )
        .unwrap(),
    );
    let platform = Arc::new(platform);
    let sesql = "SELECT elem_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";
    let writer = {
        let p = Arc::clone(&platform);
        thread::spawn(move || {
            for i in 0..100 {
                p.independent_annotation(
                    "director",
                    Term::iri(format!("Syn{i}")),
                    Term::iri("dangerLevel"),
                    Term::lit("9"),
                )
                .unwrap();
            }
        })
    };
    let mut readers = Vec::new();
    for _ in 0..3 {
        let p = Arc::clone(&platform);
        readers.push(thread::spawn(move || {
            let mut hits = 0u32;
            for _ in 0..100 {
                let r = p.query("director", sesql).unwrap();
                if r.report.sparql_runs[0].cached {
                    hits += 1;
                }
                // Synthetic subjects never occur in the relational table,
                // so the enrichment may add values only for real elements.
                for row in &r.rows.rows {
                    assert!(!row[0].lexical_form().starts_with("Syn"));
                }
            }
            hits
        }));
    }
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

// ---- snapshot isolation of streaming cursors --------------------------------
//
// Regression tests for the PR-2 batch-boundary anomaly: a cursor's scan
// loop re-took the table lock per batch, so DML landing between batches
// could make one query skip rows (DELETE/TRUNCATE compacting the heap) or
// observe phantoms (INSERT appending behind the scan position). A cursor
// now pins a copy-on-write snapshot at open and must see exactly the rows
// of that snapshot.

use crosse::relational::exec::stream::SCAN_BATCH;

fn int_table(db: &Database, n: usize) {
    db.execute("CREATE TABLE snap_t (x INT)").unwrap();
    let t = db.catalog().get_table("snap_t").unwrap();
    t.insert_many((0..n as i64).map(|i| vec![Value::Int(i)]).collect())
        .unwrap();
}

/// Drain a cursor, returning (row count, sum of column 0).
fn drain_ints(cur: &mut crosse::relational::Rows) -> (usize, i64) {
    let (mut n, mut sum) = (0usize, 0i64);
    while let Some(r) = cur.next_row() {
        match r.unwrap()[0] {
            Value::Int(x) => {
                n += 1;
                sum += x;
            }
            ref other => panic!("expected Int, got {other:?}"),
        }
    }
    (n, sum)
}

#[test]
fn cursor_opened_before_truncate_sees_its_full_snapshot() {
    let db = Database::new();
    let n = 3 * SCAN_BATCH + 37;
    int_table(&db, n);
    let mut cur = db.query_cursor("SELECT x FROM snap_t").unwrap();
    // Pull one row (the cursor is mid-scan), then truncate the table.
    assert!(cur.next_row().is_some());
    db.execute("DELETE FROM snap_t").unwrap();
    assert_eq!(db.query("SELECT COUNT(*) FROM snap_t").unwrap().rows[0][0], Value::Int(0));
    // The cursor must still produce every remaining snapshot row — the
    // pre-snapshot executor returned nothing past the first batch.
    let (rest, _) = drain_ints(&mut cur);
    assert_eq!(rest, n - 1, "cursor lost rows to a concurrent TRUNCATE");
}

#[test]
fn cursor_opened_before_delete_neither_skips_nor_double_reads() {
    let db = Database::new();
    let n = 3 * SCAN_BATCH;
    int_table(&db, n);
    let mut cur = db.query_cursor("SELECT x FROM snap_t").unwrap();
    assert!(cur.next_row().is_some()); // x = 0
    // Deleting the first half compacts the heap under a positional scan:
    // the old executor skipped the rows that shifted below the scan point.
    db.execute(&format!("DELETE FROM snap_t WHERE x < {}", n / 2)).unwrap();
    let (rest, sum) = drain_ints(&mut cur);
    assert_eq!(rest, n - 1, "snapshot must be unaffected by the DELETE");
    let expected: i64 = (1..n as i64).sum();
    assert_eq!(sum, expected, "every snapshot row exactly once");
}

#[test]
fn cursor_opened_before_insert_sees_no_phantoms() {
    let db = Database::new();
    let n = 2 * SCAN_BATCH + 11;
    int_table(&db, n);
    let mut cur = db.query_cursor("SELECT x FROM snap_t").unwrap();
    assert!(cur.next_row().is_some());
    // Appends land behind the scan position: the old executor returned
    // them as phantom rows of a query that started before they existed.
    let t = db.catalog().get_table("snap_t").unwrap();
    t.insert_many((0..2 * SCAN_BATCH as i64).map(|i| vec![Value::Int(1_000_000 + i)]).collect())
        .unwrap();
    let (rest, sum) = drain_ints(&mut cur);
    assert_eq!(rest, n - 1, "phantom rows leaked into an open cursor");
    assert_eq!(sum, (1..n as i64).sum::<i64>());
}

#[test]
fn cursor_snapshot_isolated_under_writer_churn() {
    // End-to-end variant: a writer thread churns the table while cursors
    // stream; every cursor must return exactly the generation it pinned.
    let db = Database::new();
    let n = 3 * SCAN_BATCH;
    int_table(&db, n);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                db.execute(&format!("INSERT INTO snap_t VALUES ({})", 2_000_000 + i))
                    .unwrap();
                if i % 3 == 0 {
                    db.execute(&format!("DELETE FROM snap_t WHERE x = {}", 2_000_000 + i))
                        .unwrap();
                }
                i += 1;
            }
        })
    };
    for _ in 0..stress_iters(20) {
        let mut cur = db.query_cursor("SELECT x FROM snap_t").unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut count = 0usize;
        while let Some(r) = cur.next_row() {
            let Value::Int(x) = r.unwrap()[0] else { panic!("expected Int") };
            assert!(seen.insert(x), "row {x} double-read within one cursor");
            count += 1;
        }
        // The snapshot held at least the original rows (the writer only
        // adds/removes its own sentinel values above 2_000_000).
        assert!(count >= n, "cursor saw {count} rows, snapshot had >= {n}");
        assert!((0..n as i64).all(|i| seen.contains(&i)), "original row skipped");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}

// ---- morsel-driven parallel execution ---------------------------------------

#[test]
fn parallel_execution_matches_sequential() {
    let db = Database::new();
    db.execute("CREATE TABLE big (k INT, grp TEXT, v FLOAT)").unwrap();
    let t = db.catalog().get_table("big").unwrap();
    let rows: Vec<Vec<Value>> = (0..20_000i64)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::from(format!("g{}", i % 7)),
                Value::Float((i % 100) as f64 / 3.0),
            ]
        })
        .collect();
    t.insert_many(rows).unwrap();
    db.execute("CREATE TABLE dim (grp TEXT, label TEXT)").unwrap();
    for g in 0..5 {
        db.execute(&format!("INSERT INTO dim VALUES ('g{g}', 'label{g}')")).unwrap();
    }
    let queries = [
        // scan → filter → project pipeline
        "SELECT k, v FROM big WHERE v > 20.0 AND k < 15000 ORDER BY k",
        // aggregation over a parallel filter
        "SELECT grp, COUNT(*), SUM(v) FROM big WHERE k >= 100 GROUP BY grp ORDER BY grp",
        // hash join: parallel probe side (big) against the dim build side
        "SELECT d.label, COUNT(*) FROM big b JOIN dim d ON b.grp = d.grp \
         WHERE b.v < 30.0 GROUP BY d.label ORDER BY d.label",
        // LEFT join padding must survive partition-parallel probing
        "SELECT COUNT(*) FROM big b LEFT JOIN dim d ON b.grp = d.grp WHERE d.label IS NULL",
    ];
    for q in queries {
        db.set_exec_threads(1);
        let sequential = db.query(q).unwrap();
        db.set_exec_threads(stress_threads(4));
        let parallel = db.query(q).unwrap();
        assert_eq!(sequential.rows, parallel.rows, "parallel != sequential for `{q}`");
    }
}

#[test]
fn parallel_limit_still_short_circuits_scan() {
    let db = Database::new();
    int_table(&db, 50_000);
    db.set_exec_threads(stress_threads(4));
    let threads = db.exec_threads();
    let p = db.prepare("SELECT x FROM snap_t WHERE x >= 0 LIMIT 5").unwrap();
    let mut cur = p.execute(&Params::new()).unwrap();
    let mut n = 0;
    while let Some(r) = cur.next_row() {
        r.unwrap();
        n += 1;
    }
    assert_eq!(n, 5);
    // One wave is `threads × SCAN_BATCH` rows; LIMIT must stop within a
    // couple of waves, far below the 50k-row table.
    let cap = (2 * threads as u64 + 1) * SCAN_BATCH as u64;
    assert!(
        cur.rows_scanned() <= cap,
        "LIMIT 5 scanned {} rows with {} threads (cap {})",
        cur.rows_scanned(),
        threads,
        cap
    );
}

#[test]
fn parallel_scans_stay_consistent_under_concurrent_dml() {
    // Writers churn a big table while readers run morsel-parallel filtered
    // scans; every result must be internally consistent (pinned snapshot):
    // all returned rows satisfy the predicate and no row appears twice.
    let db = Database::new();
    db.execute("CREATE TABLE churn (k INT, tag TEXT)").unwrap();
    let t = db.catalog().get_table("churn").unwrap();
    t.insert_many(
        (0..12_000i64)
            .map(|i| vec![Value::Int(i), Value::from(if i % 2 == 0 { "even" } else { "odd" })])
            .collect(),
    )
    .unwrap();
    db.set_exec_threads(stress_threads(4));
    let db = Arc::new(db);
    let mut handles = Vec::new();
    for w in 0..2i64 {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            for i in 0..stress_iters(60) as i64 {
                db.execute(&format!(
                    "INSERT INTO churn VALUES ({}, 'extra')",
                    100_000 + w * 1_000_000 + i
                ))
                .unwrap();
                if i % 5 == 0 {
                    db.execute(&format!(
                        "DELETE FROM churn WHERE k = {}",
                        100_000 + w * 1_000_000 + i - 3
                    ))
                    .unwrap();
                }
            }
        }));
    }
    for _ in 0..3 {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            for _ in 0..stress_iters(30) {
                let rs = db
                    .query("SELECT k, tag FROM churn WHERE tag = 'even'")
                    .unwrap();
                let mut seen = std::collections::HashSet::new();
                for row in &rs.rows {
                    assert_eq!(row[1], Value::from("even"));
                    let Value::Int(k) = row[0] else { panic!("expected Int") };
                    assert!(seen.insert(k), "row {k} returned twice in one scan");
                }
                assert_eq!(rs.rows.len(), 6_000, "all 6000 even rows, exactly");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn parallel_sparql_probe_matches_sequential() {
    use crosse::rdf::sparql::eval::{evaluate_with, EvalOptions};
    use crosse::rdf::sparql::parser::parse_query;

    let store = TripleStore::new();
    // A two-hop star wide enough to push probe batches past the parallel
    // threshold (> 1024 intermediate rows).
    for i in 0..60 {
        for j in 0..40 {
            store.insert(
                "kb",
                &Triple::new(
                    Term::iri(format!("hub{i}")),
                    Term::iri("linksTo"),
                    Term::iri(format!("leaf{i}_{j}")),
                ),
            );
            store.insert(
                "kb",
                &Triple::new(
                    Term::iri(format!("leaf{i}_{j}")),
                    Term::iri("weight"),
                    Term::lit(((i * j) % 17).to_string()),
                ),
            );
        }
    }
    let q = parse_query(
        "SELECT ?hub ?leaf ?w WHERE { ?hub <linksTo> ?leaf . ?leaf <weight> ?w }",
    )
    .unwrap();
    let sequential = evaluate_with(&store, &["kb"], &q, &EvalOptions { threads: 1, ..Default::default() }).unwrap();
    let threads = stress_threads(4);
    let parallel = evaluate_with(&store, &["kb"], &q, &EvalOptions { threads, ..Default::default() }).unwrap();
    assert_eq!(sequential.len(), 60 * 40);
    assert_eq!(sequential.rows, parallel.rows, "parallel probe must be bit-identical");
}

#[test]
fn parallel_session_queries_under_kb_writer() {
    // The full stack with a worker pool: SESQL enrichment + SPARQL legs on
    // a multi-threaded engine while the KB takes writes.
    let engine = crosse::smartground::standard_engine(&SmartGroundConfig::tiny(), "director")
        .unwrap();
    engine.set_exec_threads(stress_threads(4));
    let engine = Arc::new(engine);
    let writer = {
        let engine = Arc::clone(&engine);
        thread::spawn(move || {
            let kb = engine.knowledge_base();
            for i in 0..stress_iters(50) {
                kb.assert_statement(
                    "director",
                    &Triple::new(
                        Term::iri(format!("ParExtra{i}")),
                        Term::iri("dangerLevel"),
                        Term::lit("3"),
                    ),
                )
                .unwrap();
            }
        })
    };
    let mut readers = Vec::new();
    for _ in 0..3 {
        let engine = Arc::clone(&engine);
        readers.push(thread::spawn(move || {
            for _ in 0..stress_iters(15) {
                let r = engine
                    .execute(
                        "director",
                        "SELECT elem_name FROM elem_contained \
                         ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
                    )
                    .unwrap();
                assert!(r.rows.len() >= r.report.base_rows);
            }
        }));
    }
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

/// Lock-order and blocking-region analysis: these tests drive the
/// parking_lot shim's acquisition tracker, so they exist only in debug
/// builds (the tracker compiles out of release — `cargo xtask stress`
/// runs its release rounds without them and a dedicated debug round with
/// `CROSSE_LOCK_TRACK=1` for the gate below).
#[cfg(debug_assertions)]
mod lock_tracking {
    use super::*;
    use crosse::relational::Database;
    use parking_lot::tracking::{self, Violation};
    use parking_lot::Mutex;

    /// Tracking state (the enabled flag, the order graph, the violation
    /// list) is process-global; tests that flip or assert on it take this
    /// serializer. Deliberately a raw std mutex: the serializer itself
    /// must not join the acquisition graph under test.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Does this violation involve any sabotage-labelled site (injected
    /// by the tests below) — as opposed to real engine locks?
    fn is_sabotage(v: &Violation) -> bool {
        match v {
            Violation::Order(o) => {
                o.held.starts_with("sabotage.")
                    || o.acquiring.starts_with("sabotage.")
                    || o.cycle.iter().any(|s| s.starts_with("sabotage."))
            }
            Violation::HeldAcrossBlocking { region, locks } => {
                region.starts_with("sabotage.")
                    || locks.iter().any(|l| l.starts_with("sabotage."))
            }
        }
    }

    /// Sabotage: thread 1 acquires A then B, thread 2 acquires B then A.
    /// No real deadlock occurs (the threads are sequenced), but the
    /// acquisition-order graph must report the inversion.
    #[test]
    fn sabotage_inversion_two_threads_is_detected() {
        let _s = serial();
        tracking::set_enabled(true);
        let a = Arc::new(Mutex::new_labeled("sabotage.inv_a", 0u32));
        let b = Arc::new(Mutex::new_labeled("sabotage.inv_b", 0u32));

        let (t1_done_tx, t1_done_rx) = std::sync::mpsc::channel::<()>();
        let t1 = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let ga = a.lock();
                let gb = b.lock(); // establishes the edge inv_a -> inv_b
                drop((ga, gb));
                t1_done_tx.send(()).unwrap();
            })
        };
        t1_done_rx.recv().unwrap();
        let t2 = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let gb = b.lock();
                let ga = a.lock(); // closes the cycle: inv_b -> inv_a
                drop((gb, ga));
            })
        };
        t1.join().unwrap();
        t2.join().unwrap();

        let hit = tracking::violations().into_iter().any(|v| match v {
            Violation::Order(o) => {
                (o.held == "sabotage.inv_b" && o.acquiring == "sabotage.inv_a")
                    || (o.held == "sabotage.inv_a" && o.acquiring == "sabotage.inv_b")
            }
            _ => false,
        });
        assert!(hit, "the A->B / B->A inversion went undetected");
    }

    /// Sabotage: enter a blocking region while holding an unexpected
    /// lock — the declared-IO analysis must flag the held lock.
    #[test]
    fn sabotage_lock_held_across_blocking_region_is_detected() {
        let _s = serial();
        tracking::set_enabled(true);
        let m = Mutex::new_labeled("sabotage.io_holder", ());
        let g = m.lock();
        let region = tracking::blocking_region("sabotage.fake_fsync");
        drop(region);
        drop(g);

        let hit = tracking::violations().into_iter().any(|v| {
            matches!(
                v,
                Violation::HeldAcrossBlocking { region, ref locks }
                    if region == "sabotage.fake_fsync"
                        && locks.contains(&"sabotage.io_holder")
            )
        });
        assert!(hit, "lock held across a blocking region went undetected");
    }

    /// Sabotage against the *real* WAL: a caller-held lock across a
    /// durable write must be flagged when the append fsyncs — the
    /// `wal.fsync` region only expects the WAL's own appender/barrier.
    #[test]
    fn sabotage_lock_held_across_real_wal_fsync_is_detected() {
        let _s = serial();
        tracking::set_enabled(true);
        let dir = std::env::temp_dir().join(format!(
            "crosse-locktrack-fsync-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Database::open_with(
            &dir,
            crosse::relational::WalOptions { sync: crosse::relational::SyncPolicy::Always },
        )
        .unwrap();
        db.execute("CREATE TABLE t (n INT)").unwrap();

        let m = Mutex::new_labeled("sabotage.wal_holder", ());
        let g = m.lock();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        drop(g);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);

        let hit = tracking::violations().into_iter().any(|v| {
            matches!(
                v,
                Violation::HeldAcrossBlocking { region, ref locks }
                    if region == "wal.fsync" && locks.contains(&"sabotage.wal_holder")
            )
        });
        assert!(hit, "a lock held across a real WAL fsync went undetected");
    }

    /// The regression gate `cargo xtask stress` runs in its debug round:
    /// after a mixed engine workload (relational DML + enrichment +
    /// durable writes + parallel scans), the tracker must have recorded
    /// no violation among *real* engine locks. Sabotage-labelled
    /// violations injected by the tests above are filtered out.
    #[test]
    fn lock_order_gate_engine_workload_runs_clean() {
        let _s = serial();
        tracking::set_enabled(true);

        // Durable leg: WAL + checkpoint rotation under group commit.
        let dir = std::env::temp_dir().join(format!(
            "crosse-locktrack-gate-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Database::open_with(
                &dir,
                crosse::relational::WalOptions {
                    sync: crosse::relational::SyncPolicy::EveryN(4),
                },
            )
            .unwrap();
            db.execute("CREATE TABLE gate (n INT, s TEXT)").unwrap();
            for i in 0..stress_iters(40) {
                db.execute(&format!("INSERT INTO gate VALUES ({i}, 'v{i}')")).unwrap();
            }
            db.checkpoint().unwrap();
            assert_eq!(db.query("SELECT COUNT(*) AS c FROM gate").unwrap().len(), 1);
        }
        let _ = std::fs::remove_dir_all(&dir);

        // Enrichment leg: SESQL across the relational + RDF substrates,
        // concurrent readers against a KB writer.
        let engine = standard_engine(&SmartGroundConfig::tiny(), "director").unwrap();
        engine.set_exec_threads(stress_threads(4));
        let engine = Arc::new(engine);
        let writer = {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let kb = engine.knowledge_base();
                for i in 0..stress_iters(10) {
                    kb.assert_statement(
                        "director",
                        &Triple::new(
                            Term::iri(format!("GateExtra{i}")),
                            Term::iri("dangerLevel"),
                            Term::lit("2"),
                        ),
                    )
                    .unwrap();
                }
            })
        };
        let mut readers = Vec::new();
        for _ in 0..2 {
            let engine = Arc::clone(&engine);
            readers.push(thread::spawn(move || {
                for _ in 0..stress_iters(5) {
                    engine
                        .execute(
                            "director",
                            "SELECT elem_name FROM elem_contained \
                             ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
                        )
                        .unwrap();
                }
            }));
        }
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }

        let real: Vec<String> = tracking::violations()
            .iter()
            .filter(|v| !is_sabotage(v))
            .map(|v| v.to_string())
            .collect();
        assert!(
            real.is_empty(),
            "engine workload produced lock-order/blocking violations:\n{}",
            real.join("\n")
        );

        // The workload above must also have fed the per-site counters —
        // `\lock-stats` has something to show.
        let stats = tracking::stats();
        assert!(
            stats.iter().any(|s| s.site == "table.rows" && s.acquisitions > 0),
            "lock stats recorded no table.rows acquisitions: {stats:?}"
        );
    }
}

/// Tracking must be semantics-neutral: the same workload produces the
/// same rows whether the acquisition tracker is on or off. (Debug builds
/// only — in release the tracker does not exist to toggle.)
#[cfg(debug_assertions)]
mod tracking_neutrality {
    use crosse::relational::Database;
    use proptest::prelude::*;

    fn run_workload(values: &[i64], tracked: bool) -> Vec<String> {
        parking_lot::tracking::set_enabled(tracked);
        let db = Database::new();
        db.execute("CREATE TABLE t (n INT)").unwrap();
        for v in values {
            db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let mut out = Vec::new();
        for sql in [
            "SELECT n FROM t ORDER BY n",
            "SELECT COUNT(*) AS c, SUM(n) AS s FROM t",
            "SELECT DISTINCT n FROM t ORDER BY n DESC LIMIT 5",
        ] {
            for row in db.query(sql).unwrap().rows.iter() {
                out.push(format!("{row:?}"));
            }
        }
        out
    }

    proptest! {
        #[test]
        fn tracked_equals_untracked(values in proptest::collection::vec(-50i64..50, 0..20)) {
            let untracked = run_workload(&values, false);
            let tracked = run_workload(&values, true);
            parking_lot::tracking::set_enabled(true);
            prop_assert_eq!(tracked, untracked);
        }
    }
}
