//! Golden `EXPLAIN` snapshots for the paper's Ex. 4.1–4.6 enrichment
//! plans, pinning the optimized plan shapes — pass annotations, pushed
//! filters, and (for Ex. 4.6) the shared spool that de-duplicates the
//! include_self compound's base-table work.
//!
//! Snapshots live in `tests/snapshots/explain_ex4_*.snap`. To regenerate
//! after an intentional planner/optimizer change:
//!
//! ```text
//! CROSSE_UPDATE_SNAPSHOTS=1 cargo test --test explain_golden
//! cargo xtask explain-snapshots   # regenerates, then diffs via git
//! ```

use crosse::prelude::*;

fn iri(s: &str) -> Term {
    Term::iri(s)
}
fn lit(s: &str) -> Term {
    Term::lit(s)
}

/// The running example of `enrichment_golden.rs` (Fig. 3 + the
/// director's ontology) — the fixture must stay deterministic, since the
/// snapshots embed row counts.
fn engine() -> SesqlEngine {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE landfill (name TEXT, city TEXT);
         INSERT INTO landfill VALUES
           ('a', 'Torino'), ('b', 'Lyon'), ('c', 'Collegno');
         CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT, amount FLOAT);
         INSERT INTO elem_contained VALUES
           ('Hg', 'a', 12.5), ('Pb', 'a', 30.0), ('Cu', 'a', 100.0),
           ('As', 'b', 5.2), ('Hg', 'c', 3.5), ('Sn', 'c', 7.0);",
    )
    .unwrap();
    let kb = KnowledgeBase::new();
    kb.register_user("director");
    for (s, p, o) in [
        ("Hg", "dangerLevel", "5"),
        ("Pb", "dangerLevel", "4"),
        ("As", "dangerLevel", "5"),
        ("Cu", "dangerLevel", "1"),
    ] {
        kb.assert_statement("director", &Triple::new(iri(s), iri(p), lit(o))).unwrap();
    }
    for s in ["Hg", "Pb", "As"] {
        kb.assert_statement("director", &Triple::new(iri(s), iri("isA"), iri("HazardousWaste")))
            .unwrap();
    }
    for (s, o) in [("Torino", "Italy"), ("Collegno", "Italy"), ("Lyon", "France")] {
        kb.assert_statement("director", &Triple::new(iri(s), iri("inCountry"), iri(o)))
            .unwrap();
    }
    for (s, o) in [("Hg", "As"), ("Hg", "Sb"), ("Sn", "Cu")] {
        kb.assert_statement("director", &Triple::new(iri(s), iri("oreAssemblage"), iri(o)))
            .unwrap();
    }
    let engine = SesqlEngine::new(db, kb);
    engine
        .stored_queries()
        .register("dangerQuery", "SELECT ?e WHERE { ?e <dangerLevel> ?d . FILTER(?d >= 4) }")
        .unwrap();
    engine
}

fn check(name: &str, sesql: &str) {
    let engine = engine();
    let got = engine.explain("director", sesql).unwrap();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.snap"));
    if std::env::var_os("CROSSE_UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}) — regenerate with \
             CROSSE_UPDATE_SNAPSHOTS=1 cargo test --test explain_golden"
        , path.display())
    });
    assert_eq!(
        got, want,
        "EXPLAIN for {name} diverged from its committed snapshot; if the \
         plan change is intentional, regenerate with \
         CROSSE_UPDATE_SNAPSHOTS=1 cargo test --test explain_golden"
    );
}

#[test]
fn explain_ex4_1_schema_extension() {
    check(
        "explain_ex4_1",
        "SELECT elem_name, landfill_name FROM elem_contained \
         WHERE landfill_name = 'a' \
         ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
    );
}

#[test]
fn explain_ex4_2_schema_replacement() {
    check(
        "explain_ex4_2",
        "SELECT name, city FROM landfill ENRICH SCHEMAREPLACEMENT(city, inCountry)",
    );
}

#[test]
fn explain_ex4_3_bool_schema_extension() {
    check(
        "explain_ex4_3",
        "SELECT elem_name FROM elem_contained WHERE landfill_name = 'a' \
         ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)",
    );
}

#[test]
fn explain_ex4_4_bool_schema_replacement() {
    check(
        "explain_ex4_4",
        "SELECT name, city FROM landfill \
         ENRICH BOOLSCHEMAREPLACEMENT(city, inCountry, Italy)",
    );
}

#[test]
fn explain_ex4_5_replace_constant() {
    check(
        "explain_ex4_5",
        "SELECT landfill_name, elem_name FROM elem_contained \
         WHERE ${elem_name = HazardousWaste:cond1} \
         ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)",
    );
}

#[test]
fn explain_ex4_6_replace_variable_shares_q1_through_spool() {
    let name = "explain_ex4_6";
    let sesql = "SELECT e1.landfill_name AS l1, e2.landfill_name AS l2, e1.elem_name \
                 FROM elem_contained AS e1, elem_contained AS e2 \
                 WHERE e1.landfill_name <> e2.landfill_name AND \
                       ${ e1.elem_name = e2.elem_name :cond1} \
                 ENRICH REPLACEVARIABLE(cond1, e2.elem_name, oreAssemblage)";
    check(name, sesql);
    // Beyond the snapshot: the structural acceptance criterion — the
    // rewritten compound shares Q1's scan subtree through one spool.
    let text = engine().explain("director", sesql).unwrap();
    let rewritten = text.split("rewritten plan").nth(1).expect("compound section");
    assert!(rewritten.contains("Shared spool #0"), "{text}");
    assert!(rewritten.contains("Shared spool #0 (reused)"), "{text}");
    assert!(rewritten.contains("Union: 2 inputs"), "{text}");
}
