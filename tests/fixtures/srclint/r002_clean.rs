// Clean twin: unwraps only in the test module, doc comments, and strings.
/// Example: `xs.first().unwrap()`.
pub fn head(xs: &[u32]) -> Option<u32> {
    let _msg = "do not .unwrap() in library code";
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let xs = [1u32];
        assert_eq!(xs.first().copied().unwrap(), 1);
    }
}
