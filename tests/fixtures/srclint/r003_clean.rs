// Clean twin: the panic lives in a #[cfg(test)] module.
pub fn pick(i: usize) -> Option<u32> {
    (i <= 3).then_some(i as u32)
}

#[cfg(test)]
mod tests {
    #[test]
    fn panicking_assertion() {
        if super::pick(9).is_some() {
            panic!("should be out of range");
        }
    }
}
