// Deliberately defective: unwrap/expect in library code (R002 x2).
pub fn head(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    *xs.get(1).expect("needs two elements") + first
}
