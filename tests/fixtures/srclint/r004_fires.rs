// Deliberately defective: unlabeled lock construction in engine code
// (R004 x2 — warnings).
use parking_lot::{Mutex, RwLock};

pub fn make() -> (Mutex<u32>, RwLock<Vec<u8>>) {
    (Mutex::new(0), RwLock::new(Vec::new()))
}
