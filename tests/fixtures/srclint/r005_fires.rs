// Deliberately defective: a crate root with no #![forbid(unsafe_code)]
// (linted under a src/lib.rs path).
pub mod engine;

pub fn version() -> &'static str {
    "0.0.0"
}
