// Deliberately defective: panic! in library code (R003).
pub fn pick(i: usize) -> u32 {
    if i > 3 {
        panic!("index out of range");
    }
    i as u32
}
