// Clean twin: planner code that derives cost from the catalog, not the
// clock. (Instant::now in *executor* paths is fine and not linted.)
pub fn cost_seed(table_rows: u64) -> u64 {
    table_rows.saturating_mul(3)
}
