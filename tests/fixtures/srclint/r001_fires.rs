// Deliberately defective: raw std::sync locks in engine code (R001 x2).
use std::sync::{Arc, Mutex};

pub struct Registry {
    slots: Arc<Mutex<Vec<u32>>>,
    gate: std::sync::RwLock<()>,
}
