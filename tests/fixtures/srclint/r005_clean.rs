// Clean twin: the forbid attribute is present.
#![forbid(unsafe_code)]

pub mod engine;

pub fn version() -> &'static str {
    "0.0.0"
}
