// Clean twin: a well-formed, justified allow suppresses R002 file-wide.
// srclint: allow(R002): fixture demonstrating the directive grammar
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
