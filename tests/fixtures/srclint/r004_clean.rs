// Clean twin: labeled construction (and an unlabeled one in tests).
use parking_lot::{Mutex, RwLock};

pub fn make() -> (Mutex<u32>, RwLock<Vec<u8>>) {
    (
        Mutex::new_labeled("fixture.counter", 0),
        RwLock::new_labeled("fixture.buffer", Vec::new()),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_lock() {
        let m = super::Mutex::new(7);
        assert_eq!(*m.lock(), 7);
    }
}
