// Deliberately defective: wall-clock reads in planner code (R006 x2 —
// linted under a relational/src/opt/ path).
use std::time::{Instant, SystemTime};

pub fn cost_seed() -> u128 {
    let t = Instant::now();
    let _wall = SystemTime::now();
    t.elapsed().as_nanos()
}
