// Clean twin: the labeled shim, plus std::sync atomics (allowed).
use std::sync::{Arc, atomic::AtomicU64};
use parking_lot::Mutex;

pub struct Registry {
    slots: Arc<Mutex<Vec<u32>>>,
    version: AtomicU64,
}
