// Deliberately defective: three malformed allow directives (R000 x3),
// none of which suppress the R002 underneath.
// srclint: allow(R099): no such rule
// srclint: allow(R002):
// srclint: deny(R002): not a verb srclint knows
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
