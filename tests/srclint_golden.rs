//! Golden srclint snapshots: the self-lint gate behind `cargo xtask srclint`.
//!
//! Three layers pin the source linter's behaviour:
//!
//! * the fixture corpus (`tests/fixtures/srclint/`) — one deliberately
//!   defective and one clean twin per rule, snapshotted verbatim in
//!   `tests/snapshots/srclint.snap`: a rule that silently stops firing,
//!   or starts firing on its clean twin, fails the gate;
//! * the workspace itself must lint clean — srclint runs on every `.rs`
//!   file in the tree and any finding is a failure;
//! * totality — the lexer must survive every workspace file *and* a pile
//!   of pathological inputs without panicking.
//!
//! To regenerate after an intentional rule change:
//!
//! ```text
//! CROSSE_UPDATE_SNAPSHOTS=1 cargo test --test srclint_golden
//! cargo xtask srclint   # regenerates, then diffs via git
//! ```

use std::fmt::Write as _;
use std::path::Path;

use crosse_lint::srclint;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn check(name: &str, got: &str) {
    let path = repo_root().join("tests/snapshots").join(format!("{name}.snap"));
    if std::env::var_os("CROSSE_UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}) — regenerate with \
             CROSSE_UPDATE_SNAPSHOTS=1 cargo test --test srclint_golden",
            path.display()
        )
    });
    assert_eq!(
        got, &want,
        "srclint output for {name} diverged from its committed snapshot; if \
         the rule change is intentional, regenerate with \
         CROSSE_UPDATE_SNAPSHOTS=1 cargo test --test srclint_golden"
    );
}

fn render(diags: &[crosse_lint::Diagnostic]) -> String {
    if diags.is_empty() {
        "(clean)\n".to_string()
    } else {
        diags.iter().fold(String::new(), |mut s, d| {
            let _ = writeln!(s, "{d}");
            s
        })
    }
}

/// `(fixture file, workspace-relative path the fixture pretends to live
/// at)` — classification is path-driven, so each fixture is linted under
/// the path its rule targets.
const FIXTURES: &[(&str, &str)] = &[
    ("r001_fires.rs", "crates/core/src/fixture.rs"),
    ("r001_clean.rs", "crates/core/src/fixture.rs"),
    ("r002_fires.rs", "crates/core/src/fixture.rs"),
    ("r002_clean.rs", "crates/core/src/fixture.rs"),
    ("r003_fires.rs", "crates/core/src/fixture.rs"),
    ("r003_clean.rs", "crates/core/src/fixture.rs"),
    ("r004_fires.rs", "crates/core/src/fixture.rs"),
    ("r004_clean.rs", "crates/core/src/fixture.rs"),
    ("r005_fires.rs", "crates/core/src/lib.rs"),
    ("r005_clean.rs", "crates/core/src/lib.rs"),
    ("r006_fires.rs", "crates/relational/src/opt/fixture.rs"),
    ("r006_clean.rs", "crates/relational/src/opt/fixture.rs"),
    ("r000_bad_directives.rs", "crates/core/src/fixture.rs"),
    ("r000_clean_directive.rs", "crates/core/src/fixture.rs"),
];

/// One firing and one non-firing fixture per rule, pinned verbatim.
#[test]
fn rule_fixtures() {
    let dir = repo_root().join("tests/fixtures/srclint");
    let mut out = String::new();
    for (file, as_path) in FIXTURES {
        let source = std::fs::read_to_string(dir.join(file))
            .unwrap_or_else(|e| panic!("fixture {file} unreadable: {e}"));
        let diags = srclint::lint_source(as_path, &source);
        let _ = writeln!(out, "== {file} (as {as_path}) ==");
        out.push_str(&render(&diags));
        if file.ends_with("_fires.rs") || *file == "r000_bad_directives.rs" {
            assert!(
                !diags.is_empty(),
                "firing fixture {file} produced no diagnostics — its rule went dark"
            );
        } else {
            assert!(
                diags.is_empty(),
                "clean fixture {file} fired: {diags:?} — false-positive regression"
            );
        }
    }
    check("srclint", &out);
}

/// Every fixture file on disk is exercised — a fixture added without a
/// FIXTURES entry is dead weight the snapshot silently ignores.
#[test]
fn fixture_corpus_is_fully_enumerated() {
    let dir = repo_root().join("tests/fixtures/srclint");
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = FIXTURES.iter().map(|(f, _)| f.to_string()).collect();
    listed.sort();
    assert_eq!(on_disk, listed, "fixture dir and FIXTURES table disagree");
}

/// The workspace's own sources must be srclint-clean: every raw
/// `std::sync` lock migrated, every surviving unwrap justified by a
/// directive, every engine lock labeled, every crate root fortified.
#[test]
fn workspace_lints_clean() {
    let findings = srclint::lint_workspace(repo_root()).unwrap();
    assert!(
        findings.is_empty(),
        "srclint findings on the workspace:\n{}",
        srclint::render_findings(&findings)
    );
}

/// Totality: the lexer survives every real workspace file under every
/// path class, plus pathological inputs (unterminated everything).
#[test]
fn linter_is_total_on_workspace_and_garbage() {
    let mut walked = 0usize;
    let mut stack = vec![repo_root().to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let src = std::fs::read_to_string(&path).unwrap();
                // Lint under every class so each rule's code path runs.
                for as_path in [
                    "crates/core/src/x.rs",
                    "crates/core/src/lib.rs",
                    "crates/relational/src/opt/x.rs",
                    "crates/compat/parking_lot/src/lib.rs",
                    "crates/xtask/src/gates.rs",
                    "tests/x.rs",
                ] {
                    let _ = srclint::lint_source(as_path, &src);
                }
                walked += 1;
            }
        }
    }
    assert!(walked > 50, "workspace walk looks broken: only {walked} .rs files");

    for garbage in [
        "\"", "r#\"", "/*", "'", "b\"", "br##\"x", "#![", "0b", "1e", "\\",
        "// srclint:", "// srclint: allow(", "// srclint: allow(R001",
        "ident\u{0}with\u{0}nuls", "🦀🦀🦀",
    ] {
        let _ = srclint::lint_source("crates/core/src/x.rs", garbage);
        let _ = srclint::lint_source("crates/core/src/lib.rs", garbage);
    }
}
