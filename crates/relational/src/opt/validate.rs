//! Plan-invariant validation: structural checks run between optimizer
//! passes (and on the final plan) so a buggy rewrite fails loudly at plan
//! time instead of surfacing as wrong rows or a panic deep in `exec/`.
//!
//! Two kinds of check:
//!
//! * [`check_plan`] — invariants any bound plan must satisfy on its own:
//!   every column index inside every bound expression is within its
//!   input's arity, operator schemas are consistent with their children,
//!   and `Plan::Shared` spools are well-formed (one subtree per id, one
//!   id per subtree).
//! * [`check_pass`] — invariants relating a plan *before* and *after* one
//!   rewrite pass: the output arity and column types are preserved
//!   end-to-end, the conservative row bound never increases (a pass must
//!   not weaken a `LIMIT`), and no filter was moved beneath the padded
//!   side of a LEFT join.
//!
//! Violations carry the offending pass name and an `EXPLAIN` rendering of
//! the bad (sub)tree. Validation runs when
//! [`OptimizerConfig::validate`](super::OptimizerConfig) is set — on by
//! default under `debug_assertions` (so the whole test suite exercises
//! it) and off in release builds, keeping it out of hot paths.

use std::collections::HashMap;
use std::sync::Arc;

use crate::plan::Plan;
use crate::sql::ast::{Expr, JoinKind, Select, SelectItem, TableRef};
use crate::value::DataType;

use super::rules::visit_cols;

/// A violated plan invariant: which pass produced the bad plan, what is
/// wrong, and the `EXPLAIN` rendering of the offending subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanInvariantError {
    /// The pass after which the violation was detected (`"plan_select"`
    /// for a plan that was invalid as built).
    pub pass: String,
    pub message: String,
    /// `EXPLAIN` rendering of the subtree that broke the invariant.
    pub subtree: String,
}

impl PlanInvariantError {
    fn new(pass: &str, message: String, subtree: &Plan) -> Self {
        PlanInvariantError {
            pass: pass.to_string(),
            message,
            subtree: subtree.explain(),
        }
    }
}

impl std::fmt::Display for PlanInvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "plan invariant violated after pass `{}`: {}\noffending subtree:\n{}",
            self.pass, self.message, self.subtree
        )
    }
}

impl std::error::Error for PlanInvariantError {}

type CheckResult = Result<(), PlanInvariantError>;

/// Largest column index referenced by `e`, if any.
fn max_col(e: &crate::exec::expr::BoundExpr) -> Option<usize> {
    let mut max = None;
    visit_cols(e, &mut |i| max = Some(max.map_or(i, |m: usize| m.max(i))));
    max
}

fn check_arity(
    pass: &str,
    plan: &Plan,
    what: &str,
    e: &crate::exec::expr::BoundExpr,
    arity: usize,
) -> CheckResult {
    if let Some(i) = max_col(e) {
        if i >= arity {
            return Err(PlanInvariantError::new(
                pass,
                format!("{what} references column #{i}, input arity is {arity}"),
                plan,
            ));
        }
    }
    Ok(())
}

/// Structural invariants of one plan tree. `pass` only labels the error.
pub fn check_plan(plan: &Plan, pass: &str) -> CheckResult {
    // id -> spool subtree; each spool id must name exactly one subtree,
    // and one subtree must not hide behind two ids (the executor replays
    // spools by id, so either mix-up silently swaps result sets).
    let mut spools: HashMap<usize, *const Plan> = HashMap::new();
    let mut by_ptr: HashMap<*const Plan, usize> = HashMap::new();
    check_node(plan, pass, &mut spools, &mut by_ptr)
}

fn check_node(
    plan: &Plan,
    pass: &str,
    spools: &mut HashMap<usize, *const Plan>,
    by_ptr: &mut HashMap<*const Plan, usize>,
) -> CheckResult {
    match plan {
        Plan::Values { schema, rows } => {
            for row in rows {
                if row.len() != schema.len() {
                    return Err(PlanInvariantError::new(
                        pass,
                        format!(
                            "VALUES row has {} values, schema arity is {}",
                            row.len(),
                            schema.len()
                        ),
                        plan,
                    ));
                }
            }
        }
        Plan::Scan { .. } => {}
        Plan::IndexScan { schema, column, .. } => {
            if *column >= schema.len() {
                return Err(PlanInvariantError::new(
                    pass,
                    format!(
                        "index scan keys column #{column}, schema arity is {}",
                        schema.len()
                    ),
                    plan,
                ));
            }
        }
        Plan::Filter { input, predicate } => {
            check_arity(pass, plan, "filter predicate", predicate, input.schema().len())?;
        }
        Plan::Project { input, exprs, schema } => {
            if exprs.len() != schema.len() {
                return Err(PlanInvariantError::new(
                    pass,
                    format!(
                        "projection has {} expressions but {} output columns",
                        exprs.len(),
                        schema.len()
                    ),
                    plan,
                ));
            }
            let arity = input.schema().len();
            for e in exprs {
                check_arity(pass, plan, "projection expression", e, arity)?;
            }
        }
        Plan::NestedLoopJoin { left, right, predicate, schema, .. } => {
            let combined = left.schema().len() + right.schema().len();
            if schema.len() != combined {
                return Err(PlanInvariantError::new(
                    pass,
                    format!(
                        "join schema arity {} != left {} + right {}",
                        schema.len(),
                        left.schema().len(),
                        right.schema().len()
                    ),
                    plan,
                ));
            }
            if let Some(p) = predicate {
                check_arity(pass, plan, "join predicate", p, combined)?;
            }
        }
        Plan::HashJoin { left, right, left_keys, right_keys, residual, schema, .. } => {
            if left_keys.len() != right_keys.len() {
                return Err(PlanInvariantError::new(
                    pass,
                    format!(
                        "hash join has {} left keys but {} right keys",
                        left_keys.len(),
                        right_keys.len()
                    ),
                    plan,
                ));
            }
            let (la, ra) = (left.schema().len(), right.schema().len());
            if schema.len() != la + ra {
                return Err(PlanInvariantError::new(
                    pass,
                    format!("join schema arity {} != left {la} + right {ra}", schema.len()),
                    plan,
                ));
            }
            for k in left_keys {
                check_arity(pass, plan, "hash join left key", k, la)?;
            }
            for k in right_keys {
                check_arity(pass, plan, "hash join right key", k, ra)?;
            }
            if let Some(r) = residual {
                check_arity(pass, plan, "hash join residual", r, la + ra)?;
            }
        }
        Plan::Aggregate { input, group, aggs, schema } => {
            if schema.len() != group.len() + aggs.len() {
                return Err(PlanInvariantError::new(
                    pass,
                    format!(
                        "aggregate schema arity {} != {} group keys + {} aggregates",
                        schema.len(),
                        group.len(),
                        aggs.len()
                    ),
                    plan,
                ));
            }
            let arity = input.schema().len();
            for g in group {
                check_arity(pass, plan, "group key", g, arity)?;
            }
            for a in aggs {
                if let Some(arg) = &a.arg {
                    check_arity(pass, plan, "aggregate argument", arg, arity)?;
                }
            }
        }
        Plan::Sort { input, keys } => {
            let arity = input.schema().len();
            for k in keys {
                check_arity(pass, plan, "sort key", &k.expr, arity)?;
            }
        }
        Plan::Distinct { .. } | Plan::Limit { .. } => {}
        Plan::Union { inputs, schema, .. } => {
            for member in inputs {
                if member.schema().len() != schema.len() {
                    return Err(PlanInvariantError::new(
                        pass,
                        format!(
                            "UNION member arity {} != compound arity {}",
                            member.schema().len(),
                            schema.len()
                        ),
                        plan,
                    ));
                }
            }
        }
        Plan::Shared { id, input } => {
            let ptr = Arc::as_ptr(input);
            if let Some(known) = spools.get(id) {
                if *known != ptr {
                    return Err(PlanInvariantError::new(
                        pass,
                        format!("spool #{id} is defined by two different subtrees"),
                        plan,
                    ));
                }
                // Already validated under its first (defining) reference.
                return Ok(());
            }
            if let Some(other) = by_ptr.get(&ptr) {
                return Err(PlanInvariantError::new(
                    pass,
                    format!("one subtree is spooled under two ids (#{other} and #{id})"),
                    plan,
                ));
            }
            spools.insert(*id, ptr);
            by_ptr.insert(ptr, *id);
        }
    }
    for child in children(plan) {
        check_node(child, pass, spools, by_ptr)?;
    }
    Ok(())
}

fn children(plan: &Plan) -> Vec<&Plan> {
    match plan {
        Plan::Values { .. } | Plan::Scan { .. } | Plan::IndexScan { .. } => vec![],
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Distinct { input }
        | Plan::Limit { input, .. } => vec![&**input],
        Plan::NestedLoopJoin { left, right, .. }
        | Plan::HashJoin { left, right, .. } => vec![&**left, &**right],
        Plan::Union { inputs, .. } => inputs.iter().collect(),
        Plan::Shared { input, .. } => vec![input.as_ref()],
    }
}

/// Output column types of `plan`, the signature a rewrite pass must
/// preserve end-to-end.
fn output_types(plan: &Plan) -> Vec<DataType> {
    plan.schema().columns.iter().map(|c| c.data_type).collect()
}

/// Conservative upper bound on the number of rows `plan` can produce
/// (`None` = unbounded). Used to prove a pass never weakened a LIMIT.
fn row_bound(plan: &Plan) -> Option<u64> {
    match plan {
        Plan::Values { rows, .. } => Some(rows.len() as u64),
        Plan::Scan { .. } | Plan::IndexScan { .. } => None,
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Distinct { input } => row_bound(input),
        // An ungrouped aggregate emits exactly one row; a grouped one at
        // most one row per input row.
        Plan::Aggregate { input, group, .. } => {
            if group.is_empty() {
                Some(1)
            } else {
                row_bound(input)
            }
        }
        Plan::Limit { input, limit, offset } => {
            let inner = row_bound(input).map(|b| b.saturating_sub(*offset));
            match (limit, inner) {
                (Some(l), Some(b)) => Some((*l).min(b)),
                (Some(l), None) => Some(*l),
                (None, b) => b,
            }
        }
        Plan::Union { inputs, .. } => {
            inputs.iter().try_fold(0u64, |acc, m| row_bound(m).map(|b| acc.saturating_add(b)))
        }
        Plan::NestedLoopJoin { .. } | Plan::HashJoin { .. } => None,
        Plan::Shared { input, .. } => row_bound(input),
    }
}

/// Number of `Filter` nodes sitting beneath the padded (right) side of a
/// LEFT join. A rewrite pass must never grow this: filtering the padded
/// side before the join changes which rows get NULL-extended.
fn padded_side_filters(plan: &Plan) -> usize {
    fn filters_in(plan: &Plan) -> usize {
        let own = usize::from(matches!(plan, Plan::Filter { .. }));
        own + children(plan).into_iter().map(filters_in).sum::<usize>()
    }
    let below = match plan {
        Plan::NestedLoopJoin { right, kind: JoinKind::Left, .. }
        | Plan::HashJoin { right, kind: JoinKind::Left, .. } => filters_in(right),
        _ => 0,
    };
    below + children(plan).into_iter().map(padded_side_filters).sum::<usize>()
}

/// Invariants relating the plans before and after one rewrite pass, plus
/// the structural checks on the rewritten plan.
pub fn check_pass(before: &Plan, after: &Plan, pass: &str) -> CheckResult {
    check_plan(after, pass)?;
    let (bt, at) = (output_types(before), output_types(after));
    if bt != at {
        return Err(PlanInvariantError::new(
            pass,
            format!("pass changed the output signature: {bt:?} -> {at:?}"),
            after,
        ));
    }
    let (bb, ab) = (row_bound(before), row_bound(after));
    let weakened = match (bb, ab) {
        (Some(_), None) => true,
        (Some(b), Some(a)) => a > b,
        (None, _) => false,
    };
    if weakened {
        return Err(PlanInvariantError::new(
            pass,
            format!("pass increased the row bound: {bb:?} -> {ab:?}"),
            after,
        ));
    }
    let (bf, af) = (padded_side_filters(before), padded_side_filters(after));
    if af > bf {
        return Err(PlanInvariantError::new(
            pass,
            format!(
                "pass pushed a filter beneath the padded side of a LEFT join \
                 ({bf} -> {af} padded-side filters)"
            ),
            after,
        ));
    }
    Ok(())
}

/// Prepare-time invariant: every `Expr::Param` in `select` (any clause,
/// union member or subquery) has an index inside the slot table the
/// statement was prepared with. Cheap enough to run unconditionally.
pub fn check_param_slots(select: &Select, slot_count: usize) -> Result<(), String> {
    fn walk_expr(e: &Expr, n: usize, bad: &mut Option<usize>) {
        e.visit(&mut |node| {
            if let Expr::Param { index, .. } = node {
                if *index >= n && bad.is_none() {
                    *bad = Some(*index);
                }
            }
        });
        match e {
            Expr::InSubquery { query, .. }
            | Expr::Exists { query, .. }
            | Expr::ScalarSubquery(query) => walk_select(query, n, bad),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => walk_expr(expr, n, bad),
            Expr::Binary { left, right, .. } => {
                walk_expr(left, n, bad);
                walk_expr(right, n, bad);
            }
            Expr::InList { expr, list, .. } => {
                walk_expr(expr, n, bad);
                list.iter().for_each(|e| walk_expr(e, n, bad));
            }
            Expr::Between { expr, low, high, .. } => {
                walk_expr(expr, n, bad);
                walk_expr(low, n, bad);
                walk_expr(high, n, bad);
            }
            Expr::Like { expr, pattern, .. } => {
                walk_expr(expr, n, bad);
                walk_expr(pattern, n, bad);
            }
            Expr::Function { args, .. } => args.iter().for_each(|e| walk_expr(e, n, bad)),
            Expr::Case { operand, branches, else_expr } => {
                operand.iter().for_each(|e| walk_expr(e, n, bad));
                for (w, t) in branches {
                    walk_expr(w, n, bad);
                    walk_expr(t, n, bad);
                }
                else_expr.iter().for_each(|e| walk_expr(e, n, bad));
            }
            _ => {}
        }
    }
    fn walk_table_ref(tr: &TableRef, n: usize, bad: &mut Option<usize>) {
        if let TableRef::Join { left, right, on, .. } = tr {
            walk_table_ref(left, n, bad);
            walk_table_ref(right, n, bad);
            on.iter().for_each(|e| walk_expr(e, n, bad));
        }
    }
    fn walk_select(select: &Select, n: usize, bad: &mut Option<usize>) {
        for p in &select.projections {
            if let SelectItem::Expr { expr, .. } = p {
                walk_expr(expr, n, bad);
            }
        }
        select.from.iter().for_each(|tr| walk_table_ref(tr, n, bad));
        select.filter.iter().for_each(|e| walk_expr(e, n, bad));
        select.group_by.iter().for_each(|e| walk_expr(e, n, bad));
        select.having.iter().for_each(|e| walk_expr(e, n, bad));
        select.order_by.iter().for_each(|o| walk_expr(&o.expr, n, bad));
        for (_, member) in &select.union {
            walk_select(member, n, bad);
        }
    }
    let mut bad = None;
    walk_select(select, slot_count, &mut bad);
    match bad {
        Some(index) => Err(format!(
            "parameter slot #{index} referenced, slot table has {slot_count} entr{}",
            if slot_count == 1 { "y" } else { "ies" }
        )),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::exec::expr::BoundExpr;
    use crate::schema::{Column, Schema};
    use crate::value::Value;

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE t (a INT, b TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'y');",
        )
        .unwrap();
        db
    }

    fn plan_of(db: &Database, sql: &str) -> Plan {
        db.plan_optimized(&match crate::sql::parser::parse_statement(sql).unwrap() {
            crate::sql::ast::Statement::Select(s) => *s,
            other => panic!("not a select: {other:?}"),
        })
        .unwrap()
        .plan
    }

    #[test]
    fn real_plans_validate_clean() {
        let db = db();
        for sql in [
            "SELECT a FROM t WHERE b = 'x' ORDER BY a LIMIT 1",
            "SELECT b, COUNT(*) FROM t GROUP BY b",
            "SELECT a FROM t UNION SELECT a FROM t",
            "SELECT x.a FROM t AS x LEFT JOIN t AS y ON x.a = y.a WHERE x.b = 'x'",
        ] {
            let plan = plan_of(&db, sql);
            check_plan(&plan, "test").unwrap();
        }
    }

    #[test]
    fn out_of_range_column_is_caught() {
        let db = db();
        let plan = plan_of(&db, "SELECT a FROM t");
        // Graft a filter whose predicate points past the scan's arity.
        let broken = Plan::Filter {
            input: Box::new(plan),
            predicate: BoundExpr::Column(99),
        };
        let err = check_plan(&broken, "graft").unwrap_err();
        assert_eq!(err.pass, "graft");
        assert!(err.message.contains("column #99"), "{err}");
        assert!(err.subtree.contains("Filter"), "{err}");
    }

    #[test]
    fn mismatched_projection_arity_is_caught() {
        let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
        let broken = Plan::Project {
            input: Box::new(Plan::Values {
                schema: schema.clone(),
                rows: vec![vec![Value::Int(1)]],
            }),
            exprs: vec![BoundExpr::Column(0), BoundExpr::Column(0)],
            schema,
        };
        let err = check_plan(&broken, "p").unwrap_err();
        assert!(err.message.contains("2 expressions but 1 output"), "{err}");
    }

    #[test]
    fn duplicate_spool_definitions_are_caught() {
        let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
        let a = Arc::new(Plan::Values {
            schema: schema.clone(),
            rows: vec![vec![Value::Int(1)]],
        });
        let b = Arc::new(Plan::Values {
            schema: schema.clone(),
            rows: vec![vec![Value::Int(2)]],
        });
        let broken = Plan::Union {
            inputs: vec![
                Plan::Shared { id: 0, input: a },
                Plan::Shared { id: 0, input: b },
            ],
            all: true,
            schema,
        };
        let err = check_plan(&broken, "cse").unwrap_err();
        assert!(err.message.contains("two different subtrees"), "{err}");
    }

    #[test]
    fn pass_diff_catches_weakened_limit_and_signature_change() {
        let db = db();
        let plan = plan_of(&db, "SELECT a FROM t LIMIT 3");
        let widened = widen_first_limit(plan.clone());
        let err = check_pass(&plan, &widened, "limit_pushdown").unwrap_err();
        assert!(err.message.contains("row bound"), "{err}");

        let retyped = plan_of(&db, "SELECT b FROM t LIMIT 3");
        let err = check_pass(&plan, &retyped, "x").unwrap_err();
        assert!(err.message.contains("output signature"), "{err}");
    }

    fn widen_first_limit(plan: Plan) -> Plan {
        match plan {
            Plan::Limit { input, limit, offset } => Plan::Limit {
                input,
                limit: limit.map(|l| l + 1),
                offset,
            },
            other => super::super::map_children(other, &mut widen_first_limit),
        }
    }

    #[test]
    fn pass_diff_catches_filter_pushed_under_padded_side() {
        let db = db();
        let before =
            plan_of(&db, "SELECT x.a FROM t AS x LEFT JOIN t AS y ON x.a = y.a WHERE y.b = 'x'");
        // Simulate the illegal rewrite: wrap the LEFT join's right side in
        // an extra filter.
        fn sink(plan: Plan) -> Plan {
            match plan {
                Plan::NestedLoopJoin { left, right, kind: JoinKind::Left, predicate, schema } => {
                    let arity = right.schema().len();
                    let filtered = Plan::Filter {
                        input: right,
                        predicate: BoundExpr::Column(arity - 1),
                    };
                    Plan::NestedLoopJoin {
                        left,
                        right: Box::new(filtered),
                        kind: JoinKind::Left,
                        predicate,
                        schema,
                    }
                }
                Plan::HashJoin {
                    left,
                    right,
                    kind: JoinKind::Left,
                    left_keys,
                    right_keys,
                    residual,
                    schema,
                } => {
                    let filtered = Plan::Filter {
                        input: right,
                        predicate: BoundExpr::Literal(Value::Bool(true)),
                    };
                    Plan::HashJoin {
                        left,
                        right: Box::new(filtered),
                        kind: JoinKind::Left,
                        left_keys,
                        right_keys,
                        residual,
                        schema,
                    }
                }
                other => super::super::map_children(other, &mut sink),
            }
        }
        let after = sink(before.clone());
        assert_ne!(padded_side_filters(&before), padded_side_filters(&after));
        let err = check_pass(&before, &after, "filter_pushdown").unwrap_err();
        assert!(err.message.contains("padded side"), "{err}");
    }

    #[test]
    fn param_slot_check() {
        let (stmt, slots) = crate::sql::parser::parse_statement_with_params(
            "SELECT a FROM t WHERE a = $x AND b = ?",
        )
        .unwrap();
        let select = match stmt {
            crate::sql::ast::Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        check_param_slots(&select, slots.len()).unwrap();
        let err = check_param_slots(&select, 1).unwrap_err();
        assert!(err.contains("slot #1"), "{err}");
    }
}
