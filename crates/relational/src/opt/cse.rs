//! Common-subplan elimination: structurally equal subtrees become one
//! shared, spooled subtree.
//!
//! Every subtree gets a *fingerprint* — a canonical string that two
//! subtrees share iff they produce the same rows: base tables compare by
//! heap identity (`Arc` pointer), bound expressions by their (index-
//! resolved, deterministic) debug rendering, and schemas are deliberately
//! excluded where they only carry output *names* (two scans of one table
//! under different aliases yield identical rows). A fingerprint seen more
//! than once is rewritten to a [`Plan::Shared`] spool: the subtree is
//! evaluated once per execution against one pinned snapshot, and its rows
//! replay to every consumer (see `exec/stream.rs`).
//!
//! The paper's `include_self` enrichment (`Q1 UNION Q2`) is the motivating
//! shape: both members scan (and often join) the same base tables, and
//! before this pass the compound simply ran the duplicated work twice.

use std::collections::HashMap;
use std::fmt::Write;
use std::sync::Arc;

use crate::plan::Plan;

/// Rewrite subtrees that occur more than once into shared spools.
pub fn share_common_subplans(plan: Plan, notes: &mut Vec<String>) -> Plan {
    let mut counter = Counter::default();
    counter.count(&plan);
    let shared_keys: std::collections::HashSet<String> = counter
        .counts
        .iter()
        .filter(|(_, &n)| n >= 2)
        .map(|(k, _)| k.clone())
        .collect();
    if shared_keys.is_empty() {
        return plan;
    }
    let mut rw = Rewriter {
        shared_keys,
        spools: HashMap::new(),
        next_id: 0,
        refs: 0,
        uniq: 0,
    };
    let out = rw.rewrite(plan);
    // Top-down dedup can swallow an inner duplicate entirely (two equal
    // `Limit(Scan)` members collapse into one spool, leaving their inner
    // `Scan` spool with a single reader); a spool nobody shares is pure
    // overhead, so inline those back.
    let (out, spools, refs) = prune_single_reader_spools(out);
    if spools > 0 {
        notes.push(format!(
            "cse: {spools} shared subtree(s) spooled ({refs} reference(s))"
        ));
    }
    out
}

/// Count how many `Shared` references each spool id has in the final plan
/// (each spool's input subtree is visited once, matching execution), then
/// rebuild the plan with single-reference spools inlined. Returns the
/// rebuilt plan plus the surviving spool and reference counts.
fn prune_single_reader_spools(plan: Plan) -> (Plan, usize, usize) {
    fn count(plan: &Plan, refs: &mut HashMap<usize, usize>) {
        if let Plan::Shared { id, input } = plan {
            let n = refs.entry(*id).or_insert(0);
            *n += 1;
            if *n == 1 {
                count(input, refs);
            }
            return;
        }
        visit_children(plan, &mut |c| count(c, refs));
    }
    let mut refs = HashMap::new();
    count(&plan, &mut refs);
    if refs.is_empty() {
        return (plan, 0, 0);
    }

    struct Pruner<'r> {
        refs: &'r HashMap<usize, usize>,
        rebuilt: HashMap<usize, Arc<Plan>>,
    }
    impl Pruner<'_> {
        fn rebuild(&mut self, plan: Plan) -> Plan {
            if let Plan::Shared { id, input } = plan {
                if self.refs.get(&id).copied().unwrap_or(0) <= 1 {
                    return self.rebuild((*input).clone());
                }
                let input = match self.rebuilt.get(&id) {
                    Some(a) => Arc::clone(a),
                    None => {
                        let a = Arc::new(self.rebuild((*input).clone()));
                        self.rebuilt.insert(id, Arc::clone(&a));
                        a
                    }
                };
                return Plan::Shared { id, input };
            }
            map_children_owned(plan, &mut |c| self.rebuild(c))
        }
    }
    let mut pruner = Pruner { refs: &refs, rebuilt: HashMap::new() };
    let out = pruner.rebuild(plan);
    let spools = refs.values().filter(|&&n| n >= 2).count();
    let shared_refs: usize = refs.values().filter(|&&n| n >= 2).sum();
    (out, spools, shared_refs)
}

/// First walk: count subtree fingerprints.
#[derive(Default)]
struct Counter {
    counts: HashMap<String, usize>,
    /// Distinguishes unshareable nodes (each gets a unique fingerprint,
    /// which also keeps their ancestors from ever matching each other).
    uniq: usize,
}

impl Counter {
    fn count(&mut self, plan: &Plan) -> String {
        let key = match plan {
            Plan::Values { .. } | Plan::Shared { .. } => {
                // Values are trivial to recompute (sharing would only add
                // spool overhead); an existing Shared node is already the
                // product of this pass.
                self.uniq += 1;
                return format!("uniq({})", self.uniq);
            }
            other => {
                let mut children = Vec::new();
                visit_children(other, &mut |c| children.push(self.count(c)));
                fingerprint(other, &children)
            }
        };
        *self.counts.entry(key.clone()).or_insert(0) += 1;
        key
    }
}

/// Second walk: replace shared subtrees top-down. The first occurrence of
/// a fingerprint builds the spooled subtree (its *inner* duplicates are
/// rewritten too, so a scan shared both inside and outside a spooled
/// subtree still resolves to one spool); later occurrences reuse the same
/// `Arc`.
struct Rewriter {
    shared_keys: std::collections::HashSet<String>,
    spools: HashMap<String, (usize, Arc<Plan>)>,
    next_id: usize,
    refs: usize,
    uniq: usize,
}

impl Rewriter {
    fn rewrite(&mut self, plan: Plan) -> Plan {
        let key = self.key_of(&plan);
        if self.shared_keys.contains(&key) {
            self.refs += 1;
            if let Some((id, input)) = self.spools.get(&key) {
                return Plan::Shared { id: *id, input: Arc::clone(input) };
            }
            let id = self.next_id;
            self.next_id += 1;
            let inner = map_children_owned(plan, &mut |c| self.rewrite(c));
            let input = Arc::new(inner);
            self.spools.insert(key, (id, Arc::clone(&input)));
            return Plan::Shared { id, input };
        }
        map_children_owned(plan, &mut |c| self.rewrite(c))
    }

    /// Fingerprint used during rewriting; must agree with the counting
    /// walk (same traversal, same rendering).
    fn key_of(&mut self, plan: &Plan) -> String {
        match plan {
            Plan::Values { .. } | Plan::Shared { .. } => {
                self.uniq += 1;
                format!("rw-uniq({})", self.uniq)
            }
            other => {
                let mut children = Vec::new();
                visit_children(other, &mut |c| {
                    let k = self.key_of(c);
                    children.push(k);
                });
                fingerprint(other, &children)
            }
        }
    }
}

fn map_children_owned(plan: Plan, f: &mut impl FnMut(Plan) -> Plan) -> Plan {
    super::map_children(plan, f)
}

fn visit_children<'p>(plan: &'p Plan, f: &mut impl FnMut(&'p Plan)) {
    match plan {
        Plan::Values { .. } | Plan::Scan { .. } | Plan::IndexScan { .. } => {}
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Distinct { input }
        | Plan::Limit { input, .. } => f(input),
        Plan::NestedLoopJoin { left, right, .. } | Plan::HashJoin { left, right, .. } => {
            f(left);
            f(right);
        }
        Plan::Union { inputs, .. } => {
            for i in inputs {
                f(i);
            }
        }
        Plan::Shared { input, .. } => f(input),
    }
}

/// Canonical rendering of one node given its children's fingerprints.
/// Bound expressions render via `Debug` — they are index-resolved, so the
/// rendering is deterministic and alias-free; base tables render by heap
/// identity so two catalogs' same-named tables never unify.
fn fingerprint(plan: &Plan, children: &[String]) -> String {
    let mut s = String::new();
    match plan {
        Plan::Scan { table, .. } => {
            let _ = write!(s, "scan({:p})", Arc::as_ptr(table));
        }
        Plan::IndexScan { table, column, lookup, .. } => {
            let _ = write!(s, "idxscan({:p},{column},{lookup:?})", Arc::as_ptr(table));
        }
        Plan::Filter { predicate, .. } => {
            let _ = write!(s, "filter({},{predicate:?})", children[0]);
        }
        Plan::Project { exprs, .. } => {
            let _ = write!(s, "project({},{exprs:?})", children[0]);
        }
        Plan::NestedLoopJoin { kind, predicate, .. } => {
            let _ = write!(
                s,
                "nlj({},{},{kind:?},{predicate:?})",
                children[0], children[1]
            );
        }
        Plan::HashJoin { kind, left_keys, right_keys, residual, .. } => {
            let _ = write!(
                s,
                "hj({},{},{kind:?},{left_keys:?},{right_keys:?},{residual:?})",
                children[0], children[1]
            );
        }
        Plan::Aggregate { group, aggs, .. } => {
            let _ = write!(s, "agg({},{group:?},{aggs:?})", children[0]);
        }
        Plan::Sort { keys, .. } => {
            let _ = write!(s, "sort({},{keys:?})", children[0]);
        }
        Plan::Distinct { .. } => {
            let _ = write!(s, "distinct({})", children[0]);
        }
        Plan::Limit { limit, offset, .. } => {
            let _ = write!(s, "limit({},{limit:?},{offset})", children[0]);
        }
        Plan::Union { all, .. } => {
            let _ = write!(s, "union({},{all})", children.join(","));
        }
        Plan::Values { .. } | Plan::Shared { .. } => {
            unreachable!("handled by the callers' uniq arm")
        }
    }
    s
}
