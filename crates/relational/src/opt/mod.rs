//! The plan-rewrite optimizer: an explicit pass pipeline over [`Plan`].
//!
//! Planning is split into **build → optimize → execute**: the planner
//! ([`crate::plan::plan_select`]) lowers the AST into a correct bound plan,
//! and this module rewrites that plan through a sequence of independent
//! passes before execution:
//!
//! 1. **filter pushdown** ([`rules::pushdown_filters`]) — moves `Filter`
//!    nodes below projections (substituting column references), below
//!    sorts, into `UNION` members and into the children of inner joins.
//! 2. **projection pruning** ([`rules::prune_projections`]) — composes
//!    adjacent `Project` nodes and narrows `Aggregate` inputs to the
//!    columns the group/aggregate expressions actually reference.
//! 3. **limit pushdown** ([`rules::pushdown_limits`]) — sinks `Limit`
//!    beneath row-preserving `Project`s and caps the members of
//!    `UNION ALL` compounds, so `LIMIT k` stops each member's scan early.
//! 4. **common-subplan elimination** ([`cse::share_common_subplans`]) —
//!    fingerprints structurally equal subtrees and rewrites duplicates to
//!    one [`Plan::Shared`] spool, evaluated once per execution.
//!
//! Each pass is individually toggleable through [`OptimizerConfig`] (the
//! equivalence property tests run every subset against the unoptimized
//! plan), and each pass that fires records a human-readable annotation
//! surfaced by `EXPLAIN`.

pub mod cse;
pub mod rules;
pub mod validate;

use crate::plan::Plan;

pub use validate::PlanInvariantError;

/// Which rewrite passes run. The default enables everything; `none()` is
/// the identity pipeline (used as the baseline in equivalence tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Move filters below projections/sorts and into union members and
    /// inner-join children.
    pub filter_pushdown: bool,
    /// Compose adjacent projections; narrow aggregate inputs.
    pub prune_projections: bool,
    /// Sink LIMIT below projections and into `UNION ALL` members.
    pub limit_pushdown: bool,
    /// Deduplicate structurally equal subtrees through shared spools.
    pub shared_subplans: bool,
    /// Run the plan-invariant validator ([`validate`]) on the built plan
    /// and after every pass. Defaults to on under `debug_assertions`
    /// (tests, debug builds) and off in release, so the checks never cost
    /// anything on the hot path.
    pub validate: bool,
    /// Deliberately corrupt one pass so tests can prove the validator
    /// catches a broken rewrite. A no-op in release builds.
    #[doc(hidden)]
    pub sabotage: Sabotage,
}

/// Test-only pass corruption, selectable through
/// [`OptimizerConfig::sabotage`]. Only applied under `debug_assertions`.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sabotage {
    #[default]
    None,
    /// After limit pushdown, widen the outermost LIMIT by one row — the
    /// validator must flag the increased row bound.
    WidenLimit,
    /// After projection pruning, drop the last output column of the
    /// outermost projection — the validator must flag the changed output
    /// signature.
    DropProjectColumn,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            filter_pushdown: true,
            prune_projections: true,
            limit_pushdown: true,
            shared_subplans: true,
            validate: cfg!(debug_assertions),
            sabotage: Sabotage::None,
        }
    }
}

impl OptimizerConfig {
    /// The identity pipeline: no pass runs, the plan is returned as built
    /// (still validated once under `debug_assertions`).
    pub fn none() -> Self {
        OptimizerConfig {
            filter_pushdown: false,
            prune_projections: false,
            limit_pushdown: false,
            shared_subplans: false,
            validate: cfg!(debug_assertions),
            sabotage: Sabotage::None,
        }
    }
}

/// An optimized plan plus the annotations of every pass that fired.
#[derive(Debug, Clone)]
pub struct Optimized {
    pub plan: Plan,
    /// One line per pass that changed the plan (empty when the plan came
    /// through untouched). Rendered by `EXPLAIN` after the tree.
    pub notes: Vec<String>,
}

impl Optimized {
    /// The `EXPLAIN` rendering: the plan tree, then one `--` annotation
    /// line per rewrite pass that changed it.
    pub fn render(&self) -> String {
        let mut out = self.plan.explain();
        for note in &self.notes {
            out.push_str("-- ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

/// Run the configured rewrite passes over `plan`.
///
/// With [`OptimizerConfig::validate`] set (the `debug_assertions`
/// default), the built plan is checked structurally and every pass is
/// checked for invariant preservation; a violation aborts planning with a
/// typed [`PlanInvariantError`] naming the offending pass.
pub fn optimize(plan: Plan, cfg: &OptimizerConfig) -> Result<Optimized, PlanInvariantError> {
    let mut notes = Vec::new();
    if cfg.validate {
        validate::check_plan(&plan, "plan_select")?;
    }
    let mut plan = plan;
    let run_pass = |plan: Plan,
                        name: &str,
                        notes: &mut Vec<String>,
                        pass: &mut dyn FnMut(Plan, &mut Vec<String>) -> Plan|
     -> Result<Plan, PlanInvariantError> {
        let before = cfg.validate.then(|| plan.clone());
        let after = pass(plan, notes);
        let after = apply_sabotage(after, name, cfg);
        if let Some(before) = before {
            validate::check_pass(&before, &after, name)?;
        }
        Ok(after)
    };
    if cfg.filter_pushdown {
        plan = run_pass(plan, "filter_pushdown", &mut notes, &mut rules::pushdown_filters)?;
    }
    if cfg.prune_projections {
        plan = run_pass(plan, "prune_projections", &mut notes, &mut rules::prune_projections)?;
    }
    if cfg.limit_pushdown {
        plan = run_pass(plan, "limit_pushdown", &mut notes, &mut rules::pushdown_limits)?;
    }
    if cfg.shared_subplans {
        plan = run_pass(plan, "shared_subplans", &mut notes, &mut cse::share_common_subplans)?;
    }
    if cfg.validate {
        validate::check_plan(&plan, "final")?;
    }
    Ok(Optimized { plan, notes })
}

/// Apply the configured test-only corruption after its target pass.
/// Compiled to the identity in release builds.
#[cfg(debug_assertions)]
fn apply_sabotage(plan: Plan, pass: &str, cfg: &OptimizerConfig) -> Plan {
    match cfg.sabotage {
        Sabotage::WidenLimit if pass == "limit_pushdown" => widen_first_limit(plan),
        Sabotage::DropProjectColumn if pass == "prune_projections" => drop_project_column(plan),
        _ => plan,
    }
}

#[cfg(not(debug_assertions))]
fn apply_sabotage(plan: Plan, _pass: &str, _cfg: &OptimizerConfig) -> Plan {
    plan
}

#[cfg(debug_assertions)]
fn widen_first_limit(plan: Plan) -> Plan {
    match plan {
        Plan::Limit { input, limit, offset } => Plan::Limit {
            input,
            limit: limit.map(|l| l + 1),
            offset,
        },
        other => map_children(other, &mut widen_first_limit),
    }
}

#[cfg(debug_assertions)]
fn drop_project_column(plan: Plan) -> Plan {
    match plan {
        Plan::Project { input, mut exprs, mut schema } if exprs.len() > 1 => {
            exprs.pop();
            schema.columns.pop();
            Plan::Project { input, exprs, schema }
        }
        other => map_children(other, &mut drop_project_column),
    }
}

/// Rebuild `plan` with every direct child mapped through `f` (shared
/// spool inputs are left untouched — CSE runs last and owns them).
pub(crate) fn map_children(plan: Plan, f: &mut impl FnMut(Plan) -> Plan) -> Plan {
    match plan {
        p @ (Plan::Values { .. } | Plan::Scan { .. } | Plan::IndexScan { .. }) => p,
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        Plan::Project { input, exprs, schema } => Plan::Project {
            input: Box::new(f(*input)),
            exprs,
            schema,
        },
        Plan::NestedLoopJoin { left, right, kind, predicate, schema } => {
            Plan::NestedLoopJoin {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                kind,
                predicate,
                schema,
            }
        }
        Plan::HashJoin { left, right, kind, left_keys, right_keys, residual, schema } => {
            Plan::HashJoin {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                kind,
                left_keys,
                right_keys,
                residual,
                schema,
            }
        }
        Plan::Aggregate { input, group, aggs, schema } => Plan::Aggregate {
            input: Box::new(f(*input)),
            group,
            aggs,
            schema,
        },
        Plan::Sort { input, keys } => Plan::Sort { input: Box::new(f(*input)), keys },
        Plan::Distinct { input } => Plan::Distinct { input: Box::new(f(*input)) },
        Plan::Limit { input, limit, offset } => Plan::Limit {
            input: Box::new(f(*input)),
            limit,
            offset,
        },
        Plan::Union { inputs, all, schema } => Plan::Union {
            inputs: inputs.into_iter().map(f).collect(),
            all,
            schema,
        },
        p @ Plan::Shared { .. } => p,
    }
}
