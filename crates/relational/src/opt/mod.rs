//! The plan-rewrite optimizer: an explicit pass pipeline over [`Plan`].
//!
//! Planning is split into **build → optimize → execute**: the planner
//! ([`crate::plan::plan_select`]) lowers the AST into a correct bound plan,
//! and this module rewrites that plan through a sequence of independent
//! passes before execution:
//!
//! 1. **filter pushdown** ([`rules::pushdown_filters`]) — moves `Filter`
//!    nodes below projections (substituting column references), below
//!    sorts, into `UNION` members and into the children of inner joins.
//! 2. **projection pruning** ([`rules::prune_projections`]) — composes
//!    adjacent `Project` nodes and narrows `Aggregate` inputs to the
//!    columns the group/aggregate expressions actually reference.
//! 3. **limit pushdown** ([`rules::pushdown_limits`]) — sinks `Limit`
//!    beneath row-preserving `Project`s and caps the members of
//!    `UNION ALL` compounds, so `LIMIT k` stops each member's scan early.
//! 4. **common-subplan elimination** ([`cse::share_common_subplans`]) —
//!    fingerprints structurally equal subtrees and rewrites duplicates to
//!    one [`Plan::Shared`] spool, evaluated once per execution.
//!
//! Each pass is individually toggleable through [`OptimizerConfig`] (the
//! equivalence property tests run every subset against the unoptimized
//! plan), and each pass that fires records a human-readable annotation
//! surfaced by `EXPLAIN`.

pub mod cse;
pub mod rules;

use crate::plan::Plan;

/// Which rewrite passes run. The default enables everything; `none()` is
/// the identity pipeline (used as the baseline in equivalence tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Move filters below projections/sorts and into union members and
    /// inner-join children.
    pub filter_pushdown: bool,
    /// Compose adjacent projections; narrow aggregate inputs.
    pub prune_projections: bool,
    /// Sink LIMIT below projections and into `UNION ALL` members.
    pub limit_pushdown: bool,
    /// Deduplicate structurally equal subtrees through shared spools.
    pub shared_subplans: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            filter_pushdown: true,
            prune_projections: true,
            limit_pushdown: true,
            shared_subplans: true,
        }
    }
}

impl OptimizerConfig {
    /// The identity pipeline: no pass runs, the plan is returned as built.
    pub fn none() -> Self {
        OptimizerConfig {
            filter_pushdown: false,
            prune_projections: false,
            limit_pushdown: false,
            shared_subplans: false,
        }
    }
}

/// An optimized plan plus the annotations of every pass that fired.
#[derive(Debug, Clone)]
pub struct Optimized {
    pub plan: Plan,
    /// One line per pass that changed the plan (empty when the plan came
    /// through untouched). Rendered by `EXPLAIN` after the tree.
    pub notes: Vec<String>,
}

impl Optimized {
    /// The `EXPLAIN` rendering: the plan tree, then one `--` annotation
    /// line per rewrite pass that changed it.
    pub fn render(&self) -> String {
        let mut out = self.plan.explain();
        for note in &self.notes {
            out.push_str("-- ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

/// Run the configured rewrite passes over `plan`.
pub fn optimize(plan: Plan, cfg: &OptimizerConfig) -> Optimized {
    let mut notes = Vec::new();
    let mut plan = plan;
    if cfg.filter_pushdown {
        plan = rules::pushdown_filters(plan, &mut notes);
    }
    if cfg.prune_projections {
        plan = rules::prune_projections(plan, &mut notes);
    }
    if cfg.limit_pushdown {
        plan = rules::pushdown_limits(plan, &mut notes);
    }
    if cfg.shared_subplans {
        plan = cse::share_common_subplans(plan, &mut notes);
    }
    Optimized { plan, notes }
}

/// Rebuild `plan` with every direct child mapped through `f` (shared
/// spool inputs are left untouched — CSE runs last and owns them).
pub(crate) fn map_children(plan: Plan, f: &mut impl FnMut(Plan) -> Plan) -> Plan {
    match plan {
        p @ (Plan::Values { .. } | Plan::Scan { .. } | Plan::IndexScan { .. }) => p,
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        Plan::Project { input, exprs, schema } => Plan::Project {
            input: Box::new(f(*input)),
            exprs,
            schema,
        },
        Plan::NestedLoopJoin { left, right, kind, predicate, schema } => {
            Plan::NestedLoopJoin {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                kind,
                predicate,
                schema,
            }
        }
        Plan::HashJoin { left, right, kind, left_keys, right_keys, residual, schema } => {
            Plan::HashJoin {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                kind,
                left_keys,
                right_keys,
                residual,
                schema,
            }
        }
        Plan::Aggregate { input, group, aggs, schema } => Plan::Aggregate {
            input: Box::new(f(*input)),
            group,
            aggs,
            schema,
        },
        Plan::Sort { input, keys } => Plan::Sort { input: Box::new(f(*input)), keys },
        Plan::Distinct { input } => Plan::Distinct { input: Box::new(f(*input)) },
        Plan::Limit { input, limit, offset } => Plan::Limit {
            input: Box::new(f(*input)),
            limit,
            offset,
        },
        Plan::Union { inputs, all, schema } => Plan::Union {
            inputs: inputs.into_iter().map(f).collect(),
            all,
            schema,
        },
        p @ Plan::Shared { .. } => p,
    }
}
