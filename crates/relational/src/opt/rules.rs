//! Structural rewrite passes: filter pushdown, projection pruning and
//! limit pushdown.
//!
//! These generalise what used to be inline special cases of
//! `plan_select`: the planner still pushes *AST-level* WHERE conjuncts
//! while it assembles the FROM clause (it has the name resolution context
//! to pick index scans), and the passes here rewrite the *bound* plan —
//! so filters produced by later planning stages (or by the SESQL layer's
//! rewrites) sink just as far, limits cap union members, and redundant
//! projections collapse, no matter which front-end built the plan.

use crate::exec::expr::BoundExpr;
use crate::plan::Plan;
use crate::schema::Schema;
use crate::sql::ast::JoinKind;

use super::map_children;

// ---- bound-expression column analysis --------------------------------------

/// Visit every column reference in a bound expression.
pub(crate) fn visit_cols(e: &BoundExpr, f: &mut impl FnMut(usize)) {
    match e {
        BoundExpr::Literal(_) => {}
        BoundExpr::Column(i) => f(*i),
        BoundExpr::Unary { expr, .. } => visit_cols(expr, f),
        BoundExpr::Binary { left, right, .. } => {
            visit_cols(left, f);
            visit_cols(right, f);
        }
        BoundExpr::IsNull { expr, .. } => visit_cols(expr, f),
        BoundExpr::InList { expr, list, .. } => {
            visit_cols(expr, f);
            for item in list {
                visit_cols(item, f);
            }
        }
        BoundExpr::Between { expr, low, high, .. } => {
            visit_cols(expr, f);
            visit_cols(low, f);
            visit_cols(high, f);
        }
        BoundExpr::Like { expr, pattern, .. } => {
            visit_cols(expr, f);
            visit_cols(pattern, f);
        }
        BoundExpr::ScalarFn { args, .. } => {
            for a in args {
                visit_cols(a, f);
            }
        }
        BoundExpr::Case { operand, branches, else_expr } => {
            if let Some(o) = operand {
                visit_cols(o, f);
            }
            for (w, t) in branches {
                visit_cols(w, f);
                visit_cols(t, f);
            }
            if let Some(e) = else_expr {
                visit_cols(e, f);
            }
        }
    }
}

/// Rebuild a bound expression with every `Column(i)` replaced by `f(i)` —
/// the substitution primitive behind pushing filters through projections
/// (replace with the projection expression) and index remapping (replace
/// with a shifted column reference).
pub(crate) fn map_cols(e: BoundExpr, f: &mut impl FnMut(usize) -> BoundExpr) -> BoundExpr {
    match e {
        BoundExpr::Literal(v) => BoundExpr::Literal(v),
        BoundExpr::Column(i) => f(i),
        BoundExpr::Unary { op, expr } => BoundExpr::Unary {
            op,
            expr: Box::new(map_cols(*expr, f)),
        },
        BoundExpr::Binary { left, op, right } => BoundExpr::Binary {
            left: Box::new(map_cols(*left, f)),
            op,
            right: Box::new(map_cols(*right, f)),
        },
        BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(map_cols(*expr, f)),
            negated,
        },
        BoundExpr::InList { expr, list, negated } => BoundExpr::InList {
            expr: Box::new(map_cols(*expr, f)),
            list: list.into_iter().map(|e| map_cols(e, f)).collect(),
            negated,
        },
        BoundExpr::Between { expr, low, high, negated } => BoundExpr::Between {
            expr: Box::new(map_cols(*expr, f)),
            low: Box::new(map_cols(*low, f)),
            high: Box::new(map_cols(*high, f)),
            negated,
        },
        BoundExpr::Like { expr, pattern, negated } => BoundExpr::Like {
            expr: Box::new(map_cols(*expr, f)),
            pattern: Box::new(map_cols(*pattern, f)),
            negated,
        },
        BoundExpr::ScalarFn { func, args } => BoundExpr::ScalarFn {
            func,
            args: args.into_iter().map(|e| map_cols(e, f)).collect(),
        },
        BoundExpr::Case { operand, branches, else_expr } => BoundExpr::Case {
            operand: operand.map(|o| Box::new(map_cols(*o, f))),
            branches: branches
                .into_iter()
                .map(|(w, t)| (map_cols(w, f), map_cols(t, f)))
                .collect(),
            else_expr: else_expr.map(|e| Box::new(map_cols(*e, f))),
        },
    }
}

/// The set of column indexes a bound expression references, sorted.
fn used_cols(exprs: &[&BoundExpr]) -> Vec<usize> {
    let mut used = Vec::new();
    for e in exprs {
        visit_cols(e, &mut |i| {
            if !used.contains(&i) {
                used.push(i);
            }
        });
    }
    used.sort_unstable();
    used
}

// ---- filter pushdown -------------------------------------------------------

/// Push every `Filter` as deep as the operator algebra allows: through
/// projections (substituting column references with the projected
/// expressions), through sorts and DISTINCT, into each UNION member
/// (bound predicates are positional, and members share the compound's
/// column layout), and into join children when the predicate references
/// only one side (never beneath the NULL-padded side of a LEFT join).
pub fn pushdown_filters(plan: Plan, notes: &mut Vec<String>) -> Plan {
    let mut moved = 0usize;
    let out = walk_filters(plan, &mut moved);
    if moved > 0 {
        notes.push(format!("filter-pushdown: {moved} filter(s) moved below other operators"));
    }
    out
}

fn walk_filters(plan: Plan, moved: &mut usize) -> Plan {
    let plan = map_children(plan, &mut |c| walk_filters(c, moved));
    if let Plan::Filter { input, predicate } = plan {
        sink_filter(*input, predicate, moved)
    } else {
        plan
    }
}

/// Return a plan equivalent to `Filter(predicate) over input`, with the
/// filter sunk as deep as possible.
fn sink_filter(input: Plan, predicate: BoundExpr, moved: &mut usize) -> Plan {
    match input {
        Plan::Project { input, exprs, schema } => {
            *moved += 1;
            let pred = map_cols(predicate, &mut |i| exprs[i].clone());
            Plan::Project {
                input: Box::new(sink_filter(*input, pred, moved)),
                exprs,
                schema,
            }
        }
        Plan::Sort { input, keys } => {
            *moved += 1;
            Plan::Sort { input: Box::new(sink_filter(*input, predicate, moved)), keys }
        }
        Plan::Distinct { input } => {
            *moved += 1;
            Plan::Distinct { input: Box::new(sink_filter(*input, predicate, moved)) }
        }
        Plan::Union { inputs, all, schema } => {
            *moved += 1;
            Plan::Union {
                inputs: inputs
                    .into_iter()
                    .map(|m| sink_filter(m, predicate.clone(), moved))
                    .collect(),
                all,
                schema,
            }
        }
        Plan::HashJoin { left, right, kind, left_keys, right_keys, residual, schema } => {
            match join_side(&predicate, left.schema(), kind) {
                JoinSide::Left => {
                    *moved += 1;
                    Plan::HashJoin {
                        left: Box::new(sink_filter(*left, predicate, moved)),
                        right,
                        kind,
                        left_keys,
                        right_keys,
                        residual,
                        schema,
                    }
                }
                JoinSide::Right(shifted) => {
                    *moved += 1;
                    Plan::HashJoin {
                        left,
                        right: Box::new(sink_filter(*right, shifted, moved)),
                        kind,
                        left_keys,
                        right_keys,
                        residual,
                        schema,
                    }
                }
                JoinSide::Neither => Plan::Filter {
                    input: Box::new(Plan::HashJoin {
                        left,
                        right,
                        kind,
                        left_keys,
                        right_keys,
                        residual,
                        schema,
                    }),
                    predicate,
                },
            }
        }
        Plan::NestedLoopJoin { left, right, kind, predicate: on, schema } => {
            match join_side(&predicate, left.schema(), kind) {
                JoinSide::Left => {
                    *moved += 1;
                    Plan::NestedLoopJoin {
                        left: Box::new(sink_filter(*left, predicate, moved)),
                        right,
                        kind,
                        predicate: on,
                        schema,
                    }
                }
                JoinSide::Right(shifted) => {
                    *moved += 1;
                    Plan::NestedLoopJoin {
                        left,
                        right: Box::new(sink_filter(*right, shifted, moved)),
                        kind,
                        predicate: on,
                        schema,
                    }
                }
                JoinSide::Neither => Plan::Filter {
                    input: Box::new(Plan::NestedLoopJoin {
                        left,
                        right,
                        kind,
                        predicate: on,
                        schema,
                    }),
                    predicate,
                },
            }
        }
        other => Plan::Filter { input: Box::new(other), predicate },
    }
}

enum JoinSide {
    Left,
    /// References only the right side; payload is the predicate rebased
    /// onto right-child column indexes.
    Right(BoundExpr),
    Neither,
}

/// Which side of a join a combined-row predicate can move to. A filter on
/// the preserved (left) side of a LEFT join pushes safely — rows it
/// removes would only have produced NULL-padded output; the padded side
/// never accepts a pushed filter (NULL-padded rows bypass it above, not
/// below).
fn join_side(predicate: &BoundExpr, left_schema: &Schema, kind: JoinKind) -> JoinSide {
    let lw = left_schema.len();
    let mut all_left = true;
    let mut all_right = true;
    visit_cols(predicate, &mut |i| {
        if i < lw {
            all_right = false;
        } else {
            all_left = false;
        }
    });
    if all_left && all_right {
        // References no column at all: keep it above the join (evaluating
        // a constant predicate once per joined row is as cheap as any
        // placement, and sides may be empty).
        return JoinSide::Neither;
    }
    if all_left {
        return JoinSide::Left;
    }
    if all_right && kind != JoinKind::Left {
        let shifted = map_cols(predicate.clone(), &mut |i| BoundExpr::Column(i - lw));
        return JoinSide::Right(shifted);
    }
    JoinSide::Neither
}

// ---- projection pruning ----------------------------------------------------

/// Compose adjacent `Project` nodes into one, and narrow `Aggregate`
/// inputs to the columns their group/aggregate expressions reference
/// (a wide join feeding a grouped aggregate carries only the grouped
/// columns through the hash table).
pub fn prune_projections(plan: Plan, notes: &mut Vec<String>) -> Plan {
    let mut composed = 0usize;
    let mut narrowed = 0usize;
    let out = walk_prune(plan, &mut composed, &mut narrowed);
    if composed > 0 || narrowed > 0 {
        let mut parts = Vec::new();
        if composed > 0 {
            parts.push(format!("{composed} projection(s) composed"));
        }
        if narrowed > 0 {
            parts.push(format!("{narrowed} aggregate input(s) narrowed"));
        }
        notes.push(format!("projection-pruning: {}", parts.join(", ")));
    }
    out
}

fn walk_prune(plan: Plan, composed: &mut usize, narrowed: &mut usize) -> Plan {
    let plan = map_children(plan, &mut |c| walk_prune(c, composed, narrowed));
    match plan {
        Plan::Project { input, exprs, schema } => {
            if let Plan::Project { input: inner_input, exprs: inner_exprs, .. } = *input {
                *composed += 1;
                let exprs = exprs
                    .into_iter()
                    .map(|e| map_cols(e, &mut |i| inner_exprs[i].clone()))
                    .collect();
                Plan::Project { input: inner_input, exprs, schema }
            } else {
                Plan::Project { input, exprs, schema }
            }
        }
        Plan::Aggregate { input, group, aggs, schema } => {
            let width = input.schema().len();
            let mut refs: Vec<&BoundExpr> = group.iter().collect();
            refs.extend(aggs.iter().filter_map(|a| a.arg.as_ref()));
            let used = used_cols(&refs);
            if used.len() >= width {
                return Plan::Aggregate { input, group, aggs, schema };
            }
            *narrowed += 1;
            let narrow_schema = Schema::new(
                used.iter().map(|&i| input.schema().columns[i].clone()).collect(),
            );
            let remap: std::collections::HashMap<usize, usize> =
                used.iter().enumerate().map(|(new, &old)| (old, new)).collect();
            let group = group
                .into_iter()
                .map(|g| map_cols(g, &mut |i| BoundExpr::Column(remap[&i])))
                .collect();
            let aggs = aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a
                        .arg
                        .map(|e| map_cols(e, &mut |i| BoundExpr::Column(remap[&i])));
                    a
                })
                .collect();
            let narrow = Plan::Project {
                input,
                exprs: used.iter().map(|&i| BoundExpr::Column(i)).collect(),
                schema: narrow_schema,
            };
            // The inserted projection may itself sit on a projection.
            let narrow = walk_prune(narrow, composed, narrowed);
            Plan::Aggregate { input: Box::new(narrow), group, aggs, schema }
        }
        other => other,
    }
}

// ---- limit pushdown --------------------------------------------------------

/// Sink `Limit` beneath row-preserving `Project`s and into the members of
/// `UNION ALL` compounds (each member is capped at `limit + offset`; the
/// outer limit still applies the offset and the overall cap), so a
/// `LIMIT k` over a projected union stops each member's base-table scan
/// within one batch of `k`.
pub fn pushdown_limits(plan: Plan, notes: &mut Vec<String>) -> Plan {
    let mut moved = 0usize;
    let out = walk_limits(plan, &mut moved);
    if moved > 0 {
        notes.push(format!("limit-pushdown: {moved} limit(s) sunk toward the scans"));
    }
    out
}

fn walk_limits(plan: Plan, moved: &mut usize) -> Plan {
    let plan = map_children(plan, &mut |c| walk_limits(c, moved));
    if let Plan::Limit { input, limit, offset } = plan {
        sink_limit(*input, limit, offset, moved)
    } else {
        plan
    }
}

/// Return a plan equivalent to `Limit { input, limit, offset }` with the
/// limit sunk as deep as possible.
fn sink_limit(input: Plan, limit: Option<u64>, offset: u64, moved: &mut usize) -> Plan {
    match input {
        Plan::Project { input, exprs, schema } => {
            *moved += 1;
            Plan::Project {
                input: Box::new(sink_limit(*input, limit, offset, moved)),
                exprs,
                schema,
            }
        }
        Plan::Union { inputs, all: true, schema } if limit.is_some() => {
            *moved += 1;
            // Each member needs to produce at most limit+offset rows; the
            // outer limit still skips the offset and enforces the total.
            let member_cap = limit.map(|l| l.saturating_add(offset));
            let inputs = inputs
                .into_iter()
                .map(|m| sink_limit(m, member_cap, 0, moved))
                .collect();
            Plan::Limit {
                input: Box::new(Plan::Union { inputs, all: true, schema }),
                limit,
                offset,
            }
        }
        other => Plan::Limit { input: Box::new(other), limit, offset },
    }
}
