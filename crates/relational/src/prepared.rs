//! Prepared statements: parse once, bind parameters, execute many times.
//!
//! [`Database::prepare`](crate::Database::prepare) splits the classic
//! string-in/rows-out path into a *prepare* step (lex + parse + parameter
//! slot collection + — for parameterless statements — planning) and an
//! *execute* step that binds values to slots and streams results through a
//! [`Rows`] cursor. Compiled statements are cached in a bounded LRU keyed
//! by [`normalize_sql`], so repeated traffic with the same shape skips the
//! front-end entirely even when the submitted text differs in case or
//! whitespace.
//!
//! Placeholders come in two forms, shared with the SESQL and SPARQL
//! grammars:
//!
//! * `$name` — named; every occurrence of the same name is one slot;
//! * `?` — positional; each occurrence is a fresh slot, bound in order.
//!
//! Slots are *typed* where the query shape allows it: a placeholder
//! compared against a column inherits that column's type, and binding a
//! value that cannot coerce to it is an execute-time error rather than a
//! silently-empty result.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::db::{Database, RowSet};
use crate::error::{Error, Result};
use crate::exec::Rows;
use crate::plan::Plan;
use crate::schema::{Column, Schema};
use crate::sql::ast::{Expr, Select, SelectItem, TableRef};
use crate::sql::lexer::tokenize;
use crate::sql::parser::ParamSlot;
use crate::sql::token::TokenKind;
use crate::storage::Catalog;
use crate::value::{DataType, Value};

/// One parameter slot with its (best-effort) inferred type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotInfo {
    /// `Some` for `$name` placeholders, `None` for positional `?`.
    pub name: Option<String>,
    /// Expected value type, when the placeholder is compared against a
    /// typed column. `None` means any type binds.
    pub expected: Option<DataType>,
}

impl SlotInfo {
    /// Render the placeholder as written (`$name` or `?`).
    pub fn display(&self) -> String {
        match &self.name {
            Some(n) => format!("${n}"),
            None => "?".to_string(),
        }
    }
}

/// Values for the parameter slots of a prepared statement.
///
/// Build with the fluent API:
///
/// ```
/// use crosse_relational::prepared::Params;
/// let p = Params::new().set("city", "Torino").push(42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Params {
    named: Vec<(String, Value)>,
    positional: Vec<Value>,
}

impl Params {
    pub fn new() -> Self {
        Params::default()
    }

    /// Bind a named (`$name`) parameter.
    pub fn set(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        let name = name.into();
        // Latest binding wins, so callers can reuse a base Params.
        self.named.retain(|(n, _)| *n != name);
        self.named.push((name, value.into()));
        self
    }

    /// Bind the next positional (`?`) parameter.
    pub fn push(mut self, value: impl Into<Value>) -> Self {
        self.positional.push(value.into());
        self
    }

    pub fn is_empty(&self) -> bool {
        self.named.is_empty() && self.positional.is_empty()
    }

    fn named_value(&self, name: &str) -> Option<&Value> {
        self.named.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// Resolve concrete values for `slots` from `params`, coercing to the
/// inferred slot types. Every slot must be bound; extra positional values
/// are rejected (extra named bindings are ignored so one `Params` can
/// serve several statements).
pub fn resolve_params(slots: &[SlotInfo], params: &Params) -> Result<Vec<Value>> {
    let mut out = Vec::with_capacity(slots.len());
    let mut next_positional = 0usize;
    for slot in slots {
        let value = match &slot.name {
            Some(n) => params
                .named_value(n)
                .cloned()
                .ok_or_else(|| {
                    Error::plan(format!("missing binding for parameter `${n}`"))
                })?,
            None => {
                let v = params.positional.get(next_positional).cloned().ok_or_else(
                    || {
                        Error::plan(format!(
                            "missing binding for positional parameter #{}",
                            next_positional + 1
                        ))
                    },
                )?;
                next_positional += 1;
                v
            }
        };
        let value = match slot.expected {
            Some(dt) if !value.is_null() => value.clone().coerce(dt).map_err(|_| {
                Error::eval(format!(
                    "parameter `{}` expects {dt}, got {value:?}",
                    slot.display()
                ))
            })?,
            _ => value,
        };
        out.push(value);
    }
    if next_positional < params.positional.len() {
        return Err(Error::plan(format!(
            "{} positional value(s) bound, statement has {} positional slot(s)",
            params.positional.len(),
            next_positional
        )));
    }
    Ok(out)
}

/// Canonical cache key for a statement: the token stream re-rendered with
/// single spaces, unquoted identifiers (and keywords) lower-cased, and
/// string literals re-escaped. Whitespace, comments and keyword case do
/// not defeat the cache; quoted identifiers and literal contents survive
/// verbatim.
pub fn normalize_sql(sql: &str) -> Result<String> {
    let tokens = tokenize(sql)?;
    let mut out = String::with_capacity(sql.len());
    for t in tokens {
        match &t.kind {
            TokenKind::Eof => break,
            TokenKind::Ident { value, quoted: false } => {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&value.to_ascii_lowercase());
            }
            TokenKind::String(s) => {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push('\'');
                out.push_str(&s.replace('\'', "''"));
                out.push('\'');
            }
            other => {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&other.to_string());
            }
        }
    }
    Ok(out)
}

// ---- parameter substitution ------------------------------------------------

/// Substitute every parameter placeholder in `e` with its bound literal,
/// descending into subquery bodies.
pub fn substitute_expr(e: Expr, values: &[Value]) -> Expr {
    e.rewrite(&mut |node| match node {
        Expr::Param { index, .. } => Expr::Literal(
            values.get(index).cloned().unwrap_or(Value::Null),
        ),
        Expr::InSubquery { expr, query, negated } => Expr::InSubquery {
            expr,
            query: Box::new(substitute_select(*query, values)),
            negated,
        },
        Expr::Exists { query, negated } => Expr::Exists {
            query: Box::new(substitute_select(*query, values)),
            negated,
        },
        Expr::ScalarSubquery(query) => {
            Expr::ScalarSubquery(Box::new(substitute_select(*query, values)))
        }
        other => other,
    })
}

fn substitute_table_ref(tr: TableRef, values: &[Value]) -> TableRef {
    match tr {
        t @ TableRef::Table { .. } => t,
        TableRef::Join { left, right, kind, on } => TableRef::Join {
            left: Box::new(substitute_table_ref(*left, values)),
            right: Box::new(substitute_table_ref(*right, values)),
            kind,
            on: on.map(|e| substitute_expr(e, values)),
        },
    }
}

/// Substitute every parameter placeholder in a SELECT (all clauses, all
/// union members, all subqueries).
pub fn substitute_select(select: Select, values: &[Value]) -> Select {
    Select {
        distinct: select.distinct,
        projections: select
            .projections
            .into_iter()
            .map(|p| match p {
                SelectItem::Expr { expr, alias } => SelectItem::Expr {
                    expr: substitute_expr(expr, values),
                    alias,
                },
                other => other,
            })
            .collect(),
        from: select
            .from
            .into_iter()
            .map(|tr| substitute_table_ref(tr, values))
            .collect(),
        filter: select.filter.map(|e| substitute_expr(e, values)),
        group_by: select
            .group_by
            .into_iter()
            .map(|e| substitute_expr(e, values))
            .collect(),
        having: select.having.map(|e| substitute_expr(e, values)),
        union: select
            .union
            .into_iter()
            .map(|(all, s)| (all, substitute_select(s, values)))
            .collect(),
        order_by: select
            .order_by
            .into_iter()
            .map(|mut o| {
                o.expr = substitute_expr(o.expr, values);
                o
            })
            .collect(),
        limit: select.limit,
        offset: select.offset,
    }
}

// ---- slot type inference ---------------------------------------------------

/// Best-effort schema of the FROM clause (base tables only; derived and
/// missing tables contribute nothing). Enough to type `col <op> $p`.
pub(crate) fn from_schema(catalog: &Catalog, select: &Select) -> Schema {
    fn walk(tr: &TableRef, catalog: &Catalog, cols: &mut Vec<Column>) {
        match tr {
            TableRef::Table { name, alias } => {
                if let Ok(t) = catalog.get_table(name) {
                    let q = alias.clone().unwrap_or_else(|| name.clone());
                    for c in &t.schema.columns {
                        cols.push(
                            Column::new(c.name.clone(), c.data_type).with_qualifier(&q),
                        );
                    }
                }
            }
            TableRef::Join { left, right, .. } => {
                walk(left, catalog, cols);
                walk(right, catalog, cols);
            }
        }
    }
    let mut cols = Vec::new();
    for tr in &select.from {
        walk(tr, catalog, &mut cols);
    }
    Schema::new(cols)
}

fn column_type(schema: &Schema, e: &Expr) -> Option<DataType> {
    if let Expr::Column { qualifier, name } = e {
        schema
            .resolve(qualifier.as_deref(), name)
            .ok()
            .map(|i| schema.columns[i].data_type)
    } else {
        None
    }
}

fn note_slot(slots: &mut [SlotInfo], e: &Expr, dt: Option<DataType>) {
    if let (Expr::Param { index, .. }, Some(dt)) = (e, dt) {
        if let Some(slot) = slots.get_mut(*index) {
            if slot.expected.is_none() {
                slot.expected = Some(dt);
            }
        }
    }
}

fn infer_expr(e: &Expr, schema: &Schema, slots: &mut [SlotInfo]) {
    e.visit(&mut |node| match node {
        Expr::Binary { left, op, right } if op.is_comparison() => {
            note_slot(slots, right, column_type(schema, left));
            note_slot(slots, left, column_type(schema, right));
        }
        Expr::InList { expr, list, .. } => {
            let dt = column_type(schema, expr);
            for item in list {
                note_slot(slots, item, dt);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            let dt = column_type(schema, expr);
            note_slot(slots, low, dt);
            note_slot(slots, high, dt);
        }
        Expr::Like { pattern, .. } => {
            note_slot(slots, pattern, Some(DataType::Text));
        }
        _ => {}
    });
}

/// Infer expected types for the parameter slots of `select`.
pub fn infer_slot_types(
    catalog: &Catalog,
    select: &Select,
    slots: &[ParamSlot],
) -> Vec<SlotInfo> {
    let mut infos: Vec<SlotInfo> = slots
        .iter()
        .map(|s| SlotInfo { name: s.name.clone(), expected: None })
        .collect();
    fn walk_select(
        catalog: &Catalog,
        select: &Select,
        infos: &mut Vec<SlotInfo>,
    ) {
        let schema = from_schema(catalog, select);
        let mut exprs: Vec<&Expr> = Vec::new();
        for p in &select.projections {
            if let SelectItem::Expr { expr, .. } = p {
                exprs.push(expr);
            }
        }
        exprs.extend(select.filter.iter());
        exprs.extend(select.group_by.iter());
        exprs.extend(select.having.iter());
        exprs.extend(select.order_by.iter().map(|o| &o.expr));
        fn on_exprs<'a>(tr: &'a TableRef, out: &mut Vec<&'a Expr>) {
            if let TableRef::Join { left, right, on, .. } = tr {
                on_exprs(left, out);
                on_exprs(right, out);
                out.extend(on.iter());
            }
        }
        for tr in &select.from {
            on_exprs(tr, &mut exprs);
        }
        for e in exprs {
            infer_expr(e, &schema, infos);
        }
        for (_, member) in &select.union {
            walk_select(catalog, member, infos);
        }
    }
    walk_select(catalog, select, &mut infos);
    infos
}

// ---- the prepared handle ---------------------------------------------------

/// A compiled statement: parsed AST, typed parameter slots and — when the
/// statement has no parameters — a ready plan template.
///
/// Cheap to clone (everything hot is behind an `Arc`); executions on one
/// `Prepared` are independent cursors.
#[derive(Debug, Clone)]
pub struct Prepared {
    db: Database,
    select: Arc<Select>,
    slots: Arc<Vec<SlotInfo>>,
    /// Pre-planned template for parameterless statements, tagged with the
    /// catalog version it was planned against.
    plan: Option<(Arc<Plan>, u64)>,
    /// Normalized statement text (the plan-cache key).
    text: String,
    /// Lint diagnostics computed at prepare time (see
    /// [`crate::lint`]; parameter placeholders do not warn here).
    warnings: Arc<Vec<crosse_lint::Diagnostic>>,
    /// Catalog version the slot types were inferred against. Executions
    /// after DDL re-infer slots against the live catalog, so a handle held
    /// across `DROP TABLE` + re-`CREATE` binds with fresh expectations.
    version: u64,
    /// Memo of the latest post-DDL re-inference `(catalog version, slots)`,
    /// shared across clones: one DDL event costs one re-inference, not one
    /// per subsequent execution for the life of the handle.
    revalidated: Arc<Mutex<RevalidatedSlots>>,
}

/// The latest `(catalog version, re-inferred slots)` pair of a
/// [`Prepared`] handle (empty until the first post-DDL execution).
type RevalidatedSlots = Option<(u64, Arc<Vec<SlotInfo>>)>;

impl Prepared {
    pub(crate) fn new(
        db: Database,
        text: String,
        select: Arc<Select>,
        slots: Arc<Vec<SlotInfo>>,
        plan: Option<(Arc<Plan>, u64)>,
        warnings: Arc<Vec<crosse_lint::Diagnostic>>,
        version: u64,
    ) -> Self {
        Prepared {
            db,
            select,
            slots,
            plan,
            text,
            warnings,
            version,
            revalidated: Arc::new(Mutex::new_labeled("prepared.revalidated", None)),
        }
    }

    /// The parameter slots, in binding order.
    pub fn param_slots(&self) -> &[SlotInfo] {
        &self.slots
    }

    /// Lint diagnostics found at prepare time (empty for a clean
    /// statement). Parameters never warn here — binding them is the whole
    /// point of preparing.
    pub fn warnings(&self) -> &[crosse_lint::Diagnostic] {
        &self.warnings
    }

    /// Normalized statement text (also the cache key).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The parsed (parameterised) SELECT.
    pub fn select(&self) -> &Select {
        &self.select
    }

    /// Slot types valid for the *current* catalog: the prepare-time
    /// inference while no DDL has happened, else a re-inference memoised
    /// per catalog version (one DDL event costs one AST walk, not one per
    /// execution).
    fn current_slots(&self) -> Arc<Vec<SlotInfo>> {
        let version = self.db.catalog().version();
        if version == self.version {
            return Arc::clone(&self.slots);
        }
        let mut memo = self.revalidated.lock();
        match memo.as_ref() {
            Some((v, cached)) if *v == version => Arc::clone(cached),
            _ => {
                let raw = crate::sql::parser::collect_params(&self.select);
                let fresh =
                    Arc::new(infer_slot_types(self.db.catalog(), &self.select, &raw));
                *memo = Some((version, Arc::clone(&fresh)));
                fresh
            }
        }
    }

    /// Bind `params` into a parameter-free SELECT. Binds against the
    /// live catalog's slot types (same re-validation as [`Prepared::execute`]).
    pub fn bind(&self, params: &Params) -> Result<Select> {
        let values = resolve_params(&self.current_slots(), params)?;
        Ok(substitute_select((*self.select).clone(), &values))
    }

    /// Execute with bound parameters, returning a streaming cursor.
    ///
    /// Parameterless statements reuse the cached plan template (no parse,
    /// no plan); parameterised ones substitute literals and re-plan, so
    /// value-dependent access paths (index eq/range scans) are chosen per
    /// binding. Execution inherits the database's worker-thread budget
    /// (see `Database::set_exec_threads`).
    pub fn execute(&self, params: &Params) -> Result<Rows> {
        let threads = self.db.exec_threads();
        if self.slots.is_empty() {
            if let Some((plan, version)) = &self.plan {
                if *version == self.db.catalog().version() {
                    return Rows::from_plan_parallel((**plan).clone(), threads);
                }
            }
            // DDL since planning (or no template): re-plan against the
            // live catalog.
            let plan = self.db.plan_optimized(&self.select)?.plan;
            return Rows::from_plan_parallel(plan, threads);
        }
        // DDL since preparation: the parse stays valid, but slot types must
        // be re-derived so bindings coerce against the live column types
        // (never the stale inference, which could reject or mis-coerce).
        // `bind` routes through the same per-version memoised re-inference.
        let bound = self.bind(params)?;
        let plan = self.db.plan_optimized(&bound)?.plan;
        Rows::from_plan_parallel(plan, threads)
    }

    /// Render the optimized execution plan of this statement — the
    /// `EXPLAIN` tree plus one annotation line per rewrite pass that
    /// fired. Parameterless statements only; a parameterised statement's
    /// plan depends on its bound values, so use
    /// [`Prepared::explain_with`].
    pub fn explain(&self) -> Result<String> {
        if !self.slots.is_empty() {
            return Err(Error::plan(
                "statement has parameters — use explain_with(params) so \
                 value-dependent access paths can be chosen",
            ));
        }
        let optimized = self.db.plan_optimized(&self.select)?;
        Ok(optimized.render())
    }

    /// [`Prepared::explain`] with parameters bound — shows the plan the
    /// next [`Prepared::execute`] with these values would run.
    pub fn explain_with(&self, params: &Params) -> Result<String> {
        let bound = self.bind(params)?;
        let optimized = self.db.plan_optimized(&bound)?;
        Ok(optimized.render())
    }

    /// Execute and materialise (the `collect()` adapter over
    /// [`Prepared::execute`]).
    pub fn query(&self, params: &Params) -> Result<RowSet> {
        self.execute(params)?.collect_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE landfill (name TEXT, city TEXT, tons FLOAT);
             INSERT INTO landfill VALUES
               ('Basse di Stura', 'Torino', 1200.0),
               ('Barricalla', 'Collegno', 800.5),
               ('Gerbido', 'Torino', 450.0);",
        )
        .unwrap();
        db
    }

    #[test]
    fn normalization_folds_case_and_whitespace() {
        let a = normalize_sql("SELECT  name FROM landfill\n WHERE city = 'Torino'").unwrap();
        let b = normalize_sql("select name from LANDFILL where CITY='Torino'").unwrap();
        assert_eq!(a, b);
        // Literal contents are significant.
        let c = normalize_sql("SELECT name FROM landfill WHERE city = 'torino'").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn normalization_does_not_conflate_adjacent_strings() {
        let a = normalize_sql("SELECT 'a' 'b'").unwrap();
        let b = normalize_sql("SELECT 'a'' ''b'").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn named_param_round_trip() {
        let d = db();
        let p = d.prepare("SELECT name FROM landfill WHERE city = $city ORDER BY name").unwrap();
        assert_eq!(p.param_slots().len(), 1);
        assert_eq!(p.param_slots()[0].name.as_deref(), Some("city"));
        let rs = p.query(&Params::new().set("city", "Torino")).unwrap();
        assert_eq!(rs.len(), 2);
        let rs = p.query(&Params::new().set("city", "Collegno")).unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn positional_params_bind_in_order() {
        let d = db();
        let p = d
            .prepare("SELECT name FROM landfill WHERE city = ? AND tons > ?")
            .unwrap();
        assert_eq!(p.param_slots().len(), 2);
        let rs = p.query(&Params::new().push("Torino").push(500)).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("Basse di Stura"));
    }

    #[test]
    fn repeated_named_param_is_one_slot() {
        let d = db();
        let p = d
            .prepare("SELECT name FROM landfill WHERE city = $c OR name = $c")
            .unwrap();
        assert_eq!(p.param_slots().len(), 1);
        let rs = p.query(&Params::new().set("c", "Gerbido")).unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn missing_binding_is_an_error() {
        let d = db();
        let p = d.prepare("SELECT name FROM landfill WHERE city = $city").unwrap();
        let err = p.query(&Params::new()).unwrap_err();
        assert!(err.to_string().contains("$city"), "{err}");
        let p = d.prepare("SELECT name FROM landfill WHERE city = ?").unwrap();
        let err = p.query(&Params::new()).unwrap_err();
        assert!(err.to_string().contains("positional"), "{err}");
    }

    #[test]
    fn excess_positional_values_rejected() {
        let d = db();
        let p = d.prepare("SELECT name FROM landfill WHERE city = ?").unwrap();
        let err = p.query(&Params::new().push("Torino").push("extra")).unwrap_err();
        assert!(err.to_string().contains("positional"), "{err}");
    }

    #[test]
    fn slot_types_are_inferred_and_enforced() {
        let d = db();
        let p = d.prepare("SELECT name FROM landfill WHERE tons > $min").unwrap();
        assert_eq!(p.param_slots()[0].expected, Some(DataType::Float));
        let err = p.query(&Params::new().set("min", "not a number")).unwrap_err();
        assert!(err.to_string().contains("expects FLOAT"), "{err}");
        // Int widens into the FLOAT slot.
        let rs = p.query(&Params::new().set("min", 500)).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn executing_unprepared_param_text_fails_clearly() {
        let d = db();
        let err = d.query("SELECT name FROM landfill WHERE city = $c").unwrap_err();
        assert!(err.to_string().contains("unbound parameter"), "{err}");
    }

    #[test]
    fn prepare_equals_textual_substitution() {
        let d = db();
        let p = d
            .prepare("SELECT name FROM landfill WHERE city = $c AND tons >= $t ORDER BY name")
            .unwrap();
        let prepared = p
            .query(&Params::new().set("c", "Torino").set("t", 450))
            .unwrap();
        let textual = d
            .query("SELECT name FROM landfill WHERE city = 'Torino' AND tons >= 450 ORDER BY name")
            .unwrap();
        assert_eq!(prepared.rows, textual.rows);
    }

    #[test]
    fn params_in_subqueries_bind() {
        let d = db();
        d.execute_script(
            "CREATE TABLE elem (name TEXT, landfill TEXT);
             INSERT INTO elem VALUES ('Hg', 'Gerbido'), ('Pb', 'Barricalla');",
        )
        .unwrap();
        let p = d
            .prepare(
                "SELECT name FROM landfill WHERE name IN \
                 (SELECT landfill FROM elem WHERE name = $e)",
            )
            .unwrap();
        let rs = p.query(&Params::new().set("e", "Hg")).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("Gerbido"));
    }

    #[test]
    fn cache_hits_and_ddl_invalidation() {
        let d = db();
        let q = "SELECT name FROM landfill ORDER BY name";
        let p1 = d.prepare(q).unwrap();
        let _p2 = d.prepare("select name from landfill order by name").unwrap();
        let stats = d.prepare_cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(p1.query(&Params::new()).unwrap().len(), 3);
        // DDL invalidates the cached template (re-planned transparently).
        d.execute("CREATE INDEX idx_name ON landfill (name)").unwrap();
        assert_eq!(p1.query(&Params::new()).unwrap().len(), 3);
    }

    #[test]
    fn ddl_refreshes_cached_slot_types() {
        let d = db();
        // Parameterised statements defer planning to execute: preparing
        // against a missing table succeeds with untyped slots and fails
        // cleanly at execution.
        let p = d.prepare("SELECT * FROM scores WHERE v > $p").unwrap();
        assert_eq!(p.param_slots()[0].expected, None);
        assert!(p.query(&Params::new().set("p", 1)).is_err());
        d.execute("CREATE TABLE scores (v FLOAT)").unwrap();
        d.execute("INSERT INTO scores VALUES (1.5)").unwrap();
        let p = d.prepare("SELECT * FROM scores WHERE v > $p").unwrap();
        assert_eq!(p.param_slots()[0].expected, Some(DataType::Float));
        // Re-type the column: a fresh prepare of the same text must see
        // TEXT slots, not the cached FLOAT inference.
        d.execute("DROP TABLE scores").unwrap();
        d.execute("CREATE TABLE scores (v TEXT)").unwrap();
        d.execute("INSERT INTO scores VALUES ('b')").unwrap();
        let p = d.prepare("SELECT * FROM scores WHERE v > $p").unwrap();
        assert_eq!(p.param_slots()[0].expected, Some(DataType::Text));
        let rs = p.query(&Params::new().set("p", "a")).unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn plan_cache_is_bounded() {
        let d = db();
        d.set_plan_cache_capacity(4);
        for i in 0..20 {
            d.prepare(&format!("SELECT name FROM landfill LIMIT {i}")).unwrap();
        }
        let stats = d.prepare_cache_stats();
        assert!(stats.evictions >= 16, "{stats:?}");
    }

    #[test]
    fn non_select_cannot_be_prepared() {
        let d = db();
        assert!(d.prepare("DELETE FROM landfill").is_err());
    }

    #[test]
    fn null_binds_without_type_error() {
        let d = db();
        let p = d.prepare("SELECT name FROM landfill WHERE tons > $t").unwrap();
        let rs = p.query(&Params::new().set("t", Value::Null)).unwrap();
        assert!(rs.is_empty(), "NULL comparison keeps nothing");
    }
}
