//! Error types for the relational engine.

use std::fmt;

/// Errors produced by the relational engine.
///
/// Every layer (lexer, parser, planner, executor, catalog) reports through
/// this single enum so callers can match on the failure class without
/// depending on internal module structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexical error: unexpected character, unterminated string, ...
    Lex { message: String, position: usize },
    /// Syntax error produced by the SQL parser.
    Parse { message: String, position: usize },
    /// Semantic / binding error (unknown table, ambiguous column, ...).
    Plan(String),
    /// Catalog error (duplicate table, missing table, schema mismatch).
    Catalog(String),
    /// Runtime evaluation error (type mismatch, division by zero, ...).
    Eval(String),
    /// Constraint violation (arity mismatch on INSERT, type mismatch).
    Constraint(String),
    /// Durability / storage error (WAL append failure, corrupt log or
    /// snapshot on recovery, I/O). Carries a rendered message so the enum
    /// stays `Clone + Eq`; match on the variant, not the text.
    Storage(String),
    /// An optimizer pass broke a plan invariant (caught by the
    /// `debug_assertions`-gated validator, see [`crate::opt::validate`]).
    /// Always an engine bug, never a user error.
    Invariant(crate::opt::validate::PlanInvariantError),
    /// The query was stopped cooperatively: cancelled via
    /// [`crosse_exec::CancelToken`] or past its deadline. Never a user
    /// error in the query text; the serving layer maps this to its typed
    /// `CANCELLED` / `DEADLINE_EXCEEDED` responses.
    Interrupted(crosse_exec::Interrupt),
}

impl Error {
    pub fn lex(message: impl Into<String>, position: usize) -> Self {
        Error::Lex { message: message.into(), position }
    }
    pub fn parse(message: impl Into<String>, position: usize) -> Self {
        Error::Parse { message: message.into(), position }
    }
    pub fn plan(message: impl Into<String>) -> Self {
        Error::Plan(message.into())
    }
    pub fn catalog(message: impl Into<String>) -> Self {
        Error::Catalog(message.into())
    }
    pub fn eval(message: impl Into<String>) -> Self {
        Error::Eval(message.into())
    }
    pub fn constraint(message: impl Into<String>) -> Self {
        Error::Constraint(message.into())
    }
    pub fn storage(message: impl Into<String>) -> Self {
        Error::Storage(message.into())
    }
}

impl From<crosse_wal::WalError> for Error {
    fn from(e: crosse_wal::WalError) -> Self {
        Error::Storage(e.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { message, position } => {
                write!(f, "lexical error at byte {position}: {message}")
            }
            Error::Parse { message, position } => {
                write!(f, "syntax error at byte {position}: {message}")
            }
            Error::Plan(m) => write!(f, "planning error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Constraint(m) => write!(f, "constraint violation: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Invariant(e) => write!(f, "{e}"),
            Error::Interrupted(i) => write!(f, "{i}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<crate::opt::validate::PlanInvariantError> for Error {
    fn from(e: crate::opt::validate::PlanInvariantError) -> Self {
        Error::Invariant(e)
    }
}

impl From<crosse_exec::Interrupt> for Error {
    fn from(i: crosse_exec::Interrupt) -> Self {
        Error::Interrupted(i)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = Error::parse("expected FROM", 17);
        assert_eq!(e.to_string(), "syntax error at byte 17: expected FROM");
    }

    #[test]
    fn display_variants() {
        assert!(Error::catalog("dup").to_string().contains("catalog"));
        assert!(Error::eval("bad").to_string().contains("evaluation"));
        assert!(Error::plan("x").to_string().contains("planning"));
        assert!(Error::constraint("x").to_string().contains("constraint"));
        assert!(Error::lex("x", 0).to_string().contains("lexical"));
        assert!(Error::storage("x").to_string().contains("storage"));
        assert!(Error::Interrupted(crosse_exec::Interrupt::Cancelled)
            .to_string()
            .contains("cancelled"));
        assert!(Error::Interrupted(crosse_exec::Interrupt::DeadlineExceeded)
            .to_string()
            .contains("deadline"));
    }

    #[test]
    fn wal_errors_convert_to_storage() {
        let e: Error = crosse_wal::WalError::BadRecord("short".into()).into();
        assert!(matches!(e, Error::Storage(_)));
        assert!(e.to_string().contains("short"));
    }
}
