//! # crosse-relational
//!
//! An in-memory relational engine with a SQL subset, standing in for the
//! PostgreSQL "main platform" of the CroSSE architecture (*Contextually-
//! Enriched Querying of Integrated Data Sources*, ICDE 2018, Fig. 1).
//!
//! The engine provides everything SESQL needs from its relational
//! substrate:
//!
//! * a catalog of heap tables with optional secondary indexes
//!   ([`storage::Catalog`], [`storage::Index`]),
//! * DDL/DML plus `SELECT` with joins (hash + nested-loop), aggregates,
//!   `DISTINCT`, `ORDER BY`, `LIMIT`, `CASE`, uncorrelated subqueries
//!   (`IN (SELECT …)`, `EXISTS`, scalar), and index-scan planning for
//!   sargable predicates ([`db::Database`]),
//! * a reusable SQL parser ([`sql::parser`]) whose AST the SESQL layer
//!   rewrites when applying WHERE-clause enrichments, and
//! * result materialisation back into tables ([`db::Database::materialise`]),
//!   which implements the paper's "temporary support database" (Fig. 6).
//!
//! ```
//! use crosse_relational::db::Database;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE landfill (name TEXT, city TEXT)").unwrap();
//! db.execute("INSERT INTO landfill VALUES ('Basse di Stura', 'Torino')").unwrap();
//! let rows = db.query("SELECT name FROM landfill WHERE city = 'Torino'").unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod csv;
pub mod db;
pub mod error;
pub mod exec;
pub mod lint;
pub mod opt;
pub mod plan;
pub mod prepared;
pub mod schema;
pub mod sql;
pub mod storage;
pub mod value;

pub use db::{Database, ExecOutcome, LockSiteStats, RowSet};
pub use error::{Error, Result};
pub use storage::durable::{DurabilityHandle, SyncPolicy, WalOptions, WalStats};
pub use crosse_lint::{Diagnostic, Severity, Span};
pub use exec::Rows;
pub use opt::{optimize, Optimized, OptimizerConfig, PlanInvariantError};
pub use prepared::{Params, Prepared, SlotInfo};
pub use schema::{Column, Schema};
pub use value::{DataType, Interner, Row, Str, Value};
