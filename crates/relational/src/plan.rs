// srclint: allow(R002): FROM lists are non-empty by grammar and the greedy pick indexes the deque it was computed from
//! Logical plans and the query planner.
//!
//! The planner lowers a parsed [`Select`] into a tree of [`Plan`] nodes with
//! all expressions bound (column references resolved to row indexes). Joins
//! whose ON condition is a conjunction of cross-side equalities are lowered
//! to hash joins; everything else falls back to nested loops.

use std::ops::Bound;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::exec::aggregate::AggFn;
use crate::exec::expr::{bind, BoundExpr, ScalarFn};
use crate::schema::{Column, Schema};
use crate::sql::ast::{
    is_aggregate_name, BinaryOp, Expr, JoinKind, OrderItem, Select, SelectItem, TableRef,
};
use crate::storage::{Catalog, Table};
use crate::value::{DataType, Value};

/// A bound, executable logical plan.
///
/// `Clone` exists so a cached prepared statement can hand a fresh copy of
/// its plan template to the consuming streaming executor on every execute.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Literal rows (used for `SELECT` without `FROM`).
    Values { schema: Schema, rows: Vec<Vec<Value>> },
    Scan {
        table: Arc<Table>,
        schema: Schema,
    },
    /// Scan driven by a secondary index: only rows whose indexed column
    /// satisfies `lookup` are produced. Falls back to a filtered full scan
    /// at execution time if the index was dropped after planning.
    IndexScan {
        table: Arc<Table>,
        schema: Schema,
        /// Indexed column position (identical in table and scan schemas).
        column: usize,
        lookup: IndexLookup,
    },
    Filter {
        input: Box<Plan>,
        predicate: BoundExpr,
    },
    Project {
        input: Box<Plan>,
        exprs: Vec<BoundExpr>,
        schema: Schema,
    },
    NestedLoopJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        kind: JoinKind,
        predicate: Option<BoundExpr>,
        schema: Schema,
    },
    HashJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        kind: JoinKind,
        left_keys: Vec<BoundExpr>,
        right_keys: Vec<BoundExpr>,
        /// Extra non-equi conjuncts, evaluated on the combined row
        /// (inner joins only).
        residual: Option<BoundExpr>,
        schema: Schema,
    },
    Aggregate {
        input: Box<Plan>,
        group: Vec<BoundExpr>,
        aggs: Vec<AggSpec>,
        schema: Schema,
    },
    Sort {
        input: Box<Plan>,
        keys: Vec<SortKey>,
    },
    Distinct {
        input: Box<Plan>,
    },
    Limit {
        input: Box<Plan>,
        limit: Option<u64>,
        offset: u64,
    },
    /// Compound SELECT: concatenate member results; `all = false` removes
    /// duplicate rows across the whole compound.
    Union {
        inputs: Vec<Plan>,
        all: bool,
        schema: Schema,
    },
    /// A subtree referenced from more than one place in the plan, produced
    /// by the optimizer's common-subplan elimination (see [`crate::opt`]).
    /// All occurrences with the same `id` read one spool: the subtree is
    /// evaluated once per execution (against one pinned snapshot) and its
    /// rows are replayed to every consumer.
    Shared {
        /// Spool identity within one optimized plan.
        id: usize,
        input: Arc<Plan>,
    },
}

/// What an [`Plan::IndexScan`] asks of the index.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexLookup {
    /// Column equals any of these keys (`col = v`, `col IN (v, ...)`).
    /// Keys are already coerced to the column type; NULLs never match.
    Eq(Vec<Value>),
    /// Column within a (total-order) range — `>`, `>=`, `<`, `<=`,
    /// `BETWEEN`.
    Range { low: Bound<Value>, high: Bound<Value> },
}

impl IndexLookup {
    /// Decide `lookup` against a concrete column value — used by the
    /// executor's no-index fallback so semantics stay identical.
    pub fn matches(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        match self {
            IndexLookup::Eq(keys) => keys
                .iter()
                .any(|k| !k.is_null() && v.total_cmp(k) == std::cmp::Ordering::Equal),
            IndexLookup::Range { low, high } => {
                let lo_ok = match low {
                    Bound::Included(b) => v.total_cmp(b) != std::cmp::Ordering::Less,
                    Bound::Excluded(b) => v.total_cmp(b) == std::cmp::Ordering::Greater,
                    Bound::Unbounded => true,
                };
                let hi_ok = match high {
                    Bound::Included(b) => v.total_cmp(b) != std::cmp::Ordering::Greater,
                    Bound::Excluded(b) => v.total_cmp(b) == std::cmp::Ordering::Less,
                    Bound::Unbounded => true,
                };
                lo_ok && hi_ok
            }
        }
    }
}

/// One aggregate computation inside an [`Plan::Aggregate`].
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: AggFn,
    pub distinct: bool,
    /// Input expression; `None` for `COUNT(*)`.
    pub arg: Option<BoundExpr>,
}

/// One ORDER BY key.
#[derive(Debug, Clone)]
pub struct SortKey {
    pub expr: BoundExpr,
    pub ascending: bool,
}

impl Plan {
    /// Render the plan tree as an indented `EXPLAIN`-style listing.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out, &mut Vec::new());
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String, seen_spools: &mut Vec<usize>) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            Plan::Values { rows, .. } => {
                let _ = writeln!(out, "{pad}Values: {} row(s)", rows.len());
            }
            Plan::Scan { table, .. } => {
                let _ = writeln!(out, "{pad}SeqScan: {} ({} rows)", table.name, table.row_count());
            }
            Plan::IndexScan { table, schema, column, lookup } => {
                let col_name = &schema.columns[*column].name;
                let what = match lookup {
                    IndexLookup::Eq(keys) => format!("eq, {} key(s)", keys.len()),
                    IndexLookup::Range { .. } => "range".to_string(),
                };
                let _ = writeln!(
                    out,
                    "{pad}IndexScan: {}.{col_name} ({what})",
                    table.name
                );
            }
            Plan::Filter { input, .. } => {
                let _ = writeln!(out, "{pad}Filter");
                input.explain_into(depth + 1, out, seen_spools);
            }
            Plan::Project { input, exprs, .. } => {
                let _ = writeln!(out, "{pad}Project: {} column(s)", exprs.len());
                input.explain_into(depth + 1, out, seen_spools);
            }
            Plan::NestedLoopJoin { left, right, kind, predicate, .. } => {
                let _ = writeln!(
                    out,
                    "{pad}NestedLoopJoin ({kind:?}{})",
                    if predicate.is_some() { ", predicated" } else { "" }
                );
                left.explain_into(depth + 1, out, seen_spools);
                right.explain_into(depth + 1, out, seen_spools);
            }
            Plan::HashJoin { left, right, kind, left_keys, residual, .. } => {
                let _ = writeln!(
                    out,
                    "{pad}HashJoin ({kind:?}, {} key(s){})",
                    left_keys.len(),
                    if residual.is_some() { ", residual" } else { "" }
                );
                left.explain_into(depth + 1, out, seen_spools);
                right.explain_into(depth + 1, out, seen_spools);
            }
            Plan::Aggregate { input, group, aggs, .. } => {
                let _ = writeln!(
                    out,
                    "{pad}Aggregate: {} group key(s), {} aggregate(s)",
                    group.len(),
                    aggs.len()
                );
                input.explain_into(depth + 1, out, seen_spools);
            }
            Plan::Sort { input, keys } => {
                let _ = writeln!(out, "{pad}Sort: {} key(s)", keys.len());
                input.explain_into(depth + 1, out, seen_spools);
            }
            Plan::Distinct { input } => {
                let _ = writeln!(out, "{pad}Distinct");
                input.explain_into(depth + 1, out, seen_spools);
            }
            Plan::Limit { input, limit, offset } => {
                let _ = writeln!(out, "{pad}Limit: limit={limit:?} offset={offset}");
                input.explain_into(depth + 1, out, seen_spools);
            }
            Plan::Union { inputs, all, .. } => {
                let _ = writeln!(
                    out,
                    "{pad}Union{}: {} inputs",
                    if *all { "All" } else { "" },
                    inputs.len()
                );
                for i in inputs {
                    i.explain_into(depth + 1, out, seen_spools);
                }
            }
            Plan::Shared { id, input } => {
                if seen_spools.contains(id) {
                    let _ = writeln!(out, "{pad}Shared spool #{id} (reused)");
                } else {
                    seen_spools.push(*id);
                    let _ = writeln!(out, "{pad}Shared spool #{id}");
                    input.explain_into(depth + 1, out, seen_spools);
                }
            }
        }
    }

    pub fn schema(&self) -> &Schema {
        match self {
            Plan::Values { schema, .. } => schema,
            Plan::Scan { schema, .. } => schema,
            Plan::IndexScan { schema, .. } => schema,
            Plan::Filter { input, .. } => input.schema(),
            Plan::Project { schema, .. } => schema,
            Plan::NestedLoopJoin { schema, .. } => schema,
            Plan::HashJoin { schema, .. } => schema,
            Plan::Aggregate { schema, .. } => schema,
            Plan::Sort { input, .. } => input.schema(),
            Plan::Distinct { input } => input.schema(),
            Plan::Limit { input, .. } => input.schema(),
            Plan::Union { schema, .. } => schema,
            Plan::Shared { input, .. } => input.schema(),
        }
    }
}

/// Infer a (best-effort) output type for an expression. Used to type
/// result-set columns, e.g. when the SESQL layer materialises results into
/// the temporary support database.
pub fn infer_type(expr: &Expr, schema: &Schema) -> DataType {
    match expr {
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Text),
        Expr::Column { qualifier, name } => schema
            .resolve(qualifier.as_deref(), name)
            .map(|i| schema.columns[i].data_type)
            .unwrap_or(DataType::Text),
        Expr::Unary { op, expr } => match op {
            crate::sql::ast::UnaryOp::Not => DataType::Bool,
            crate::sql::ast::UnaryOp::Neg => infer_type(expr, schema),
        },
        Expr::Binary { left, op, right } => match op {
            BinaryOp::And | BinaryOp::Or => DataType::Bool,
            op if op.is_comparison() => DataType::Bool,
            BinaryOp::Concat => DataType::Text,
            _ => {
                let (l, r) = (infer_type(left, schema), infer_type(right, schema));
                if l == DataType::Int && r == DataType::Int {
                    DataType::Int
                } else {
                    DataType::Float
                }
            }
        },
        Expr::IsNull { .. } | Expr::InList { .. } | Expr::Between { .. } | Expr::Like { .. } => {
            DataType::Bool
        }
        // An unbound parameter's type is unknown until execute time.
        Expr::Param { .. } => DataType::Text,
        Expr::InSubquery { .. } | Expr::Exists { .. } => DataType::Bool,
        // Scalar subqueries are materialised to literals before type
        // inference runs; this arm only covers unresolved contexts.
        Expr::ScalarSubquery(_) => DataType::Text,
        Expr::Case { branches, else_expr, .. } => branches
            .iter()
            .map(|(_, t)| infer_type(t, schema))
            .chain(else_expr.iter().map(|e| infer_type(e, schema)))
            .reduce(|a, b| {
                if a == b {
                    a
                } else if matches!(
                    (a, b),
                    (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int)
                ) {
                    DataType::Float
                } else {
                    DataType::Text
                }
            })
            .unwrap_or(DataType::Text),
        Expr::Function { name, args, star, .. } => {
            if *star {
                return DataType::Int;
            }
            if is_aggregate_name(name) {
                return match name.to_ascii_uppercase().as_str() {
                    "COUNT" => DataType::Int,
                    "AVG" => DataType::Float,
                    _ => args
                        .first()
                        .map(|a| infer_type(a, schema))
                        .unwrap_or(DataType::Float),
                };
            }
            match ScalarFn::parse(name) {
                Some(ScalarFn::Length) => DataType::Int,
                Some(ScalarFn::Upper | ScalarFn::Lower | ScalarFn::Trim | ScalarFn::Substr) => {
                    DataType::Text
                }
                Some(ScalarFn::Abs | ScalarFn::Round | ScalarFn::Coalesce) => args
                    .first()
                    .map(|a| infer_type(a, schema))
                    .unwrap_or(DataType::Float),
                None => DataType::Text,
            }
        }
    }
}

/// Plan a SELECT statement against a catalog.
pub fn plan_select(catalog: &Catalog, select: &Select) -> Result<Plan> {
    Planner { catalog }.select(select)
}

/// Materialise every (uncorrelated) subquery inside `e` into literal form —
/// the same pass SELECT planning applies to its WHERE clause, exposed so
/// DELETE/UPDATE filters accept subqueries too.
pub fn resolve_expr_subqueries(catalog: &Catalog, e: Expr) -> Result<Expr> {
    Planner { catalog }.resolve_subqueries(e)
}

struct Planner<'a> {
    catalog: &'a Catalog,
}

impl<'a> Planner<'a> {
    fn select(&self, select: &Select) -> Result<Plan> {
        if !select.union.is_empty() {
            return self.compound_select(select);
        }
        self.select_core(select)
    }

    /// Plan a UNION chain: each core planned independently, arity checked,
    /// concatenated; `ORDER BY` (by output name/position) and LIMIT apply
    /// to the compound result.
    fn compound_select(&self, select: &Select) -> Result<Plan> {
        let mut head = select.clone();
        head.union = Vec::new();
        head.order_by = Vec::new();
        head.limit = None;
        head.offset = None;
        let mut inputs = vec![self.select_core(&head)?];
        let mut all_flags = Vec::new();
        for (all, member) in &select.union {
            if !member.union.is_empty() {
                return Err(Error::plan("nested compound selects are not supported"));
            }
            let p = self.select_core(member)?;
            if p.schema().len() != inputs[0].schema().len() {
                return Err(Error::plan(format!(
                    "UNION members have different column counts ({} vs {})",
                    inputs[0].schema().len(),
                    p.schema().len()
                )));
            }
            all_flags.push(*all);
            inputs.push(p);
        }
        // `UNION` anywhere in the chain deduplicates the whole result
        // (matching SQL's left-associative semantics for uniform chains;
        // mixed chains apply the strictest member).
        let all = all_flags.iter().all(|&a| a);
        let schema = inputs[0].schema().clone();
        let mut plan = Plan::Union { inputs, all, schema };

        if !select.order_by.is_empty() {
            let out_schema = plan.schema().clone();
            let mut keys = Vec::new();
            for item in &select.order_by {
                if let Expr::Literal(Value::Int(n)) = &item.expr {
                    let idx = *n - 1;
                    if idx < 0 || idx as usize >= out_schema.len() {
                        return Err(Error::plan(format!(
                            "ORDER BY position {n} is out of range"
                        )));
                    }
                    keys.push(SortKey {
                        expr: BoundExpr::Column(idx as usize),
                        ascending: item.ascending,
                    });
                    continue;
                }
                if let Expr::Column { qualifier: None, name } = &item.expr {
                    if let Some(idx) = out_schema.index_of_output(name) {
                        keys.push(SortKey {
                            expr: BoundExpr::Column(idx),
                            ascending: item.ascending,
                        });
                        continue;
                    }
                }
                keys.push(SortKey {
                    expr: bind(&item.expr, &out_schema)?,
                    ascending: item.ascending,
                });
            }
            plan = Plan::Sort { input: Box::new(plan), keys };
        }
        if select.limit.is_some() || select.offset.is_some() {
            plan = Plan::Limit {
                input: Box::new(plan),
                limit: select.limit,
                offset: select.offset.unwrap_or(0),
            };
        }
        Ok(plan)
    }

    /// Execute one uncorrelated subquery and return its rows.
    fn subquery_rows(&self, query: &Select) -> Result<(Schema, Vec<Vec<Value>>)> {
        let plan = self.select(query)?;
        let rows = crate::exec::execute_plan(&plan)?;
        Ok((plan.schema().clone(), rows))
    }

    /// Materialise every subquery in `e` into literal form:
    /// `IN (SELECT ...)` → literal IN-list (preserving NULL semantics and
    /// making the predicate sargable), `EXISTS` → boolean literal, scalar
    /// subquery → its single value (NULL when empty).
    fn resolve_subqueries(&self, e: Expr) -> Result<Expr> {
        let mut err: Option<Error> = None;
        let out = e.rewrite(&mut |node| {
            if err.is_some() {
                return node;
            }
            match node {
                Expr::InSubquery { expr, query, negated } => {
                    match self.subquery_rows(&query) {
                        Ok((schema, rows)) => {
                            if schema.len() != 1 {
                                err = Some(Error::plan(format!(
                                    "IN subquery must return exactly one column, got {}",
                                    schema.len()
                                )));
                                return Expr::Literal(Value::Null);
                            }
                            Expr::InList {
                                expr,
                                list: rows
                                    .into_iter()
                                    .map(|mut r| Expr::Literal(r.swap_remove(0)))
                                    .collect(),
                                negated,
                            }
                        }
                        Err(e) => {
                            err = Some(e);
                            Expr::Literal(Value::Null)
                        }
                    }
                }
                Expr::Exists { query, negated } => match self.subquery_rows(&query) {
                    Ok((_, rows)) => {
                        // EXISTS is true on non-empty; NOT EXISTS flips it.
                        Expr::Literal(Value::Bool(rows.is_empty() == negated))
                    }
                    Err(e) => {
                        err = Some(e);
                        Expr::Literal(Value::Null)
                    }
                },
                Expr::ScalarSubquery(query) => match self.subquery_rows(&query) {
                    Ok((schema, mut rows)) => {
                        if schema.len() != 1 {
                            err = Some(Error::plan(format!(
                                "scalar subquery must return exactly one column, got {}",
                                schema.len()
                            )));
                            return Expr::Literal(Value::Null);
                        }
                        match rows.len() {
                            0 => Expr::Literal(Value::Null),
                            1 => Expr::Literal(rows.swap_remove(0).swap_remove(0)),
                            n => {
                                err = Some(Error::plan(format!(
                                    "scalar subquery returned {n} rows"
                                )));
                                Expr::Literal(Value::Null)
                            }
                        }
                    }
                    Err(e) => {
                        err = Some(e);
                        Expr::Literal(Value::Null)
                    }
                },
                other => other,
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Apply subquery resolution to every expression position of a SELECT
    /// core (WHERE, projections, GROUP BY, HAVING, ORDER BY).
    fn resolve_select(&self, select: &Select) -> Result<Select> {
        let mut s = select.clone();
        if let Some(f) = s.filter.take() {
            s.filter = Some(self.resolve_subqueries(f)?);
        }
        for item in &mut s.projections {
            if let SelectItem::Expr { expr, .. } = item {
                *expr = self.resolve_subqueries(std::mem::replace(
                    expr,
                    Expr::Literal(Value::Null),
                ))?;
            }
        }
        for g in &mut s.group_by {
            *g = self.resolve_subqueries(std::mem::replace(
                g,
                Expr::Literal(Value::Null),
            ))?;
        }
        if let Some(h) = s.having.take() {
            s.having = Some(self.resolve_subqueries(h)?);
        }
        for o in &mut s.order_by {
            o.expr = self.resolve_subqueries(std::mem::replace(
                &mut o.expr,
                Expr::Literal(Value::Null),
            ))?;
        }
        Ok(s)
    }

    fn select_core(&self, select: &Select) -> Result<Plan> {
        let select = &self.resolve_select(select)?;
        // FROM + WHERE with predicate pushdown: single-table conjuncts
        // filter their table before any join; cross-table conjuncts become
        // join conditions (hash-joinable when they contain equalities);
        // whatever remains is a residual filter on top.
        let mut conjuncts: Vec<Expr> = Vec::new();
        if let Some(filter) = &select.filter {
            let mut parts = Vec::new();
            split_conjuncts(filter, &mut parts);
            conjuncts = parts.into_iter().cloned().collect();
        }
        let mut used = vec![false; conjuncts.len()];

        let push_single =
            |mut plan: Plan, conjuncts: &[Expr], used: &mut [bool]| -> Result<Plan> {
                for (i, c) in conjuncts.iter().enumerate() {
                    if !used[i] && bind(c, plan.schema()).is_ok() {
                        used[i] = true;
                        plan = push_conjunct(plan, c)?;
                    }
                }
                Ok(plan)
            };

        // Schema in *declared* FROM order, kept for wildcard expansion:
        // the greedy join ordering below may join items in a different
        // order, but `SELECT *` output must follow the SQL text.
        let mut declared_schema: Option<Schema> = None;
        let mut plan = if select.from.is_empty() {
            Plan::Values { schema: Schema::default(), rows: vec![vec![]] }
        } else {
            let item_plans: Vec<Plan> = select
                .from
                .iter()
                .map(|tr| self.table_ref(tr))
                .collect::<Result<_>>()?;
            let full = item_plans
                .iter()
                .skip(1)
                .fold(item_plans[0].schema().clone(), |s, p| s.join(p.schema()));
            // Validate the original WHERE against the full FROM schema
            // before any pushdown, so ambiguous references error exactly as
            // they would without the optimisation.
            if let Some(filter) = &select.filter {
                bind(filter, &full)?;
            }
            declared_schema = Some(full);
            let mut remaining: std::collections::VecDeque<Plan> = item_plans.into();
            let mut acc = remaining.pop_front().expect("non-empty");
            acc = push_single(acc, &conjuncts, &mut used)?;
            while !remaining.is_empty() {
                // Greedy equi-aware ordering: prefer the FROM item that an
                // unused cross-table equality links to what is already
                // joined — that join hashes instead of building a cross
                // product. SESQL's REPLACEVARIABLE rewrite depends on this:
                // its pairs table relates the *two ends* of the query's
                // original equi-join, so FROM order would put the only
                // non-equi conjunct (e.g. `l1 <> l2`) in the middle and
                // materialise the full cross product first. Falls back to
                // FROM order when nothing links.
                let pick = remaining
                    .iter()
                    .position(|cand| {
                        conjuncts.iter().zip(&used).any(|(c, u)| {
                            !u && is_equi_link(c, acc.schema(), cand.schema())
                        })
                    })
                    .unwrap_or(0);
                let mut right = remaining.remove(pick).expect("position in bounds");
                right = push_single(right, &conjuncts, &mut used)?;
                // Cross-table conjuncts that become resolvable once both
                // sides are in scope turn the cross join into a predicated
                // (and usually hash) join.
                let joint = acc.schema().join(right.schema());
                let mut on_parts = Vec::new();
                for (i, c) in conjuncts.iter().enumerate() {
                    if !used[i] && bind(c, &joint).is_ok() {
                        used[i] = true;
                        on_parts.push(c.clone());
                    }
                }
                let on = on_parts.into_iter().reduce(Expr::and);
                acc = match on {
                    Some(on) => self.join(acc, right, JoinKind::Inner, Some(&on))?,
                    None => self.join(acc, right, JoinKind::Cross, None)?,
                };
            }
            acc
        };

        // Residual WHERE conjuncts (e.g. referencing no table, or left
        // unbindable until the full schema — resolve errors surface here).
        let residual: Vec<Expr> = conjuncts
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(c, _)| c.clone())
            .collect();
        if let Some(combined) = residual.into_iter().reduce(Expr::and) {
            let predicate = bind(&combined, plan.schema())?;
            plan = Plan::Filter { input: Box::new(plan), predicate };
        }

        // Expand wildcards to (expr, alias) pairs — against the declared
        // FROM-order schema, not the (possibly reordered) joined plan's,
        // so `SELECT *` columns come out in SQL order. The generated
        // references are qualified, so they bind correctly against the
        // actual join output regardless of its internal order.
        let input_schema = plan.schema().clone();
        let wildcard_schema = declared_schema.as_ref().unwrap_or(&input_schema);
        let mut projections: Vec<(Expr, Option<String>)> = Vec::new();
        for item in &select.projections {
            match item {
                SelectItem::Wildcard => {
                    if select.from.is_empty() {
                        return Err(Error::plan("`SELECT *` requires a FROM clause"));
                    }
                    for c in &wildcard_schema.columns {
                        projections.push((
                            Expr::Column {
                                qualifier: c.qualifier.clone(),
                                name: c.name.clone(),
                            },
                            None,
                        ));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut any = false;
                    for c in &wildcard_schema.columns {
                        if c.qualifier.as_deref().map(|x| x.eq_ignore_ascii_case(q))
                            == Some(true)
                        {
                            any = true;
                            projections.push((
                                Expr::Column {
                                    qualifier: c.qualifier.clone(),
                                    name: c.name.clone(),
                                },
                                None,
                            ));
                        }
                    }
                    if !any {
                        return Err(Error::plan(format!("unknown table alias `{q}.*`")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    projections.push((expr.clone(), alias.clone()));
                }
            }
        }

        let has_agg = !select.group_by.is_empty()
            || projections.iter().any(|(e, _)| e.contains_aggregate())
            || select
                .having
                .as_ref()
                .map(|h| h.contains_aggregate())
                .unwrap_or(false);

        // Output column names come from the expressions as written, even
        // when aggregation rewrites them to internal references.
        let display_projs: Vec<(Expr, Option<String>)> = projections.clone();

        let mut order_by = select.order_by.clone();

        let proj_input_schema;
        if has_agg {
            let (agg_plan, agg_schema, rewriter) =
                self.plan_aggregate(plan, &input_schema, select, &projections)?;
            plan = agg_plan;

            // Rewrite projections / having / order-by to reference the
            // aggregate output.
            for (e, _) in &mut projections {
                *e = rewriter.rewrite(e.clone())?;
            }
            if let Some(h) = &select.having {
                let h = rewriter.rewrite(h.clone())?;
                let predicate = bind(&h, &agg_schema)?;
                plan = Plan::Filter { input: Box::new(plan), predicate };
            }
            for item in &mut order_by {
                // ORDER BY may reference projection aliases; those are
                // resolved later against the output schema, so a failed
                // rewrite here is not fatal.
                if let Ok(r) = rewriter.rewrite(item.expr.clone()) {
                    item.expr = r;
                }
            }
            proj_input_schema = agg_schema;
        } else {
            if select.having.is_some() {
                return Err(Error::plan("HAVING requires GROUP BY or aggregates"));
            }
            proj_input_schema = input_schema;
        }

        // Pre-projection ORDER BY support: keys that don't reference output
        // columns are evaluated against the projection input.
        let mut pre_sort_keys: Vec<SortKey> = Vec::new();
        let mut post_sort_keys: Vec<(OrderItem, Option<usize>)> = Vec::new();

        // Build output schema first (needed to resolve aliases).
        let mut out_columns = Vec::new();
        let mut bound_projs = Vec::new();
        for ((expr, alias), (display_expr, _)) in projections.iter().zip(&display_projs) {
            let bound = bind(expr, &proj_input_schema)?;
            let (qualifier, name) = match (alias, display_expr) {
                (Some(a), _) => (None, a.clone()),
                (None, Expr::Column { qualifier, name }) => {
                    (qualifier.clone(), name.clone())
                }
                (None, e) => (None, e.to_string()),
            };
            let mut col = Column::new(name, infer_type(expr, &proj_input_schema));
            col.qualifier = qualifier;
            out_columns.push(col);
            bound_projs.push(bound);
        }
        let out_schema = Schema::new(out_columns);

        for item in &order_by {
            // 1. positional (ORDER BY 2)
            if let Expr::Literal(Value::Int(n)) = &item.expr {
                let idx = *n - 1;
                if idx < 0 || idx as usize >= out_schema.len() {
                    return Err(Error::plan(format!(
                        "ORDER BY position {n} is out of range"
                    )));
                }
                post_sort_keys.push((item.clone(), Some(idx as usize)));
                continue;
            }
            // 2. output alias / output column
            if let Expr::Column { qualifier: None, name } = &item.expr {
                if let Some(idx) = out_schema.index_of_output(name) {
                    post_sort_keys.push((item.clone(), Some(idx)));
                    continue;
                }
            }
            // 3. try binding against the output schema
            if let Ok(b) = bind(&item.expr, &out_schema) {
                post_sort_keys.push((
                    OrderItem { expr: item.expr.clone(), ascending: item.ascending },
                    None,
                ));
                let _ = b; // re-bound below
                continue;
            }
            // 4. fall back to the projection input (sort before project)
            let b = bind(&item.expr, &proj_input_schema)?;
            pre_sort_keys.push(SortKey { expr: b, ascending: item.ascending });
        }

        if !pre_sort_keys.is_empty() {
            plan = Plan::Sort { input: Box::new(plan), keys: pre_sort_keys };
        }

        plan = Plan::Project {
            input: Box::new(plan),
            exprs: bound_projs,
            schema: out_schema.clone(),
        };

        if select.distinct {
            plan = Plan::Distinct { input: Box::new(plan) };
        }

        if !post_sort_keys.is_empty() {
            let mut keys = Vec::new();
            for (item, idx) in post_sort_keys {
                let expr = match idx {
                    Some(i) => BoundExpr::Column(i),
                    None => bind(&item.expr, &out_schema)?,
                };
                keys.push(SortKey { expr, ascending: item.ascending });
            }
            plan = Plan::Sort { input: Box::new(plan), keys };
        }

        if select.limit.is_some() || select.offset.is_some() {
            plan = Plan::Limit {
                input: Box::new(plan),
                limit: select.limit,
                offset: select.offset.unwrap_or(0),
            };
        }

        Ok(plan)
    }

    fn table_ref(&self, tr: &TableRef) -> Result<Plan> {
        match tr {
            TableRef::Table { name, alias } => {
                let table = self.catalog.get_table(name)?;
                let qualifier = alias.clone().unwrap_or_else(|| name.clone());
                let schema = table.schema.clone().with_qualifier(&qualifier);
                Ok(Plan::Scan { table, schema })
            }
            TableRef::Join { left, right, kind, on } => {
                let l = self.table_ref(left)?;
                let r = self.table_ref(right)?;
                self.join(l, r, *kind, on.as_ref())
            }
        }
    }

    fn join(
        &self,
        left: Plan,
        right: Plan,
        kind: JoinKind,
        on: Option<&Expr>,
    ) -> Result<Plan> {
        let schema = left.schema().join(right.schema());
        let Some(on) = on else {
            return Ok(Plan::NestedLoopJoin {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                predicate: None,
                schema,
            });
        };

        // Split the ON condition into conjuncts; pull out cross-side
        // equalities as hash keys.
        let mut conjuncts = Vec::new();
        split_conjuncts(on, &mut conjuncts);
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual: Vec<&Expr> = Vec::new();
        for c in &conjuncts {
            if let Expr::Binary { left: l, op: BinaryOp::Eq, right: r } = c {
                // l from left / r from right?
                if let (Ok(bl), Ok(br)) = (bind(l, left.schema()), bind(r, right.schema())) {
                    left_keys.push(bl);
                    right_keys.push(br);
                    continue;
                }
                // l from right / r from left?
                if let (Ok(br), Ok(bl)) = (bind(l, right.schema()), bind(r, left.schema())) {
                    left_keys.push(bl);
                    right_keys.push(br);
                    continue;
                }
            }
            residual.push(c);
        }

        // LEFT joins require the *entire* ON condition to participate in
        // the match decision; only use the hash path when it decomposed
        // fully into equi-keys.
        let use_hash = !left_keys.is_empty()
            && (kind == JoinKind::Inner || residual.is_empty());

        if use_hash {
            let residual_expr = if residual.is_empty() {
                None
            } else {
                let combined = residual
                    .into_iter()
                    .cloned()
                    .reduce(Expr::and)
                    .expect("non-empty");
                Some(bind(&combined, &schema)?)
            };
            Ok(Plan::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                left_keys,
                right_keys,
                residual: residual_expr,
                schema,
            })
        } else {
            let predicate = Some(bind(on, &schema)?);
            Ok(Plan::NestedLoopJoin {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                predicate,
                schema,
            })
        }
    }

    /// Build the aggregate plan node plus a rewriter mapping pre-aggregation
    /// expressions to aggregate-output column references.
    fn plan_aggregate(
        &self,
        input: Plan,
        input_schema: &Schema,
        select: &Select,
        projections: &[(Expr, Option<String>)],
    ) -> Result<(Plan, Schema, AggRewriter)> {
        // Collect distinct aggregate calls across all output expressions.
        let mut agg_calls: Vec<Expr> = Vec::new();
        let mut collect = |e: &Expr| {
            e.visit(&mut |node| {
                if let Expr::Function { name, .. } = node {
                    if is_aggregate_name(name) && !agg_calls.contains(node) {
                        agg_calls.push(node.clone());
                    }
                }
            });
        };
        for (e, _) in projections {
            collect(e);
        }
        if let Some(h) = &select.having {
            collect(h);
        }
        for o in &select.order_by {
            collect(&o.expr);
        }

        // Bind group expressions and build the aggregate output schema.
        let mut group_bound = Vec::new();
        let mut out_cols = Vec::new();
        for (i, g) in select.group_by.iter().enumerate() {
            group_bound.push(bind(g, input_schema)?);
            let name = format!("#g{i}");
            out_cols.push(Column::new(name, infer_type(g, input_schema)));
        }
        let mut aggs = Vec::new();
        for (j, call) in agg_calls.iter().enumerate() {
            let Expr::Function { name, args, distinct, star } = call else {
                unreachable!("collected only functions");
            };
            let func = AggFn::parse(name, *star)?;
            let arg = if *star {
                None
            } else {
                if args.len() != 1 {
                    return Err(Error::plan(format!(
                        "aggregate `{name}` takes exactly one argument"
                    )));
                }
                if args[0].contains_aggregate() {
                    return Err(Error::plan("nested aggregates are not allowed"));
                }
                Some(bind(&args[0], input_schema)?)
            };
            aggs.push(AggSpec { func, distinct: *distinct, arg });
            out_cols.push(Column::new(format!("#a{j}"), infer_type(call, input_schema)));
        }
        let agg_schema = Schema::new(out_cols);
        let plan = Plan::Aggregate {
            input: Box::new(input),
            group: group_bound,
            aggs,
            schema: agg_schema.clone(),
        };
        let rewriter = AggRewriter {
            group_exprs: select.group_by.clone(),
            agg_calls,
        };
        Ok((plan, agg_schema, rewriter))
    }
}

/// Rewrites output expressions of an aggregated query so they reference the
/// aggregate node's output columns (`#g<i>` for group keys, `#a<j>` for
/// aggregate results).
pub(crate) struct AggRewriter {
    group_exprs: Vec<Expr>,
    agg_calls: Vec<Expr>,
}

impl AggRewriter {
    fn rewrite(&self, e: Expr) -> Result<Expr> {
        if let Some(i) = self.group_exprs.iter().position(|g| *g == e) {
            return Ok(Expr::col(format!("#g{i}")));
        }
        if let Some(j) = self.agg_calls.iter().position(|a| *a == e) {
            return Ok(Expr::col(format!("#a{j}")));
        }
        match e {
            Expr::Column { .. } => Err(Error::plan(format!(
                "column `{e}` must appear in GROUP BY or inside an aggregate"
            ))),
            Expr::Literal(_) | Expr::Param { .. } => Ok(e),
            Expr::Unary { op, expr } => Ok(Expr::Unary {
                op,
                expr: Box::new(self.rewrite(*expr)?),
            }),
            Expr::Binary { left, op, right } => Ok(Expr::Binary {
                left: Box::new(self.rewrite(*left)?),
                op,
                right: Box::new(self.rewrite(*right)?),
            }),
            Expr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.rewrite(*expr)?),
                negated,
            }),
            Expr::InList { expr, list, negated } => Ok(Expr::InList {
                expr: Box::new(self.rewrite(*expr)?),
                list: list.into_iter().map(|e| self.rewrite(e)).collect::<Result<_>>()?,
                negated,
            }),
            Expr::Between { expr, low, high, negated } => Ok(Expr::Between {
                expr: Box::new(self.rewrite(*expr)?),
                low: Box::new(self.rewrite(*low)?),
                high: Box::new(self.rewrite(*high)?),
                negated,
            }),
            Expr::Like { expr, pattern, negated } => Ok(Expr::Like {
                expr: Box::new(self.rewrite(*expr)?),
                pattern: Box::new(self.rewrite(*pattern)?),
                negated,
            }),
            Expr::Function { name, args, distinct, star } => Ok(Expr::Function {
                name,
                args: args.into_iter().map(|e| self.rewrite(e)).collect::<Result<_>>()?,
                distinct,
                star,
            }),
            // Subqueries were materialised before aggregation planning;
            // an InSubquery's outer operand still needs the rewrite.
            Expr::InSubquery { expr, query, negated } => Ok(Expr::InSubquery {
                expr: Box::new(self.rewrite(*expr)?),
                query,
                negated,
            }),
            e @ (Expr::Exists { .. } | Expr::ScalarSubquery(_)) => Ok(e),
            Expr::Case { operand, branches, else_expr } => Ok(Expr::Case {
                operand: operand.map(|o| self.rewrite(*o).map(Box::new)).transpose()?,
                branches: branches
                    .into_iter()
                    .map(|(w, t)| Ok((self.rewrite(w)?, self.rewrite(t)?)))
                    .collect::<Result<_>>()?,
                else_expr: else_expr
                    .map(|e| self.rewrite(*e).map(Box::new))
                    .transpose()?,
            }),
        }
    }
}

/// Push a WHERE conjunct as deep into `plan` as semantics allow: through
/// the left side of any join, through the right side of inner/cross joins
/// (never below the preserved side of a LEFT join), and through filters.
/// The conjunct must already bind against `plan`'s schema.
fn push_conjunct(plan: Plan, c: &Expr) -> Result<Plan> {
    /// Apply the conjunct as a filter at this level (binding re-resolves
    /// column indexes against the sub-plan's own schema).
    fn wrap(plan: Plan, c: &Expr) -> Result<Plan> {
        let predicate = bind(c, plan.schema())?;
        Ok(Plan::Filter { input: Box::new(plan), predicate })
    }
    match plan {
        Plan::HashJoin { left, right, kind, left_keys, right_keys, residual, schema } => {
            if bind(c, left.schema()).is_ok() {
                let left = Box::new(push_conjunct(*left, c)?);
                Ok(Plan::HashJoin { left, right, kind, left_keys, right_keys, residual, schema })
            } else if kind != JoinKind::Left && bind(c, right.schema()).is_ok() {
                let right = Box::new(push_conjunct(*right, c)?);
                Ok(Plan::HashJoin { left, right, kind, left_keys, right_keys, residual, schema })
            } else {
                wrap(
                    Plan::HashJoin { left, right, kind, left_keys, right_keys, residual, schema },
                    c,
                )
            }
        }
        Plan::NestedLoopJoin { left, right, kind, predicate, schema } => {
            if bind(c, left.schema()).is_ok() {
                let left = Box::new(push_conjunct(*left, c)?);
                Ok(Plan::NestedLoopJoin { left, right, kind, predicate, schema })
            } else if kind != JoinKind::Left && bind(c, right.schema()).is_ok() {
                let right = Box::new(push_conjunct(*right, c)?);
                Ok(Plan::NestedLoopJoin { left, right, kind, predicate, schema })
            } else {
                wrap(Plan::NestedLoopJoin { left, right, kind, predicate, schema }, c)
            }
        }
        Plan::Filter { input, predicate } => {
            let input = Box::new(push_conjunct(*input, c)?);
            Ok(Plan::Filter { input, predicate })
        }
        Plan::Scan { table, schema } => {
            if let Some(lookup) = index_lookup_for(&table, &schema, c) {
                let (column, lookup) = lookup;
                return Ok(Plan::IndexScan { table, schema, column, lookup });
            }
            wrap(Plan::Scan { table, schema }, c)
        }
        other => wrap(other, c),
    }
}

/// If `c` is a sargable predicate (`col <cmp> literal`, `col IN (literals)`,
/// `col BETWEEN literal AND literal`) on an indexed column of `table`,
/// translate it into an index lookup. Literals are coerced to the column
/// type so the index's total-order comparison agrees with SQL comparison on
/// the stored (already coerced) values; a coercion failure falls back to a
/// plain filter.
fn index_lookup_for(
    table: &Table,
    schema: &Schema,
    c: &Expr,
) -> Option<(usize, IndexLookup)> {
    let col_pos = |e: &Expr| -> Option<usize> {
        if let Expr::Column { qualifier, name } = e {
            let pos = schema.resolve(qualifier.as_deref(), name).ok()?;
            table.has_index_on(pos).then_some(pos)
        } else {
            None
        }
    };
    fn lit(e: &Expr) -> Option<&Value> {
        if let Expr::Literal(v) = e {
            Some(v)
        } else {
            None
        }
    }
    let coerced = |pos: usize, v: &Value| -> Option<Value> {
        if v.is_null() {
            return None; // NULL comparisons never match; empty Eq handles it
        }
        v.clone().coerce(table.schema.columns[pos].data_type).ok()
    };

    match c {
        Expr::Binary { left, op, right } if op.is_comparison() && *op != BinaryOp::NotEq => {
            // Normalise to column-on-the-left.
            let (pos, v, op) = if let (Some(pos), Some(v)) = (col_pos(left), lit(right)) {
                (pos, v, *op)
            } else if let (Some(pos), Some(v)) = (col_pos(right), lit(left)) {
                let flipped = match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::LtEq => BinaryOp::GtEq,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::GtEq => BinaryOp::LtEq,
                    other => *other,
                };
                (pos, v, flipped)
            } else {
                return None;
            };
            if v.is_null() {
                // `col <cmp> NULL` is never true: an empty key set encodes
                // the guaranteed-empty result without a special plan node.
                return Some((pos, IndexLookup::Eq(Vec::new())));
            }
            let key = coerced(pos, v)?;
            let lookup = match op {
                BinaryOp::Eq => IndexLookup::Eq(vec![key]),
                BinaryOp::Lt => IndexLookup::Range {
                    low: Bound::Unbounded,
                    high: Bound::Excluded(key),
                },
                BinaryOp::LtEq => IndexLookup::Range {
                    low: Bound::Unbounded,
                    high: Bound::Included(key),
                },
                BinaryOp::Gt => IndexLookup::Range {
                    low: Bound::Excluded(key),
                    high: Bound::Unbounded,
                },
                BinaryOp::GtEq => IndexLookup::Range {
                    low: Bound::Included(key),
                    high: Bound::Unbounded,
                },
                _ => return None,
            };
            Some((pos, lookup))
        }
        Expr::InList { expr, list, negated: false } => {
            let pos = col_pos(expr)?;
            let mut keys = Vec::with_capacity(list.len());
            for item in list {
                let v = lit(item)?;
                if v.is_null() {
                    continue; // NULL list members never match
                }
                keys.push(coerced(pos, v)?);
            }
            Some((pos, IndexLookup::Eq(keys)))
        }
        Expr::Between { expr, low, high, negated: false } => {
            let pos = col_pos(expr)?;
            let (lo, hi) = (lit(low)?, lit(high)?);
            if lo.is_null() || hi.is_null() {
                return Some((pos, IndexLookup::Eq(Vec::new())));
            }
            Some((
                pos,
                IndexLookup::Range {
                    low: Bound::Included(coerced(pos, lo)?),
                    high: Bound::Included(coerced(pos, hi)?),
                },
            ))
        }
        _ => None,
    }
}

/// Flatten nested ANDs into a conjunct list.
pub fn split_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary { left, op: BinaryOp::And, right } = e {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e);
    }
}

/// Whether `c` is an equality with one side resolvable in `left` and the
/// other in `right` — i.e. it would become a hash-join key for the pair.
/// Both sides must actually reference a column: a literal binds against
/// *every* schema, so `b.x = 5` must not count as a cross-table link.
fn is_equi_link(c: &Expr, left: &Schema, right: &Schema) -> bool {
    fn has_column(e: &Expr) -> bool {
        let mut found = false;
        e.visit(&mut |node| {
            if matches!(node, Expr::Column { .. }) {
                found = true;
            }
        });
        found
    }
    match c {
        Expr::Binary { left: l, op: BinaryOp::Eq, right: r } => {
            has_column(l)
                && has_column(r)
                && ((bind(l, left).is_ok() && bind(r, right).is_ok())
                    || (bind(l, right).is_ok() && bind(r, left).is_ok()))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::{parse_expr, parse_statement};
    use crate::sql::ast::Statement;
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.create_table(
            "landfill",
            vec![
                Column::new("name", DataType::Text),
                Column::new("city", DataType::Text),
                Column::new("tons", DataType::Float),
            ],
        )
        .unwrap();
        cat.create_table(
            "elem_contained",
            vec![
                Column::new("elem_name", DataType::Text),
                Column::new("landfill_name", DataType::Text),
                Column::new("amount", DataType::Float),
            ],
        )
        .unwrap();
        cat
    }

    fn plan(sql: &str) -> Result<Plan> {
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!("not a select")
        };
        plan_select(&catalog(), &s)
    }

    #[test]
    fn simple_select_plans() {
        let p = plan("SELECT name FROM landfill WHERE city = 'Torino'").unwrap();
        assert!(matches!(p, Plan::Project { .. }));
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.schema().columns[0].name, "name");
    }

    #[test]
    fn equi_join_becomes_hash_join() {
        let p = plan(
            "SELECT l.name FROM landfill l JOIN elem_contained e \
             ON l.name = e.landfill_name",
        )
        .unwrap();
        fn find_hash(p: &Plan) -> bool {
            match p {
                Plan::HashJoin { .. } => true,
                Plan::Project { input, .. }
                | Plan::Filter { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Distinct { input }
                | Plan::Limit { input, .. } => find_hash(input),
                _ => false,
            }
        }
        assert!(find_hash(&p));
    }

    /// Walk a plan and record every base-table qualifier (alias) in join
    /// order (left-deep: left subtree first).
    fn scan_order(p: &Plan, out: &mut Vec<String>) {
        match p {
            Plan::Scan { schema, .. } | Plan::IndexScan { schema, .. } => {
                if let Some(q) = schema.columns.first().and_then(|c| c.qualifier.clone()) {
                    out.push(q);
                }
            }
            Plan::Project { input, .. }
            | Plan::Filter { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Distinct { input }
            | Plan::Limit { input, .. }
            | Plan::Aggregate { input, .. } => scan_order(input, out),
            Plan::HashJoin { left, right, .. }
            | Plan::NestedLoopJoin { left, right, .. } => {
                scan_order(left, out);
                scan_order(right, out);
            }
            Plan::Shared { input, .. } => scan_order(input, out),
            Plan::Values { .. } | Plan::Union { .. } => {}
        }
    }

    #[test]
    fn greedy_order_prefers_equi_linked_from_item() {
        // FROM order would cross-join e1×e2 on the non-equi `<>` alone;
        // the greedy planner must pull `x` (equi-linked to e1) forward.
        let p = plan(
            "SELECT e1.elem_name FROM elem_contained e1, elem_contained e2, landfill x \
             WHERE e1.landfill_name <> e2.landfill_name \
               AND x.name = e1.landfill_name AND x.city = e2.landfill_name",
        )
        .unwrap();
        let mut order = Vec::new();
        scan_order(&p, &mut order);
        assert_eq!(order, vec!["e1", "x", "e2"], "equi-linked item joins first");
    }

    #[test]
    fn wildcard_follows_declared_from_order_despite_join_reordering() {
        // Same shape as above: the planner joins e1 ⋈ x ⋈ e2, but
        // `SELECT *` must still produce e1.*, e2.*, x.* (SQL text order).
        let p = plan(
            "SELECT * FROM elem_contained e1, elem_contained e2, landfill x \
             WHERE e1.landfill_name <> e2.landfill_name \
               AND x.name = e1.landfill_name AND x.city = e2.landfill_name",
        )
        .unwrap();
        let quals: Vec<&str> = p
            .schema()
            .columns
            .iter()
            .map(|c| c.qualifier.as_deref().unwrap_or(""))
            .collect();
        assert_eq!(
            quals,
            vec!["e1", "e1", "e1", "e2", "e2", "e2", "x", "x", "x"],
            "SELECT * column order must follow the FROM clause"
        );
    }

    #[test]
    fn single_table_literal_equality_is_not_an_equi_link() {
        // `e2.amount = 5` binds a literal on one side; it must not count
        // as a cross-table link, or e2 would be preferred (cross product)
        // over x, the genuine hash-join partner of e1.
        let p = plan(
            "SELECT e1.elem_name FROM elem_contained e1, elem_contained e2, landfill x \
             WHERE e2.amount = 5 AND e1.landfill_name <> e2.landfill_name \
               AND x.name = e1.landfill_name AND x.city = e2.landfill_name",
        )
        .unwrap();
        let mut order = Vec::new();
        scan_order(&p, &mut order);
        assert_eq!(order, vec!["e1", "x", "e2"]);
    }

    #[test]
    fn non_equi_join_falls_back_to_nested_loop() {
        let p = plan(
            "SELECT l.name FROM landfill l JOIN elem_contained e \
             ON l.tons > e.amount",
        )
        .unwrap();
        fn find_nl(p: &Plan) -> bool {
            match p {
                Plan::NestedLoopJoin { .. } => true,
                Plan::Project { input, .. } | Plan::Filter { input, .. } => find_nl(input),
                _ => false,
            }
        }
        assert!(find_nl(&p));
    }

    #[test]
    fn left_join_with_mixed_condition_uses_nested_loop() {
        let p = plan(
            "SELECT l.name FROM landfill l LEFT JOIN elem_contained e \
             ON l.name = e.landfill_name AND e.amount > 10",
        )
        .unwrap();
        fn kinds(p: &Plan, out: &mut Vec<&'static str>) {
            match p {
                Plan::HashJoin { .. } => out.push("hash"),
                Plan::NestedLoopJoin { .. } => out.push("nl"),
                Plan::Project { input, .. } | Plan::Filter { input, .. } => kinds(input, out),
                _ => {}
            }
        }
        let mut v = Vec::new();
        kinds(&p, &mut v);
        assert_eq!(v, vec!["nl"]);
    }

    #[test]
    fn inner_join_mixed_condition_keeps_hash_with_residual() {
        let p = plan(
            "SELECT l.name FROM landfill l JOIN elem_contained e \
             ON l.name = e.landfill_name AND e.amount > 10",
        )
        .unwrap();
        fn find(p: &Plan) -> Option<bool> {
            match p {
                Plan::HashJoin { residual, .. } => Some(residual.is_some()),
                Plan::Project { input, .. } | Plan::Filter { input, .. } => find(input),
                _ => None,
            }
        }
        assert_eq!(find(&p), Some(true));
    }

    #[test]
    fn aggregate_requires_grouped_columns() {
        let err = plan("SELECT city, COUNT(*) FROM landfill").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn group_by_plans() {
        let p = plan("SELECT city, COUNT(*) FROM landfill GROUP BY city").unwrap();
        assert_eq!(p.schema().len(), 2);
    }

    #[test]
    fn having_without_group_rejected() {
        // HAVING with aggregates but without GROUP BY is legal (global
        // group); HAVING without any aggregation is rejected.
        assert!(plan("SELECT name FROM landfill HAVING name = 'x'").is_err());
        assert!(plan("SELECT COUNT(*) FROM landfill HAVING COUNT(*) > 0").is_ok());
    }

    #[test]
    fn order_by_position_out_of_range() {
        assert!(plan("SELECT name FROM landfill ORDER BY 2").is_err());
        assert!(plan("SELECT name FROM landfill ORDER BY 1").is_ok());
    }

    #[test]
    fn select_without_from() {
        let p = plan("SELECT 1 + 1").unwrap();
        assert!(matches!(p, Plan::Project { .. }));
    }

    #[test]
    fn wildcard_requires_from() {
        assert!(plan("SELECT *").is_err());
    }

    #[test]
    fn unknown_table_and_column() {
        assert!(plan("SELECT x FROM nope").is_err());
        assert!(plan("SELECT nope FROM landfill").is_err());
    }

    #[test]
    fn where_equi_conjunct_becomes_hash_join_for_comma_list() {
        // The paper's Example 4.6 self-join shape: comma-separated FROM
        // with equality in WHERE must not plan a raw cross product.
        let p = plan(
            "SELECT e1.elem_name FROM elem_contained e1, elem_contained e2 \
             WHERE e1.elem_name = e2.elem_name AND e1.amount > 10",
        )
        .unwrap();
        fn kinds(p: &Plan, out: &mut Vec<&'static str>) {
            match p {
                Plan::HashJoin { left, right, .. } => {
                    out.push("hash");
                    kinds(left, out);
                    kinds(right, out);
                }
                Plan::NestedLoopJoin { left, right, .. } => {
                    out.push("nl");
                    kinds(left, out);
                    kinds(right, out);
                }
                Plan::Project { input, .. }
                | Plan::Filter { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Distinct { input }
                | Plan::Limit { input, .. } => kinds(input, out),
                _ => {}
            }
        }
        let mut v = Vec::new();
        kinds(&p, &mut v);
        assert_eq!(v, vec!["hash"]);
    }

    #[test]
    fn single_table_conjunct_pushed_below_join() {
        let p = plan(
            "SELECT l.name FROM landfill l, elem_contained e \
             WHERE l.name = e.landfill_name AND l.tons > 100",
        )
        .unwrap();
        // The tons filter must sit below the join (on the landfill side).
        fn has_filter_below_join(p: &Plan) -> bool {
            match p {
                Plan::HashJoin { left, right, .. }
                | Plan::NestedLoopJoin { left, right, .. } => {
                    matches!(**left, Plan::Filter { .. })
                        || matches!(**right, Plan::Filter { .. })
                }
                Plan::Project { input, .. }
                | Plan::Filter { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Distinct { input }
                | Plan::Limit { input, .. } => has_filter_below_join(input),
                _ => false,
            }
        }
        assert!(has_filter_below_join(&p));
    }

    #[test]
    fn ambiguous_where_column_still_errors_with_pushdown() {
        // `elem_name` is ambiguous across e1/e2 even though it would bind
        // against either table alone.
        let err = plan(
            "SELECT e1.amount FROM elem_contained e1, elem_contained e2 \
             WHERE elem_name = 'Hg'",
        )
        .unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    // ---- index selection ---------------------------------------------------

    fn indexed_catalog() -> Catalog {
        let cat = catalog();
        cat.create_index("idx_city", "landfill", "city").unwrap();
        cat.create_index("idx_tons", "landfill", "tons").unwrap();
        cat
    }

    fn plan_on(cat: &Catalog, sql: &str) -> Plan {
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!("not a select")
        };
        plan_select(cat, &s).unwrap()
    }

    fn find_index_scan(p: &Plan) -> Option<&IndexLookup> {
        match p {
            Plan::IndexScan { lookup, .. } => Some(lookup),
            Plan::Project { input, .. }
            | Plan::Filter { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Distinct { input }
            | Plan::Limit { input, .. } => find_index_scan(input),
            Plan::HashJoin { left, right, .. }
            | Plan::NestedLoopJoin { left, right, .. } => {
                find_index_scan(left).or_else(|| find_index_scan(right))
            }
            _ => None,
        }
    }

    #[test]
    fn equality_on_indexed_column_uses_index() {
        let cat = indexed_catalog();
        let p = plan_on(&cat, "SELECT name FROM landfill WHERE city = 'Torino'");
        assert!(matches!(find_index_scan(&p), Some(IndexLookup::Eq(k)) if k.len() == 1));
    }

    #[test]
    fn in_list_uses_index() {
        let cat = indexed_catalog();
        let p = plan_on(
            &cat,
            "SELECT name FROM landfill WHERE city IN ('Torino', 'Milano')",
        );
        assert!(matches!(find_index_scan(&p), Some(IndexLookup::Eq(k)) if k.len() == 2));
    }

    #[test]
    fn range_and_between_use_index() {
        let cat = indexed_catalog();
        let p = plan_on(&cat, "SELECT name FROM landfill WHERE tons > 100");
        assert!(matches!(find_index_scan(&p), Some(IndexLookup::Range { .. })));
        let p = plan_on(&cat, "SELECT name FROM landfill WHERE tons BETWEEN 10 AND 20");
        assert!(matches!(find_index_scan(&p), Some(IndexLookup::Range { .. })));
    }

    #[test]
    fn flipped_literal_comparison_uses_index() {
        let cat = indexed_catalog();
        // `100 < tons` must behave as `tons > 100`.
        let p = plan_on(&cat, "SELECT name FROM landfill WHERE 100 < tons");
        match find_index_scan(&p) {
            Some(IndexLookup::Range { low: Bound::Excluded(_), high: Bound::Unbounded }) => {}
            other => panic!("expected exclusive lower bound, got {other:?}"),
        }
    }

    #[test]
    fn unindexed_or_unsargable_predicates_do_not_use_index() {
        let cat = indexed_catalog();
        // name has no index
        let p = plan_on(&cat, "SELECT name FROM landfill WHERE name = 'x'");
        assert!(find_index_scan(&p).is_none());
        // <> is not sargable here
        let p = plan_on(&cat, "SELECT name FROM landfill WHERE city <> 'x'");
        assert!(find_index_scan(&p).is_none());
        // non-literal comparand
        let p = plan_on(&cat, "SELECT name FROM landfill WHERE city = name");
        assert!(find_index_scan(&p).is_none());
        // NOT IN is not an index lookup
        let p = plan_on(&cat, "SELECT name FROM landfill WHERE city NOT IN ('x')");
        assert!(find_index_scan(&p).is_none());
    }

    #[test]
    fn null_comparison_plans_empty_index_lookup() {
        let cat = indexed_catalog();
        let p = plan_on(&cat, "SELECT name FROM landfill WHERE city = NULL");
        assert!(matches!(find_index_scan(&p), Some(IndexLookup::Eq(k)) if k.is_empty()));
    }

    #[test]
    fn int_literal_coerced_to_float_column_key() {
        let cat = indexed_catalog();
        let p = plan_on(&cat, "SELECT name FROM landfill WHERE tons = 100");
        match find_index_scan(&p) {
            Some(IndexLookup::Eq(keys)) => {
                assert!(matches!(keys[0], Value::Float(f) if f == 100.0));
            }
            other => panic!("expected eq lookup, got {other:?}"),
        }
    }

    #[test]
    fn remaining_conjuncts_filter_above_index_scan() {
        let cat = indexed_catalog();
        let p = plan_on(
            &cat,
            "SELECT name FROM landfill WHERE city = 'Torino' AND name LIKE 'B%'",
        );
        // Must contain both an IndexScan and a Filter above it.
        assert!(find_index_scan(&p).is_some());
        fn has_filter(p: &Plan) -> bool {
            match p {
                Plan::Filter { .. } => true,
                Plan::Project { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Distinct { input }
                | Plan::Limit { input, .. } => has_filter(input),
                _ => false,
            }
        }
        assert!(has_filter(&p));
    }

    #[test]
    fn explain_renders_index_scan() {
        let cat = indexed_catalog();
        let p = plan_on(&cat, "SELECT name FROM landfill WHERE city = 'Torino'");
        assert!(p.explain().contains("IndexScan: landfill.city"), "{}", p.explain());
    }

    #[test]
    fn index_lookup_matches_fallback_semantics() {
        let eq = IndexLookup::Eq(vec![Value::from("x"), Value::Null]);
        assert!(eq.matches(&Value::from("x")));
        assert!(!eq.matches(&Value::from("y")));
        assert!(!eq.matches(&Value::Null));
        let range = IndexLookup::Range {
            low: Bound::Excluded(Value::from(1.0)),
            high: Bound::Included(Value::from(2.0)),
        };
        assert!(!range.matches(&Value::from(1.0)));
        assert!(range.matches(&Value::from(1.5)));
        assert!(range.matches(&Value::from(2.0)));
        assert!(!range.matches(&Value::Null));
    }

    #[test]
    fn split_conjuncts_flattens() {
        let e = parse_expr("a = 1 AND b = 2 AND (c = 3 OR d = 4)").unwrap();
        let mut out = Vec::new();
        split_conjuncts(&e, &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn infer_types() {
        let schema = Schema::new(vec![
            Column::new("s", DataType::Text),
            Column::new("i", DataType::Int),
            Column::new("f", DataType::Float),
        ]);
        let t = |src: &str| infer_type(&parse_expr(src).unwrap(), &schema);
        assert_eq!(t("i + 1"), DataType::Int);
        assert_eq!(t("i + f"), DataType::Float);
        assert_eq!(t("i > 1"), DataType::Bool);
        assert_eq!(t("s || 'x'"), DataType::Text);
        assert_eq!(t("COUNT(*)"), DataType::Int);
        assert_eq!(t("AVG(i)"), DataType::Float);
        assert_eq!(t("SUM(i)"), DataType::Int);
        assert_eq!(t("MIN(s)"), DataType::Text);
        assert_eq!(t("LENGTH(s)"), DataType::Int);
        assert_eq!(t("UPPER(s)"), DataType::Text);
    }
}
