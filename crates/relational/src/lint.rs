//! Semantic linting for the SQL dialect: rules that catch queries which
//! parse and execute but almost certainly do not mean what the author
//! intended. The SESQL layer (`crosse-core`) lints the cleaned SELECT
//! through this module and adds its own enrichment-specific rules; SPARQL
//! has a sibling linter in `crosse-rdf`.
//!
//! Rules (codes are stable; see the `crosse-lint` crate table):
//!
//! * **L001** — always-false predicate: contradictory equality conjuncts
//!   on one column (`x = 1 AND x = 2`), an equality and its negation
//!   (`x = 1 AND x <> 1`), or a constant comparison that evaluates false
//!   (`1 = 2`).
//! * **L002** — always-true predicate: a constant comparison that
//!   evaluates true (`1 = 1`), or a column compared to itself (`x = x`).
//! * **L003** — implicit cross join: comma-listed FROM items with no
//!   equi-join link between them in WHERE (the query runs as a cartesian
//!   product).
//! * **L004** — implicit string↔numeric coercion: comparing a TEXT column
//!   against a numeric literal or vice versa.
//! * **L005** — `DISTINCT` that is a no-op because every GROUP BY key is
//!   projected (groups are already unique).
//! * **L006** — unbound parameters in a statement that is about to be
//!   executed directly (prepare + bind instead). Suppressed when linting
//!   on behalf of `prepare`, where parameters are the point.
//!
//! Every rule is best-effort and silent on anything it cannot prove:
//! unknown tables, unresolvable columns, and expressions outside the
//! recognised shapes produce no diagnostics (the planner is the authority
//! on errors; the linter only warns).

use crosse_lint::Diagnostic;

use crate::prepared::from_schema;
use crate::schema::Schema;
use crate::sql::ast::{BinaryOp, Expr, Select, SelectItem, Statement, TableRef};
use crate::storage::Catalog;
use crate::value::{DataType, Value};

/// Lint one parsed statement. `source` is the original text (used for
/// best-effort spans); `allow_params` suppresses L006 (set when linting
/// for `prepare`, where placeholders are expected).
pub fn lint_statement(
    catalog: &Catalog,
    stmt: &Statement,
    source: &str,
    allow_params: bool,
) -> Vec<Diagnostic> {
    match stmt {
        Statement::Select(s) | Statement::Explain(s) => {
            lint_select(catalog, s, source, allow_params)
        }
        _ => Vec::new(),
    }
}

/// Lint a SELECT (including union members and subqueries).
pub fn lint_select(
    catalog: &Catalog,
    select: &Select,
    source: &str,
    allow_params: bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !allow_params {
        unbound_params(select, source, &mut out);
    }
    lint_one(catalog, select, source, &mut out);
    out.dedup();
    out
}

/// Lint `select` and recurse into union members and subqueries (L006 is
/// handled once at the top, since slots are statement-global).
fn lint_one(catalog: &Catalog, select: &Select, source: &str, out: &mut Vec<Diagnostic>) {
    let schema = from_schema(catalog, select);
    let conjs = select.filter.as_ref().map(conjuncts).unwrap_or_default();

    constant_predicates(&conjs, source, out);
    contradictory_equalities(&conjs, source, out);
    self_comparisons(&conjs, source, out);
    cross_joins(catalog, select, &conjs, source, out);
    coercing_comparisons(&schema, select, source, out);
    distinct_under_group_by(select, source, out);

    for sub in subqueries(select) {
        lint_one(catalog, sub, source, out);
    }
    for (_, member) in &select.union {
        lint_one(catalog, member, source, out);
    }
}

// ---- helpers ---------------------------------------------------------------

/// Split a predicate into its top-level AND conjuncts.
fn conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Binary { left, op: BinaryOp::And, right } => {
            let mut out = conjuncts(left);
            out.extend(conjuncts(right));
            out
        }
        other => vec![other],
    }
}

/// `(qualifier, name)` of a column reference, lower-cased for keying.
fn column_key(e: &Expr) -> Option<(Option<String>, String)> {
    if let Expr::Column { qualifier, name } = e {
        Some((
            qualifier.as_ref().map(|q| q.to_ascii_lowercase()),
            name.to_ascii_lowercase(),
        ))
    } else {
        None
    }
}

fn literal(e: &Expr) -> Option<&Value> {
    if let Expr::Literal(v) = e {
        Some(v)
    } else {
        None
    }
}

/// Evaluate a comparison between two non-NULL literals, when their types
/// admit a SQL comparison.
fn const_compare(l: &Value, op: BinaryOp, r: &Value) -> Option<bool> {
    use std::cmp::Ordering::*;
    let ord = l.sql_cmp(r)?;
    Some(match op {
        BinaryOp::Eq => ord == Equal,
        BinaryOp::NotEq => ord != Equal,
        BinaryOp::Lt => ord == Less,
        BinaryOp::LtEq => ord != Greater,
        BinaryOp::Gt => ord == Greater,
        BinaryOp::GtEq => ord != Less,
        _ => return None,
    })
}

/// Source-ish rendering of a conjunct for span lookup: `Expr`'s Display
/// wraps binary expressions in parens, which the written text usually
/// lacks, so one outer layer is stripped.
fn fragment(e: &Expr) -> String {
    let s = e.to_string();
    match s.strip_prefix('(').and_then(|s| s.strip_suffix(')')) {
        Some(inner) => inner.to_string(),
        None => s,
    }
}

/// Every SELECT nested inside `select`'s expressions (IN/EXISTS/scalar
/// subqueries), one level deep — recursion happens in [`lint_one`].
fn subqueries(select: &Select) -> Vec<&Select> {
    let mut subs: Vec<&Select> = Vec::new();
    let mut exprs: Vec<&Expr> = Vec::new();
    for p in &select.projections {
        if let SelectItem::Expr { expr, .. } = p {
            exprs.push(expr);
        }
    }
    exprs.extend(select.filter.iter());
    exprs.extend(select.having.iter());
    while let Some(e) = exprs.pop() {
        match e {
            Expr::InSubquery { expr, query, .. } => {
                exprs.push(expr);
                subs.push(query);
            }
            Expr::Exists { query, .. } => subs.push(query),
            Expr::ScalarSubquery(query) => subs.push(query),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => exprs.push(expr),
            Expr::Binary { left, right, .. } => {
                exprs.push(left);
                exprs.push(right);
            }
            Expr::InList { expr, list, .. } => {
                exprs.push(expr);
                exprs.extend(list.iter());
            }
            Expr::Between { expr, low, high, .. } => {
                exprs.extend([expr.as_ref(), low.as_ref(), high.as_ref()]);
            }
            Expr::Like { expr, pattern, .. } => {
                exprs.extend([expr.as_ref(), pattern.as_ref()]);
            }
            Expr::Function { args, .. } => exprs.extend(args.iter()),
            Expr::Case { operand, branches, else_expr } => {
                exprs.extend(operand.iter().map(|b| b.as_ref()));
                for (w, t) in branches {
                    exprs.push(w);
                    exprs.push(t);
                }
                exprs.extend(else_expr.iter().map(|b| b.as_ref()));
            }
            _ => {}
        }
    }
    subs
}

// ---- L001 / L002: constant predicates --------------------------------------

fn constant_predicates(conjs: &[&Expr], source: &str, out: &mut Vec<Diagnostic>) {
    for c in conjs {
        if let Expr::Binary { left, op, right } = c {
            if let (Some(l), Some(r)) = (literal(left), literal(right)) {
                match const_compare(l, *op, r) {
                    Some(false) => out.push(
                        Diagnostic::error(
                            "L001",
                            format!("predicate `{c}` is always false"),
                        )
                        .try_span_of(source, &fragment(c)),
                    ),
                    Some(true) => out.push(
                        Diagnostic::warning(
                            "L002",
                            format!("predicate `{c}` is always true"),
                        )
                        .try_span_of(source, &fragment(c)),
                    ),
                    None => {}
                }
            }
        }
    }
}

// ---- L001: contradictory equality conjuncts --------------------------------

/// One `col = lit` / `col <> lit` conjunct: (column key, literal,
/// negated, the conjunct expression itself).
type EqConjunct<'a> = ((Option<String>, String), &'a Value, bool, &'a Expr);

fn contradictory_equalities(conjs: &[&Expr], source: &str, out: &mut Vec<Diagnostic>) {
    // (column key, literal, negated) for every `col = lit` / `col <> lit`
    // conjunct, either operand order.
    let mut eqs: Vec<EqConjunct> = Vec::new();
    for c in conjs {
        if let Expr::Binary { left, op, right } = c {
            let negated = match op {
                BinaryOp::Eq => false,
                BinaryOp::NotEq => true,
                _ => continue,
            };
            let pair = column_key(left)
                .zip(literal(right))
                .or_else(|| column_key(right).zip(literal(left)));
            if let Some((key, v)) = pair {
                if !v.is_null() {
                    eqs.push((key, v, negated, c));
                }
            }
        }
    }
    for (i, (key, v, negated, c)) in eqs.iter().enumerate() {
        for (key2, v2, negated2, c2) in eqs.iter().skip(i + 1) {
            if key != key2 {
                continue;
            }
            let contradiction = match (negated, negated2) {
                // x = a AND x = b with a != b
                (false, false) => const_compare(v, BinaryOp::Eq, v2) == Some(false),
                // x = a AND x <> a (either order)
                (false, true) | (true, false) => {
                    const_compare(v, BinaryOp::Eq, v2) == Some(true)
                }
                (true, true) => false,
            };
            if contradiction {
                out.push(
                    Diagnostic::error(
                        "L001",
                        format!("conjuncts `{c}` and `{c2}` can never both hold"),
                    )
                    .try_span_of(source, &fragment(c2)),
                );
            }
        }
    }
}

// ---- L002: self-comparison -------------------------------------------------

fn self_comparisons(conjs: &[&Expr], source: &str, out: &mut Vec<Diagnostic>) {
    for c in conjs {
        if let Expr::Binary { left, op: BinaryOp::Eq, right } = c {
            if let (Some(l), Some(r)) = (column_key(left), column_key(right)) {
                if l == r {
                    out.push(
                        Diagnostic::warning(
                            "L002",
                            format!(
                                "predicate `{c}` compares a column with itself \
                                 (always true unless NULL)"
                            ),
                        )
                        .try_span_of(source, &fragment(c)),
                    );
                }
            }
        }
    }
}

// ---- L003: implicit cross join ---------------------------------------------

/// Names (alias or table name, lower-cased) one top-level FROM item binds.
fn item_names(tr: &TableRef) -> Vec<String> {
    match tr {
        TableRef::Table { name, alias } => {
            vec![alias.as_ref().unwrap_or(name).to_ascii_lowercase()]
        }
        TableRef::Join { left, right, .. } => {
            let mut names = item_names(left);
            names.extend(item_names(right));
            names
        }
    }
}

/// Columns of one FROM item resolved against the catalog (`None` when a
/// table is unknown, which disables the rule for the whole statement).
fn item_columns(catalog: &Catalog, tr: &TableRef) -> Option<Vec<String>> {
    match tr {
        TableRef::Table { name, .. } => {
            let t = catalog.get_table(name).ok()?;
            Some(t.schema.columns.iter().map(|c| c.name.to_ascii_lowercase()).collect())
        }
        TableRef::Join { left, right, .. } => {
            let mut cols = item_columns(catalog, left)?;
            cols.extend(item_columns(catalog, right)?);
            Some(cols)
        }
    }
}

fn cross_joins(
    catalog: &Catalog,
    select: &Select,
    conjs: &[&Expr],
    source: &str,
    out: &mut Vec<Diagnostic>,
) {
    if select.from.len() < 2 {
        return;
    }
    let names: Vec<Vec<String>> = select.from.iter().map(item_names).collect();
    let columns: Vec<Vec<String>> = match select
        .from
        .iter()
        .map(|tr| item_columns(catalog, tr))
        .collect::<Option<Vec<_>>>()
    {
        Some(c) => c,
        // Unknown table: name resolution is unreliable, stay silent.
        None => return,
    };
    // Which FROM item does a column reference belong to? Qualified refs
    // match by binding name; unqualified ones by unique column ownership.
    let owner = |e: &Expr| -> Option<usize> {
        let (qualifier, name) = column_key(e)?;
        match qualifier {
            Some(q) => names.iter().position(|ns| ns.contains(&q)),
            None => {
                let mut owners = columns.iter().enumerate().filter(|(_, cs)| {
                    cs.contains(&name)
                });
                let first = owners.next()?.0;
                owners.next().is_none().then_some(first)
            }
        }
    };
    // Union-find over FROM items, linked by `a.x = b.y` conjuncts.
    let mut parent: Vec<usize> = (0..select.from.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for c in conjs {
        if let Expr::Binary { left, op: BinaryOp::Eq, right } = c {
            if let (Some(a), Some(b)) = (owner(left), owner(right)) {
                if a != b {
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    parent[ra] = rb;
                }
            }
        }
    }
    let root0 = find(&mut parent, 0);
    for i in 1..select.from.len() {
        if find(&mut parent, i) != root0 {
            out.push(
                Diagnostic::warning(
                    "L003",
                    format!(
                        "FROM item `{}` has no equi-join link to `{}` — this \
                         runs as an implicit cross join",
                        names[i].join(", "),
                        names[0].join(", "),
                    ),
                )
                .try_span_of(source, &names[i].join(", ")),
            );
            // One diagnostic per disconnected component is enough.
            let (ri, r0) = (find(&mut parent, i), root0);
            parent[ri] = r0;
        }
    }
}

// ---- L004: implicit string<->numeric coercion ------------------------------

fn coercing_comparisons(
    schema: &Schema,
    select: &Select,
    source: &str,
    out: &mut Vec<Diagnostic>,
) {
    let mut exprs: Vec<&Expr> = Vec::new();
    for p in &select.projections {
        if let SelectItem::Expr { expr, .. } = p {
            exprs.push(expr);
        }
    }
    exprs.extend(select.filter.iter());
    exprs.extend(select.having.iter());
    for tr in &select.from {
        collect_on(tr, &mut exprs);
    }
    let column_type = |e: &Expr| -> Option<DataType> {
        if let Expr::Column { qualifier, name } = e {
            schema
                .resolve(qualifier.as_deref(), name)
                .ok()
                .map(|i| schema.columns[i].data_type)
        } else {
            None
        }
    };
    for root in exprs {
        root.visit(&mut |e| {
            if let Expr::Binary { left, op, right } = e {
                if !op.is_comparison() {
                    return;
                }
                let check = |col: &Expr, lit: &Expr, out: &mut Vec<Diagnostic>| {
                    let (Some(ct), Some(v)) = (column_type(col), literal(lit)) else {
                        return;
                    };
                    let Some(vt) = v.data_type() else { return };
                    let mismatched = matches!(
                        (ct, vt),
                        (DataType::Text, DataType::Int | DataType::Float)
                            | (DataType::Int | DataType::Float, DataType::Text)
                    );
                    if mismatched {
                        out.push(
                            Diagnostic::warning(
                                "L004",
                                format!(
                                    "comparison `{e}` forces implicit {ct}↔{vt} \
                                     coercion — compare like types instead"
                                ),
                            )
                            .try_span_of(source, &fragment(e)),
                        );
                    }
                };
                check(left, right, out);
                check(right, left, out);
            }
        });
    }
}

fn collect_on<'a>(tr: &'a TableRef, out: &mut Vec<&'a Expr>) {
    if let TableRef::Join { left, right, on, .. } = tr {
        collect_on(left, out);
        collect_on(right, out);
        out.extend(on.iter());
    }
}

// ---- L005: DISTINCT no-op under GROUP BY -----------------------------------

fn distinct_under_group_by(select: &Select, source: &str, out: &mut Vec<Diagnostic>) {
    if !select.distinct || select.group_by.is_empty() {
        return;
    }
    // Rows are one per group; if every group key is projected, projected
    // tuples are already distinct.
    let projected: Vec<&Expr> = select
        .projections
        .iter()
        .filter_map(|p| match p {
            SelectItem::Expr { expr, .. } => Some(expr),
            _ => None,
        })
        .collect();
    let all_keys_projected =
        select.group_by.iter().all(|g| projected.contains(&g));
    if all_keys_projected {
        out.push(
            Diagnostic::warning(
                "L005",
                "DISTINCT is a no-op: every GROUP BY key is projected, so \
                 result rows are already unique"
                    .to_string(),
            )
            .try_span_of(source, "distinct"),
        );
    }
}

// ---- L006: unbound parameters ----------------------------------------------

fn unbound_params(select: &Select, source: &str, out: &mut Vec<Diagnostic>) {
    let slots = crate::sql::parser::collect_params(select);
    if slots.is_empty() {
        return;
    }
    let rendered: Vec<String> = slots
        .iter()
        .map(|s| match &s.name {
            Some(n) => format!("${n}"),
            None => "?".to_string(),
        })
        .collect();
    let first = rendered[0].clone();
    out.push(
        Diagnostic::warning(
            "L006",
            format!(
                "statement has {} unbound parameter{} ({}) — prepare it and \
                 bind values before executing",
                slots.len(),
                if slots.len() == 1 { "" } else { "s" },
                rendered.join(", "),
            ),
        )
        .try_span_of(source, &first),
    );
}

#[cfg(test)]
mod tests {
    use crate::db::Database;

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE landfill (name TEXT, city TEXT, tons FLOAT);
             CREATE TABLE elem (elem_name TEXT, landfill_name TEXT, amount INT);",
        )
        .unwrap();
        db
    }

    fn codes(db: &Database, sql: &str) -> Vec<&'static str> {
        db.lint(sql).unwrap().iter().map(|d| d.code).collect()
    }

    #[test]
    fn l001_contradictory_equalities_fire() {
        let db = db();
        let diags = db
            .lint("SELECT name FROM landfill WHERE city = 'a' AND city = 'b'")
            .unwrap();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "L001");
        assert!(diags[0].span.is_some(), "span should locate the conjunct");
        assert_eq!(
            codes(&db, "SELECT name FROM landfill WHERE city = 'a' AND city <> 'a'"),
            vec!["L001"]
        );
        assert_eq!(codes(&db, "SELECT name FROM landfill WHERE 1 = 2"), vec!["L001"]);
    }

    #[test]
    fn l001_stays_quiet_on_satisfiable_predicates() {
        let db = db();
        assert!(codes(&db, "SELECT name FROM landfill WHERE city = 'a' AND name = 'b'")
            .is_empty());
        assert!(codes(&db, "SELECT name FROM landfill WHERE city = 'a' OR city = 'b'")
            .is_empty());
        // Same column, different qualifiers — not a contradiction.
        assert!(codes(
            &db,
            "SELECT a.name FROM landfill AS a, landfill AS b \
             WHERE a.name = b.name AND a.city = 'x' AND b.city = 'y'"
        )
        .is_empty());
    }

    #[test]
    fn l002_constant_truths_and_self_comparisons_fire() {
        let db = db();
        assert_eq!(codes(&db, "SELECT name FROM landfill WHERE 1 = 1"), vec!["L002"]);
        assert_eq!(
            codes(&db, "SELECT name FROM landfill WHERE city = city"),
            vec!["L002"]
        );
        assert!(codes(&db, "SELECT name FROM landfill WHERE city = name").is_empty());
    }

    #[test]
    fn l003_cross_join_detection() {
        let db = db();
        assert_eq!(
            codes(&db, "SELECT name FROM landfill, elem"),
            vec!["L003"],
            "no link at all"
        );
        assert!(
            codes(
                &db,
                "SELECT name FROM landfill, elem WHERE name = landfill_name"
            )
            .is_empty(),
            "unqualified equi-link connects the items"
        );
        assert!(
            codes(
                &db,
                "SELECT l.name FROM landfill AS l, elem AS e \
                 WHERE l.name = e.landfill_name"
            )
            .is_empty(),
            "qualified equi-link connects the items"
        );
        // Three items, one disconnected.
        assert_eq!(
            codes(
                &db,
                "SELECT l.name FROM landfill AS l, elem AS e, landfill AS x \
                 WHERE l.name = e.landfill_name"
            ),
            vec!["L003"]
        );
        // Unknown table: rule stays silent (planner reports the error).
        assert!(codes(&db, "SELECT 1 FROM landfill, nope").is_empty());
    }

    #[test]
    fn l004_coercion_detection() {
        let db = db();
        assert_eq!(
            codes(&db, "SELECT name FROM landfill WHERE city = 5"),
            vec!["L004"],
            "TEXT column vs numeric literal"
        );
        assert_eq!(
            codes(&db, "SELECT elem_name FROM elem WHERE amount > 'high'"),
            vec!["L004"],
            "INT column vs string literal"
        );
        assert!(codes(&db, "SELECT name FROM landfill WHERE tons > 5").is_empty());
        assert!(codes(&db, "SELECT name FROM landfill WHERE city = 'Torino'").is_empty());
    }

    #[test]
    fn l005_distinct_group_by() {
        let db = db();
        assert_eq!(
            codes(&db, "SELECT DISTINCT city FROM landfill GROUP BY city"),
            vec!["L005"]
        );
        // Key not projected: rows can repeat, DISTINCT is meaningful.
        assert!(codes(
            &db,
            "SELECT DISTINCT COUNT(*) FROM landfill GROUP BY city"
        )
        .is_empty());
        assert!(codes(&db, "SELECT DISTINCT city FROM landfill").is_empty());
    }

    #[test]
    fn l006_unbound_params_in_adhoc_statements() {
        let db = db();
        assert_eq!(
            codes(&db, "SELECT name FROM landfill WHERE city = $c"),
            vec!["L006"]
        );
        assert!(codes(&db, "SELECT name FROM landfill WHERE city = 'a'").is_empty());
        // Prepared handles expect parameters: no L006 there.
        let p = db.prepare("SELECT name FROM landfill WHERE city = $c").unwrap();
        assert!(p.warnings().is_empty(), "{:?}", p.warnings());
    }

    #[test]
    fn union_members_and_subqueries_are_linted() {
        let db = db();
        assert_eq!(
            codes(
                &db,
                "SELECT name FROM landfill WHERE city = 'a' \
                 UNION SELECT name FROM landfill WHERE 1 = 2"
            ),
            vec!["L001"]
        );
        assert_eq!(
            codes(
                &db,
                "SELECT name FROM landfill WHERE name IN \
                 (SELECT landfill_name FROM elem WHERE amount = 1 AND amount = 2)"
            ),
            vec!["L001"]
        );
    }

    #[test]
    fn non_select_statements_produce_no_diagnostics() {
        let db = db();
        assert!(db.lint("INSERT INTO landfill VALUES ('a', 'b', 1.0)").unwrap().is_empty());
        assert!(db.lint("CREATE TABLE t2 (x INT)").unwrap().is_empty());
    }

    #[test]
    fn prepared_handles_carry_warnings() {
        let db = db();
        let p = db
            .prepare("SELECT name FROM landfill WHERE city = 'a' AND city = 'b'")
            .unwrap();
        assert_eq!(p.warnings().len(), 1);
        assert_eq!(p.warnings()[0].code, "L001");
    }
}
