//! Aggregate functions: COUNT / SUM / AVG / MIN / MAX, with DISTINCT.

use std::collections::HashSet;

use crate::error::{Error, Result};
use crate::value::Value;

/// Which aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    CountStar,
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFn {
    /// Parse a function name used in aggregate position. `star` selects
    /// `COUNT(*)`.
    pub fn parse(name: &str, star: bool) -> Result<AggFn> {
        let up = name.to_ascii_uppercase();
        if star {
            return if up == "COUNT" {
                Ok(AggFn::CountStar)
            } else {
                Err(Error::plan(format!("`{name}(*)` is not a valid aggregate")))
            };
        }
        match up.as_str() {
            "COUNT" => Ok(AggFn::Count),
            "SUM" => Ok(AggFn::Sum),
            "AVG" => Ok(AggFn::Avg),
            "MIN" => Ok(AggFn::Min),
            "MAX" => Ok(AggFn::Max),
            _ => Err(Error::plan(format!("unknown aggregate `{name}`"))),
        }
    }
}

/// Incremental accumulator for one aggregate over one group.
#[derive(Debug)]
pub struct Accumulator {
    func: AggFn,
    distinct: bool,
    seen: HashSet<Value>,
    count: i64,
    sum_i: i64,
    sum_f: f64,
    saw_float: bool,
    extremum: Option<Value>,
}

impl Accumulator {
    pub fn new(func: AggFn, distinct: bool) -> Self {
        Accumulator {
            func,
            distinct,
            seen: HashSet::new(),
            count: 0,
            sum_i: 0,
            sum_f: 0.0,
            saw_float: false,
            extremum: None,
        }
    }

    /// Feed one input value. For `COUNT(*)` pass `Value::Bool(true)` (any
    /// non-NULL value); SQL NULLs are ignored by all aggregates except
    /// `COUNT(*)`, whose input here is never NULL.
    pub fn update(&mut self, v: &Value) -> Result<()> {
        if self.func != AggFn::CountStar && v.is_null() {
            return Ok(());
        }
        if self.distinct && !self.seen.insert(v.clone()) {
            return Ok(());
        }
        match self.func {
            AggFn::CountStar | AggFn::Count => self.count += 1,
            AggFn::Sum | AggFn::Avg => {
                self.count += 1;
                match v {
                    Value::Int(i) => self.sum_i = self.sum_i.wrapping_add(*i),
                    Value::Float(f) => {
                        self.saw_float = true;
                        self.sum_f += f;
                    }
                    other => {
                        return Err(Error::eval(format!(
                            "cannot aggregate non-numeric value {other}"
                        )))
                    }
                }
            }
            AggFn::Min => {
                let replace = match &self.extremum {
                    None => true,
                    Some(cur) => v.sql_cmp(cur) == Some(std::cmp::Ordering::Less),
                };
                if replace {
                    self.extremum = Some(v.clone());
                }
            }
            AggFn::Max => {
                let replace = match &self.extremum {
                    None => true,
                    Some(cur) => v.sql_cmp(cur) == Some(std::cmp::Ordering::Greater),
                };
                if replace {
                    self.extremum = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Final aggregate value. Empty-input semantics follow SQL: COUNT → 0,
    /// everything else → NULL.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFn::CountStar | AggFn::Count => Value::Int(self.count),
            AggFn::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.saw_float {
                    Value::Float(self.sum_f + self.sum_i as f64)
                } else {
                    Value::Int(self.sum_i)
                }
            }
            AggFn::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float((self.sum_f + self.sum_i as f64) / self.count as f64)
                }
            }
            AggFn::Min | AggFn::Max => self.extremum.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFn, distinct: bool, vals: &[Value]) -> Value {
        let mut acc = Accumulator::new(func, distinct);
        for v in vals {
            acc.update(v).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn count_ignores_nulls() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(2)];
        assert_eq!(run(AggFn::Count, false, &vals), Value::Int(2));
    }

    #[test]
    fn count_star_counts_everything() {
        let mut acc = Accumulator::new(AggFn::CountStar, false);
        for _ in 0..5 {
            acc.update(&Value::Bool(true)).unwrap();
        }
        assert_eq!(acc.finish(), Value::Int(5));
    }

    #[test]
    fn sum_int_stays_int_sum_mixed_floats() {
        let ints = vec![Value::Int(1), Value::Int(2)];
        assert_eq!(run(AggFn::Sum, false, &ints), Value::Int(3));
        let mixed = vec![Value::Int(1), Value::Float(0.5)];
        assert_eq!(run(AggFn::Sum, false, &mixed), Value::Float(1.5));
    }

    #[test]
    fn avg_is_float() {
        let vals = vec![Value::Int(1), Value::Int(2)];
        assert_eq!(run(AggFn::Avg, false, &vals), Value::Float(1.5));
    }

    #[test]
    fn empty_input_semantics() {
        assert_eq!(run(AggFn::Count, false, &[]), Value::Int(0));
        assert_eq!(run(AggFn::Sum, false, &[]), Value::Null);
        assert_eq!(run(AggFn::Avg, false, &[]), Value::Null);
        assert_eq!(run(AggFn::Min, false, &[]), Value::Null);
    }

    #[test]
    fn min_max_strings() {
        let vals = vec![Value::from("pb"), Value::from("as"), Value::from("hg")];
        assert_eq!(run(AggFn::Min, false, &vals), Value::from("as"));
        assert_eq!(run(AggFn::Max, false, &vals), Value::from("pb"));
    }

    #[test]
    fn distinct_dedupes() {
        let vals = vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Null];
        assert_eq!(run(AggFn::Count, true, &vals), Value::Int(2));
        assert_eq!(run(AggFn::Sum, true, &vals), Value::Int(3));
    }

    #[test]
    fn sum_of_strings_is_error() {
        let mut acc = Accumulator::new(AggFn::Sum, false);
        assert!(acc.update(&Value::from("x")).is_err());
    }

    #[test]
    fn parse_names() {
        assert_eq!(AggFn::parse("count", true).unwrap(), AggFn::CountStar);
        assert_eq!(AggFn::parse("SUM", false).unwrap(), AggFn::Sum);
        assert!(AggFn::parse("sum", true).is_err());
        assert!(AggFn::parse("median", false).is_err());
    }
}
