// srclint: allow(R002): the spool state machine guarantees an open (not done) spool still owns its source
//! Streaming (pull-based) plan execution with morsel-driven parallelism.
//!
//! [`stream_plan`] lowers a [`Plan`] into an iterator of rows. Pipelined
//! operators — scans, filters, projections, probe sides of joins, LIMIT,
//! UNION concatenation, DISTINCT — produce rows on demand, so a consumer
//! that stops early (a `LIMIT k`, a client that abandons its cursor)
//! stops the upstream work instead of truncating a fully materialised
//! result. Blocking operators (SORT, GROUP BY, the build side of a hash
//! join) still drain their input, exactly as a production Volcano engine
//! would.
//!
//! Base-table access pins a [`TableSnapshot`] once per cursor: the scan
//! streams from an immutable copy-on-write heap, so a cursor opened
//! before a concurrent `DELETE`/`INSERT`/`TRUNCATE` sees exactly the rows
//! of its snapshot — no skipped rows, no double reads, and no lock held
//! between batches.
//!
//! When the executor runs with a parallel [`WorkerPool`] (see
//! `Database::set_exec_threads`), scan→filter→project pipelines and the
//! probe side of hash joins are executed as **morsels**: one wave of
//! `threads × SCAN_BATCH` snapshot rows is partitioned across the pool
//! and merged back in snapshot order, so parallel execution is
//! deterministic and `LIMIT k` still stops the scan after at most one
//! wave. The pinned snapshot is what makes this safe — workers share
//! borrowed slices without any locking.
//!
//! The executor *consumes* its plan (operators own their state), which is
//! why [`Plan`] is `Clone`: a cached prepared statement clones its plan
//! template per execution.
//!
//! Base-table rows are fetched in batches of [`SCAN_BATCH`] and counted in
//! a shared [`AtomicU64`], so callers can observe how much of the heap a
//! query actually touched — the `LIMIT` short-circuit is measurable, not
//! just asserted.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use crosse_exec::{CancelToken, WorkerPool};
use parking_lot::Mutex;

use crate::db::RowSet;
use crate::error::{Error, Result};
use crate::plan::{AggSpec, IndexLookup, Plan, SortKey};
use crate::schema::Schema;
use crate::sql::ast::JoinKind;
use crate::storage::{Table, TableSnapshot};
use crate::value::{Row, Value};

use super::aggregate::Accumulator;
use super::expr::BoundExpr;
use super::fasthash::FastBuild;

/// The executor's internal hash-table types (join builds, dedup sets,
/// group indexes) use the keyed-for-speed [`FastBuild`] hasher — see
/// `exec/fasthash.rs` for why HashDoS keying is not needed here.
type RowKeyMap<V> = HashMap<Vec<Value>, V, FastBuild>;
type RowSeen = HashSet<Row, FastBuild>;

/// Shared hash-join builds of one execution, keyed by
/// `(spool id, key-expression fingerprint)`.
type BuildRegistry = HashMap<(usize, String), Arc<BuiltSide>>;

/// Rows copied out of a pinned snapshot per cursor step; also the morsel
/// size for parallel pipelines.
pub const SCAN_BATCH: usize = 1024;

/// Minimum snapshot size before a parallel pipeline spawns workers —
/// below this the per-wave thread spawn costs more than the scan.
pub const PARALLEL_MIN_ROWS: usize = 4096;

type BoxRowIter = Box<dyn Iterator<Item = Result<Row>> + Send>;

/// Shared execution state threaded through plan lowering: the scanned-rows
/// counter, the worker pool for morsel-parallel operators, and the spool
/// registry backing [`Plan::Shared`] nodes (one spool per shared-subtree
/// id per execution).
#[derive(Clone)]
pub struct ExecCtx {
    scanned: Arc<AtomicU64>,
    pool: Arc<WorkerPool>,
    spools: Arc<Mutex<HashMap<usize, Arc<Spool>>>>,
    /// Hash-join build sides over shared spools, keyed by
    /// `(spool id, key-expression fingerprint)` — joins that hash the
    /// same spooled input on the same keys share one build.
    builds: Arc<Mutex<BuildRegistry>>,
    /// Cooperative cancellation handle, polled at batch boundaries (scan
    /// batches, morsel waves, dedup blocks, spool refills, join output
    /// blocks). Captured from the ambient thread-local token at context
    /// construction, so the token set by a serving layer reaches every
    /// operator without parameter threading.
    cancel: CancelToken,
}

impl ExecCtx {
    pub fn new(threads: usize) -> Self {
        Self::with_cancel(threads, CancelToken::current())
    }

    /// A context with an explicit cancellation token (overrides the
    /// ambient one).
    pub fn with_cancel(threads: usize, cancel: CancelToken) -> Self {
        ExecCtx {
            scanned: Arc::new(AtomicU64::new(0)),
            pool: Arc::new(WorkerPool::new(threads)),
            spools: Arc::new(Mutex::new_labeled("exec.spools", HashMap::new())),
            builds: Arc::new(Mutex::new_labeled("exec.builds", HashMap::new())),
            cancel,
        }
    }
}

// ---- shared-subtree spools -------------------------------------------------

/// The once-per-execution materialisation behind a [`Plan::Shared`] node.
///
/// The first consumer to be lowered opens the source pipeline (pinning
/// its base-table snapshots right then, so every consumer reads the same
/// point-in-time data even when members of a compound start at different
/// times); all consumers then pull through [`SpoolReader`]s that fill the
/// buffer incrementally, one [`SCAN_BATCH`] per refill. Filling is lazy —
/// a `LIMIT` that satisfies every consumer early leaves the tail of the
/// source unevaluated — and the source runs through the ordinary
/// `stream_plan` lowering, so a spooled `Filter(Scan)` fragment still
/// executes morsel-parallel on the context's worker pool.
struct Spool {
    state: Mutex<SpoolState>,
}

struct SpoolState {
    source: Option<BoxRowIter>,
    rows: Vec<Row>,
    /// A source error ends the spool; every reader replays it (after the
    /// rows buffered before it) exactly as a solo consumer would see it.
    error: Option<Error>,
    done: bool,
}

impl Spool {
    fn new(source: BoxRowIter) -> Self {
        Spool {
            state: Mutex::new_labeled("exec.spool.state", SpoolState {
                source: Some(source),
                rows: Vec::new(),
                error: None,
                done: false,
            }),
        }
    }
}

/// One consumer's cursor over a [`Spool`]: copies buffered rows out in
/// batches (one lock per [`SCAN_BATCH`], not per row) and advances the
/// shared materialisation when it reaches the frontier.
struct SpoolReader {
    spool: Arc<Spool>,
    /// Next spool-buffer position this reader has not yet copied.
    pos: usize,
    batch: std::vec::IntoIter<Row>,
    cancel: CancelToken,
    finished: bool,
}

impl SpoolReader {
    fn new(spool: Arc<Spool>, cancel: CancelToken) -> Self {
        SpoolReader { spool, pos: 0, batch: Vec::new().into_iter(), cancel, finished: false }
    }
}

impl Iterator for SpoolReader {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(row) = self.batch.next() {
                return Some(Ok(row));
            }
            if self.finished {
                return None;
            }
            // Refill boundary: poll before taking the spool lock, so a
            // cancelled consumer stops without advancing the shared
            // materialisation. Other readers of the spool are unaffected.
            if let Err(i) = self.cancel.check() {
                self.finished = true;
                return Some(Err(Error::Interrupted(i)));
            }
            let mut st = self.spool.state.lock();
            if self.pos < st.rows.len() {
                let hi = (self.pos + SCAN_BATCH).min(st.rows.len());
                let mut copied = Vec::with_capacity(hi - self.pos);
                copied.extend_from_slice(&st.rows[self.pos..hi]);
                self.batch = copied.into_iter();
                self.pos = hi;
                continue;
            }
            if st.done {
                self.finished = true;
                return st.error.clone().map(Err);
            }
            // At the frontier: advance the shared materialisation by one
            // batch. `done` above guarantees the source is still present.
            let mut source = st.source.take().expect("open spool has a source");
            for _ in 0..SCAN_BATCH {
                match source.next() {
                    Some(Ok(row)) => st.rows.push(row),
                    Some(Err(e)) => {
                        st.error = Some(e);
                        st.done = true;
                        break;
                    }
                    None => {
                        st.done = true;
                        break;
                    }
                }
            }
            if !st.done {
                st.source = Some(source);
            }
        }
    }
}

/// A streaming result cursor: the output schema plus a lazy row iterator.
///
/// `Rows` implements `Iterator<Item = Result<Row>>`; pull rows one at a
/// time, or use [`Rows::collect_rows`] to materialise the remainder into a
/// [`RowSet`] (the adapter that keeps pre-cursor call sites working).
pub struct Rows {
    schema: Schema,
    iter: BoxRowIter,
    scanned: Arc<AtomicU64>,
}

impl Rows {
    /// Lower a plan into a sequential cursor. The plan is consumed; clone
    /// a cached template first.
    pub fn from_plan(plan: Plan) -> Result<Rows> {
        Self::from_plan_parallel(plan, 1)
    }

    /// Lower a plan into a cursor executing with up to `threads` workers
    /// for morsel-parallel operators (1 = fully sequential). Picks up the
    /// ambient [`CancelToken`] if one is installed on this thread.
    pub fn from_plan_parallel(plan: Plan, threads: usize) -> Result<Rows> {
        Self::lower(plan, ExecCtx::new(threads))
    }

    /// Lower a plan into a cursor that cooperatively honours `cancel`:
    /// once the token trips (or its deadline passes), the cursor yields
    /// `Error::Interrupted` at the next batch boundary instead of running
    /// to completion — [`Rows::rows_scanned`] then proves the scan stopped
    /// short.
    pub fn from_plan_with(plan: Plan, threads: usize, cancel: CancelToken) -> Result<Rows> {
        Self::lower(plan, ExecCtx::with_cancel(threads, cancel))
    }

    fn lower(plan: Plan, ctx: ExecCtx) -> Result<Rows> {
        let schema = plan.schema().clone();
        let scanned = Arc::clone(&ctx.scanned);
        let iter = stream_plan(plan, ctx)?;
        Ok(Rows { schema, iter, scanned })
    }

    /// Wrap an already-materialised result (used by layers that post-
    /// process rows eagerly but still expose the cursor API).
    pub fn from_rowset(rows: RowSet) -> Rows {
        let scanned = Arc::new(AtomicU64::new(rows.rows.len() as u64));
        Rows {
            schema: rows.schema,
            iter: Box::new(rows.rows.into_iter().map(Ok)),
            scanned,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Base-table rows fetched so far. A `LIMIT k` pipeline over a large
    /// table stops within one scan wave of `k`, and this counter proves
    /// it (it is an atomic, so it stays accurate when morsels run on
    /// worker threads).
    pub fn rows_scanned(&self) -> u64 {
        self.scanned.load(AtomicOrdering::Relaxed)
    }

    /// Pull the next row (`None` when exhausted).
    pub fn next_row(&mut self) -> Option<Result<Row>> {
        self.iter.next()
    }

    /// Drain the cursor into a materialised row set.
    pub fn collect_rows(self) -> Result<RowSet> {
        let schema = self.schema;
        let rows: Vec<Row> = self.iter.collect::<Result<_>>()?;
        Ok(RowSet { schema, rows })
    }
}

impl Iterator for Rows {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        self.iter.next()
    }
}

impl std::fmt::Debug for Rows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rows")
            .field("schema", &self.schema)
            .field("rows_scanned", &self.rows_scanned())
            .finish_non_exhaustive()
    }
}

/// Incremental base-table scan over a snapshot pinned at cursor open: a
/// point-in-time view, streamed in [`SCAN_BATCH`] steps without holding
/// any lock.
struct TableCursor {
    snap: TableSnapshot,
    pos: usize,
    scanned: Arc<AtomicU64>,
    cancel: CancelToken,
    interrupted: bool,
}

impl TableCursor {
    fn new(table: &Table, scanned: Arc<AtomicU64>, cancel: CancelToken) -> Self {
        TableCursor { snap: table.snapshot(), pos: 0, scanned, cancel, interrupted: false }
    }
}

impl Iterator for TableCursor {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.interrupted || self.pos >= self.snap.len() {
            return None;
        }
        if self.pos.is_multiple_of(SCAN_BATCH) {
            // Batch boundary: poll the cancel token before charging the
            // next batch, so an interrupted scan leaves the fetched-rows
            // counter strictly short of the table.
            if let Err(i) = self.cancel.check() {
                self.interrupted = true;
                return Some(Err(Error::Interrupted(i)));
            }
            // Charge a whole batch as it starts (the pre-snapshot executor
            // copied out per batch; the counter's granularity is kept).
            let n = (self.snap.len() - self.pos).min(SCAN_BATCH);
            self.scanned.fetch_add(n as u64, AtomicOrdering::Relaxed);
        }
        let row = self.snap.rows()[self.pos].clone();
        self.pos += 1;
        Some(Ok(row))
    }
}

// ---- morsel-parallel pipelines ---------------------------------------------

/// The per-morsel work of a parallelised pipeline fragment. Workers apply
/// it to disjoint slices of one pinned snapshot; the results are merged
/// back in snapshot order.
enum MorselWork {
    /// `Scan → [Filter] → [Project]` collapsed into one pass.
    FilterProject {
        predicate: Option<BoundExpr>,
        exprs: Option<Vec<BoundExpr>>,
    },
    /// The probe side of a hash join (optionally pre-filtered): each
    /// snapshot row probes the shared build table.
    HashProbe {
        prefilter: Option<BoundExpr>,
        built: Arc<BuiltSide>,
        left_keys: Vec<BoundExpr>,
        residual: Option<BoundExpr>,
        kind: JoinKind,
        right_width: usize,
        /// Fused projection over the combined row (inner joins only).
        project: Option<Vec<BoundExpr>>,
    },
}

/// A materialised hash-join build side: the right-hand rows plus the key
/// table over them. Ref-counted so two joins whose build inputs resolve
/// to the same shared spool (and use the same key expressions) build it
/// once per execution and probe one table.
pub(crate) struct BuiltSide {
    table: RowKeyMap<Vec<usize>>,
    rows: Vec<Row>,
}

impl BuiltSide {
    /// Evaluate `keys` over `rows` and index them. NULL keys never
    /// participate (SQL equi-join); keys are the evaluated values
    /// themselves — `Value`'s Eq/Hash carry grouping semantics.
    fn build(rows: Vec<Row>, keys: &[BoundExpr]) -> Result<BuiltSide> {
        let mut table: RowKeyMap<Vec<usize>> = RowKeyMap::default();
        table.reserve(rows.len());
        'rows: for (i, r) in rows.iter().enumerate() {
            let mut key = Vec::with_capacity(keys.len());
            for k in keys {
                let v = k.eval(r)?;
                if v.is_null() {
                    continue 'rows;
                }
                key.push(v);
            }
            table.entry(key).or_default().push(i);
        }
        Ok(BuiltSide { table, rows })
    }
}

impl MorselWork {
    fn apply(&self, morsel: &[Row]) -> Result<Vec<Row>> {
        match self {
            MorselWork::FilterProject { predicate, exprs } => {
                let mut out = Vec::new();
                for row in morsel {
                    if let Some(p) = predicate {
                        if !p.eval_predicate(row)? {
                            continue;
                        }
                    }
                    match exprs {
                        Some(es) => {
                            let mut projected = Vec::with_capacity(es.len());
                            for e in es {
                                projected.push(e.eval(row)?);
                            }
                            out.push(projected);
                        }
                        None => out.push(row.clone()),
                    }
                }
                Ok(out)
            }
            MorselWork::HashProbe {
                prefilter,
                built,
                left_keys,
                residual,
                kind,
                right_width,
                project,
            } => {
                let mut out = Vec::new();
                // Probe-key and combined-row buffers for the whole morsel
                // — cleared per row, never re-allocated.
                let mut key: Vec<Value> = Vec::with_capacity(left_keys.len());
                let mut scratch: Vec<Value> = Vec::new();
                for l in morsel {
                    if let Some(p) = prefilter {
                        if !p.eval_predicate(l)? {
                            continue;
                        }
                    }
                    let before = out.len();
                    key.clear();
                    let mut null_key = false;
                    for k in left_keys {
                        let v = k.eval(l)?;
                        if v.is_null() {
                            null_key = true;
                            break;
                        }
                        key.push(v);
                    }
                    if !null_key {
                        if let Some(matches) = built.table.get(&key) {
                            for &ri in matches {
                                match project {
                                    None => {
                                        let mut combined = l.to_vec();
                                        combined
                                            .extend(built.rows[ri].iter().cloned());
                                        if let Some(p) = residual {
                                            if !p.eval_predicate(&combined)? {
                                                continue;
                                            }
                                        }
                                        out.push(combined);
                                    }
                                    Some(exprs) => {
                                        scratch.clear();
                                        scratch.extend_from_slice(l);
                                        scratch
                                            .extend(built.rows[ri].iter().cloned());
                                        if let Some(p) = residual {
                                            if !p.eval_predicate(&scratch)? {
                                                continue;
                                            }
                                        }
                                        let mut projected =
                                            Vec::with_capacity(exprs.len());
                                        for e in exprs {
                                            projected.push(e.eval(&scratch)?);
                                        }
                                        out.push(projected);
                                    }
                                }
                            }
                        }
                    }
                    if out.len() == before && *kind == JoinKind::Left {
                        let mut combined = l.to_vec();
                        combined.extend(std::iter::repeat_n(Value::Null, *right_width));
                        out.push(combined);
                    }
                }
                Ok(out)
            }
        }
    }
}

/// Wave-based morsel scan: pulls `threads × SCAN_BATCH` snapshot rows per
/// wave, partitions them across the pool, and yields the merged results in
/// snapshot order. Lazy between waves, so `LIMIT k` consumers stop the
/// scan after the wave that satisfied them. Rows produced before a failing
/// morsel are still yielded (sequential-order error semantics); the error
/// then ends the stream.
struct MorselScan {
    snap: TableSnapshot,
    pos: usize,
    pool: Arc<WorkerPool>,
    work: Arc<MorselWork>,
    scanned: Arc<AtomicU64>,
    cancel: CancelToken,
    buf: std::vec::IntoIter<Row>,
    pending_err: Option<Error>,
    done: bool,
}

impl MorselScan {
    fn new(
        snap: TableSnapshot,
        pool: Arc<WorkerPool>,
        work: MorselWork,
        scanned: Arc<AtomicU64>,
        cancel: CancelToken,
    ) -> Self {
        MorselScan {
            snap,
            pos: 0,
            pool,
            work: Arc::new(work),
            scanned,
            cancel,
            buf: Vec::new().into_iter(),
            pending_err: None,
            done: false,
        }
    }
}

impl Iterator for MorselScan {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(row) = self.buf.next() {
                return Some(Ok(row));
            }
            if let Some(e) = self.pending_err.take() {
                self.done = true;
                return Some(Err(e));
            }
            if self.done || self.pos >= self.snap.len() {
                return None;
            }
            // Wave boundary: poll the cancel token before dispatching the
            // next `threads × SCAN_BATCH` rows to the pool.
            if let Err(i) = self.cancel.check() {
                self.done = true;
                return Some(Err(Error::Interrupted(i)));
            }
            let wave = self.pool.threads() * SCAN_BATCH;
            let hi = (self.pos + wave).min(self.snap.len());
            let slice = &self.snap.rows()[self.pos..hi];
            self.scanned.fetch_add(slice.len() as u64, AtomicOrdering::Relaxed);
            self.pos = hi;
            let work = Arc::clone(&self.work);
            let results: Vec<Result<Vec<Row>>> =
                self.pool.map_chunks(slice, SCAN_BATCH, |_, morsel| work.apply(morsel));
            let mut out: Vec<Row> = Vec::new();
            for r in results {
                match r {
                    Ok(mut rows) => out.append(&mut rows),
                    Err(e) => {
                        // Keep rows of in-order earlier morsels, then fail.
                        self.pending_err = Some(e);
                        break;
                    }
                }
            }
            self.buf = out.into_iter();
        }
    }
}

/// Try to lower `plan` as a morsel-parallel pipeline fragment. Returns the
/// plan unchanged when it is not a recognised fragment (or the pool is
/// sequential, or the table is too small to be worth partitioning).
// The "error" is the unconsumed plan handed back to the sequential path —
// its size is irrelevant (one move, never propagated).
#[allow(clippy::result_large_err)]
fn try_parallel(plan: Plan, ctx: &ExecCtx) -> std::result::Result<BoxRowIter, Plan> {
    if !ctx.pool.is_parallel() {
        return Err(plan);
    }
    // Decompose Scan / Filter(Scan) into (table, scan schema, prefilter);
    // the schema is kept so an undersized fragment reassembles exactly.
    type ScanParts = (Arc<Table>, Schema, Option<BoundExpr>);
    let scan_parts = |p: Plan| -> std::result::Result<ScanParts, Plan> {
        match p {
            Plan::Scan { table, schema } => Ok((table, schema, None)),
            Plan::Filter { input, predicate } => match *input {
                Plan::Scan { table, schema } => Ok((table, schema, Some(predicate))),
                other => Err(Plan::Filter { input: Box::new(other), predicate }),
            },
            other => Err(other),
        }
    };
    // Reassemble a decomposed fragment for the sequential path.
    let reassemble = |table: Arc<Table>, schema: Schema, prefilter: Option<BoundExpr>| {
        let scan = Plan::Scan { table, schema };
        match prefilter {
            Some(predicate) => Plan::Filter { input: Box::new(scan), predicate },
            None => scan,
        }
    };
    match plan {
        Plan::Project { input, exprs, schema } => match scan_parts(*input) {
            Ok((table, scan_schema, prefilter)) => {
                let snap = table.snapshot();
                if snap.len() < PARALLEL_MIN_ROWS {
                    return Err(Plan::Project {
                        input: Box::new(reassemble(table, scan_schema, prefilter)),
                        exprs,
                        schema,
                    });
                }
                Ok(Box::new(MorselScan::new(
                    snap,
                    Arc::clone(&ctx.pool),
                    MorselWork::FilterProject { predicate: prefilter, exprs: Some(exprs) },
                    Arc::clone(&ctx.scanned),
                    ctx.cancel.clone(),
                )))
            }
            Err(other) => Err(Plan::Project { input: Box::new(other), exprs, schema }),
        },
        other => match scan_parts(other) {
            // A bare Scan (no filter) gains nothing from workers — every
            // "morsel" would be a plain copy — so only filtered scans run
            // parallel here.
            Ok((table, scan_schema, Some(predicate))) => {
                let snap = table.snapshot();
                if snap.len() < PARALLEL_MIN_ROWS {
                    return Err(reassemble(table, scan_schema, Some(predicate)));
                }
                Ok(Box::new(MorselScan::new(
                    snap,
                    Arc::clone(&ctx.pool),
                    MorselWork::FilterProject { predicate: Some(predicate), exprs: None },
                    Arc::clone(&ctx.scanned),
                    ctx.cancel.clone(),
                )))
            }
            Ok((table, scan_schema, None)) => Err(reassemble(table, scan_schema, None)),
            Err(other) => Err(other),
        },
    }
}

/// Lower a plan into a lazy row iterator, charging base-table fetches to
/// the context's scanned counter and running recognised pipeline fragments
/// on the context's worker pool.
pub fn stream_plan(plan: Plan, ctx: ExecCtx) -> Result<BoxRowIter> {
    let plan = match try_parallel(plan, &ctx) {
        Ok(iter) => return Ok(iter),
        Err(plan) => plan,
    };
    match plan {
        Plan::Values { rows, .. } => Ok(Box::new(rows.into_iter().map(Ok))),
        Plan::Scan { table, .. } => Ok(Box::new(TableCursor::new(
            &table,
            Arc::clone(&ctx.scanned),
            ctx.cancel.clone(),
        ))),
        Plan::IndexScan { table, column, lookup, .. } => {
            let via_index = match &lookup {
                IndexLookup::Eq(keys) => table.index_lookup_eq(column, keys),
                IndexLookup::Range { low, high } => {
                    table.index_lookup_range(column, as_ref_bound(low), as_ref_bound(high))
                }
            };
            match via_index {
                Some(rows) => {
                    // The index already narrowed the fetch; charge only
                    // what it returned.
                    ctx.scanned.fetch_add(rows.len() as u64, AtomicOrdering::Relaxed);
                    Ok(Box::new(rows.into_iter().map(Ok)))
                }
                // Index dropped between planning and execution: degrade to
                // a filtered streaming scan with identical semantics.
                None => {
                    let cursor = TableCursor::new(
                        &table,
                        Arc::clone(&ctx.scanned),
                        ctx.cancel.clone(),
                    );
                    Ok(Box::new(cursor.filter(move |r| match r {
                        Ok(row) => lookup.matches(&row[column]),
                        Err(_) => true,
                    })))
                }
            }
        }
        Plan::Filter { input, predicate } => {
            let mut child = stream_plan(*input, ctx)?;
            Ok(Box::new(std::iter::from_fn(move || loop {
                match child.next()? {
                    Err(e) => return Some(Err(e)),
                    Ok(row) => match predicate.eval_predicate(&row) {
                        Err(e) => return Some(Err(e)),
                        Ok(true) => return Some(Ok(row)),
                        Ok(false) => continue,
                    },
                }
            })))
        }
        Plan::Project { input, exprs, .. } => {
            // Identity projection: the rows pass through unchanged (output
            // names live on the plan node's schema, not in the rows), so
            // skip the per-row rebuild entirely.
            if exprs.len() == input.schema().len()
                && exprs
                    .iter()
                    .enumerate()
                    .all(|(i, e)| matches!(e, BoundExpr::Column(c) if *c == i))
            {
                return stream_plan(*input, ctx);
            }
            match *input {
                // Fuse the projection into an inner hash join below it:
                // the combined row is built in a reused scratch buffer and
                // projected immediately — one output allocation per match
                // instead of combined + projected.
                Plan::HashJoin {
                    left,
                    right,
                    kind: JoinKind::Inner,
                    left_keys,
                    right_keys,
                    residual,
                    ..
                } => lower_hash_join(
                    *left,
                    *right,
                    JoinKind::Inner,
                    left_keys,
                    right_keys,
                    residual,
                    Some(exprs),
                    ctx,
                ),
                other => {
                    let child = stream_plan(other, ctx)?;
                    Ok(Box::new(child.map(move |r| {
                        let row = r?;
                        let mut projected = Vec::with_capacity(exprs.len());
                        for e in &exprs {
                            projected.push(e.eval(&row)?);
                        }
                        Ok(projected)
                    })))
                }
            }
        }
        Plan::NestedLoopJoin { left, right, kind, predicate, .. } => {
            let right_width = right.schema().len();
            let right_rows: Vec<Row> =
                stream_plan(*right, ctx.clone())?.collect::<Result<_>>()?;
            let cancel = ctx.cancel.clone();
            let left_iter = stream_plan(*left, ctx)?;
            Ok(Box::new(JoinStream::new(
                left_iter,
                kind,
                right_width,
                cancel,
                move |l, out| {
                    for r in &right_rows {
                        let mut combined = l.to_vec();
                        combined.extend(r.iter().cloned());
                        let keep = match &predicate {
                            Some(p) => p.eval_predicate(&combined)?,
                            None => true,
                        };
                        if keep {
                            out.push_back(combined);
                        }
                    }
                    Ok(())
                },
            )))
        }
        Plan::HashJoin { left, right, kind, left_keys, right_keys, residual, .. } => {
            lower_hash_join(*left, *right, kind, left_keys, right_keys, residual, None, ctx)
        }
        Plan::Aggregate { input, group, aggs, .. } => {
            let child = stream_plan(*input, ctx)?;
            let out = aggregate_rows(child, &group, &aggs)?;
            Ok(Box::new(out.into_iter().map(Ok)))
        }
        Plan::Sort { input, keys } => {
            let child = stream_plan(*input, ctx)?;
            let out = sort_rows(child, &keys)?;
            Ok(Box::new(out.into_iter().map(Ok)))
        }
        Plan::Distinct { input } => {
            let cancel = ctx.cancel.clone();
            let child = stream_plan(*input, ctx)?;
            Ok(Box::new(DedupStream::new(child, cancel)))
        }
        Plan::Limit { input, limit, offset } => {
            let mut child = stream_plan(*input, ctx)?;
            let mut to_skip = offset as usize;
            let mut remaining = limit.map(|l| l as usize);
            Ok(Box::new(std::iter::from_fn(move || {
                if remaining == Some(0) {
                    // Short-circuit: never pulls the child again, so the
                    // upstream pipeline (and its base-table scan) stops.
                    return None;
                }
                loop {
                    match child.next()? {
                        Err(e) => return Some(Err(e)),
                        Ok(row) => {
                            if to_skip > 0 {
                                to_skip -= 1;
                                continue;
                            }
                            if let Some(r) = &mut remaining {
                                *r -= 1;
                            }
                            return Some(Ok(row));
                        }
                    }
                }
            })))
        }
        Plan::Union { inputs, all, schema } => {
            let width = schema.len();
            let cancel = ctx.cancel.clone();
            // Members start lazily: a LIMIT satisfied by the first member
            // never executes the later ones.
            let mut pending: VecDeque<Plan> = inputs.into_iter().collect();
            let mut current: Option<BoxRowIter> = None;
            let concat = Box::new(std::iter::from_fn(move || loop {
                let iter = match &mut current {
                    Some(it) => it,
                    None => {
                        let next_plan = pending.pop_front()?;
                        match stream_plan(next_plan, ctx.clone()) {
                            Ok(it) => current.insert(it),
                            Err(e) => return Some(Err(e)),
                        }
                    }
                };
                match iter.next() {
                    None => {
                        current = None;
                        continue;
                    }
                    Some(Err(e)) => return Some(Err(e)),
                    Some(Ok(row)) => {
                        if row.len() != width {
                            return Some(Err(Error::eval(
                                "UNION member produced a row of different width",
                            )));
                        }
                        return Some(Ok(row));
                    }
                }
            }));
            if all {
                Ok(concat)
            } else {
                Ok(Box::new(DedupStream::new(concat, cancel)))
            }
        }
        Plan::Shared { id, input } => {
            // One spool per shared-subtree id per execution. Opening the
            // spool lowers the source pipeline immediately (pinning its
            // snapshots), so every consumer — even one lowered later, e.g.
            // a lazily-started UNION member — replays the same data.
            let existing = ctx.spools.lock().get(&id).cloned();
            let spool = match existing {
                Some(s) => s,
                None => {
                    let source = stream_plan((*input).clone(), ctx.clone())?;
                    let spool = Arc::new(Spool::new(source));
                    ctx.spools.lock().insert(id, Arc::clone(&spool));
                    spool
                }
            };
            Ok(Box::new(SpoolReader::new(spool, ctx.cancel.clone())))
        }
    }
}

/// Streaming duplicate elimination (DISTINCT, deduplicating UNION),
/// vectorised: rows are pulled from the child in [`SCAN_BATCH`] blocks
/// and inserted into the seen-set with capacity reserved per block, so a
/// large dedup never pays per-row incremental rehash growth. Still lazy
/// at block granularity — a `LIMIT k` consumer pulls at most one block
/// beyond its k-th distinct row.
struct DedupStream {
    child: BoxRowIter,
    seen: RowSeen,
    out: std::vec::IntoIter<Row>,
    pending_err: Option<Error>,
    cancel: CancelToken,
    done: bool,
}

impl DedupStream {
    fn new(child: BoxRowIter, cancel: CancelToken) -> Self {
        DedupStream {
            child,
            seen: RowSeen::default(),
            out: Vec::new().into_iter(),
            pending_err: None,
            cancel,
            done: false,
        }
    }
}

impl Iterator for DedupStream {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(row) = self.out.next() {
                return Some(Ok(row));
            }
            if let Some(e) = self.pending_err.take() {
                self.done = true;
                return Some(Err(e));
            }
            if self.done {
                return None;
            }
            // Block boundary: a dedup whose child yields mostly duplicates
            // can run long without producing output, so poll here too.
            if let Err(i) = self.cancel.check() {
                self.done = true;
                return Some(Err(Error::Interrupted(i)));
            }
            // Dedup one block: reserve set capacity for the whole block
            // up front, then insert as rows are pulled.
            self.seen.reserve(SCAN_BATCH);
            let mut fresh = Vec::new();
            for _ in 0..SCAN_BATCH {
                match self.child.next() {
                    Some(Ok(row)) => {
                        if self.seen.insert(row.clone()) {
                            fresh.push(row);
                        }
                    }
                    Some(Err(e)) => {
                        // Yield the fresh rows gathered before the error,
                        // then surface it (sequential-order semantics).
                        self.pending_err = Some(e);
                        break;
                    }
                    None => {
                        self.done = true;
                        break;
                    }
                }
            }
            self.out = fresh.into_iter();
        }
    }
}

/// Lower a hash join (optionally with a projection fused over it).
///
/// The build side is materialised and indexed once; when it sits behind a
/// shared spool, the built table itself is registered in the execution
/// context keyed by `(spool id, key fingerprint)`, so a second join over
/// the same spooled input with the same key expressions probes the same
/// ref-counted [`BuiltSide`] instead of rebuilding it. With `project`
/// (inner joins only), matched rows are assembled in a reused scratch
/// buffer and projected immediately — the wide combined row never hits
/// the heap.
#[allow(clippy::too_many_arguments)]
fn lower_hash_join(
    left: Plan,
    right: Plan,
    kind: JoinKind,
    left_keys: Vec<BoundExpr>,
    right_keys: Vec<BoundExpr>,
    residual: Option<BoundExpr>,
    project: Option<Vec<BoundExpr>>,
    ctx: ExecCtx,
) -> Result<BoxRowIter> {
    let right_width = right.schema().len();
    let build_key = match &right {
        Plan::Shared { id, .. } => Some((*id, format!("{right_keys:?}"))),
        _ => None,
    };
    let cached = build_key
        .as_ref()
        .and_then(|k| ctx.builds.lock().get(k).cloned());
    let built: Arc<BuiltSide> = match cached {
        Some(b) => b,
        None => {
            let right_rows: Vec<Row> =
                stream_plan(right, ctx.clone())?.collect::<Result<_>>()?;
            let b = Arc::new(BuiltSide::build(right_rows, &right_keys)?);
            if let Some(k) = build_key {
                ctx.builds.lock().insert(k, Arc::clone(&b));
            }
            b
        }
    };
    // Partition-parallel probe: when the probe side is a (filtered) scan
    // of a big enough table, workers probe the shared build table over
    // disjoint snapshot morsels, in snapshot order.
    if ctx.pool.is_parallel() && matches!(kind, JoinKind::Inner | JoinKind::Left) {
        let probe_scan = match left {
            Plan::Scan { ref table, .. } => Some((Arc::clone(table), None)),
            Plan::Filter { ref input, ref predicate } => match **input {
                Plan::Scan { ref table, .. } => {
                    Some((Arc::clone(table), Some(predicate.clone())))
                }
                _ => None,
            },
            _ => None,
        };
        if let Some((probe_table, prefilter)) = probe_scan {
            let snap = probe_table.snapshot();
            if snap.len() >= PARALLEL_MIN_ROWS {
                return Ok(Box::new(MorselScan::new(
                    snap,
                    Arc::clone(&ctx.pool),
                    MorselWork::HashProbe {
                        prefilter,
                        built,
                        left_keys,
                        residual,
                        kind,
                        right_width,
                        project,
                    },
                    Arc::clone(&ctx.scanned),
                    ctx.cancel.clone(),
                )));
            }
        }
    }
    let cancel = ctx.cancel.clone();
    let left_iter = stream_plan(left, ctx)?;
    // Probe-key and combined-row scratch: cleared per row, allocated once.
    let mut key: Vec<Value> = Vec::with_capacity(left_keys.len());
    let mut scratch: Vec<Value> = Vec::new();
    Ok(Box::new(JoinStream::new(
        left_iter,
        kind,
        right_width,
        cancel,
        move |l, out| {
            key.clear();
            for k in &left_keys {
                let v = k.eval(l)?;
                if v.is_null() {
                    return Ok(());
                }
                key.push(v);
            }
            if let Some(matches) = built.table.get(&key) {
                for &ri in matches {
                    match &project {
                        None => {
                            let mut combined = l.to_vec();
                            combined.extend(built.rows[ri].iter().cloned());
                            if let Some(p) = &residual {
                                if !p.eval_predicate(&combined)? {
                                    continue;
                                }
                            }
                            out.push_back(combined);
                        }
                        Some(exprs) => {
                            scratch.clear();
                            scratch.extend_from_slice(l);
                            scratch.extend(built.rows[ri].iter().cloned());
                            if let Some(p) = &residual {
                                if !p.eval_predicate(&scratch)? {
                                    continue;
                                }
                            }
                            let mut projected = Vec::with_capacity(exprs.len());
                            for e in exprs {
                                projected.push(e.eval(&scratch)?);
                            }
                            out.push_back(projected);
                        }
                    }
                }
            }
            Ok(())
        },
    )))
}

/// Streams a join: pulls one outer row at a time, expands it into zero or
/// more output rows via `expand`, and pads unmatched outer rows for LEFT
/// joins.
struct JoinStream<F> {
    left: BoxRowIter,
    kind: JoinKind,
    right_width: usize,
    expand: F,
    pending: VecDeque<Row>,
    cancel: CancelToken,
    /// Output rows yielded since the last cancel poll; a cartesian blow-up
    /// produces many rows per outer pull, so the scan-level checks alone
    /// would be too coarse here.
    since_check: usize,
}

impl<F> JoinStream<F>
where
    F: FnMut(&Row, &mut VecDeque<Row>) -> Result<()>,
{
    fn new(
        left: BoxRowIter,
        kind: JoinKind,
        right_width: usize,
        cancel: CancelToken,
        expand: F,
    ) -> Self {
        JoinStream {
            left,
            kind,
            right_width,
            expand,
            pending: VecDeque::new(),
            cancel,
            since_check: 0,
        }
    }
}

impl<F> Iterator for JoinStream<F>
where
    F: FnMut(&Row, &mut VecDeque<Row>) -> Result<()>,
{
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(row) = self.pending.pop_front() {
                self.since_check += 1;
                if self.since_check >= SCAN_BATCH {
                    self.since_check = 0;
                    if let Err(i) = self.cancel.check() {
                        self.pending.clear();
                        return Some(Err(Error::Interrupted(i)));
                    }
                }
                return Some(Ok(row));
            }
            match self.left.next()? {
                Err(e) => return Some(Err(e)),
                Ok(l) => {
                    if let Err(e) = (self.expand)(&l, &mut self.pending) {
                        // Drop any partial expansion of the failed row: a
                        // consumer that keeps pulling past the error must
                        // not see its half-joined output.
                        self.pending.clear();
                        return Some(Err(e));
                    }
                    if self.pending.is_empty() && self.kind == JoinKind::Left {
                        let mut combined = l;
                        combined
                            .extend(std::iter::repeat_n(Value::Null, self.right_width));
                        return Some(Ok(combined));
                    }
                }
            }
        }
    }
}

/// Drain `child` and aggregate it (GROUP BY semantics identical to the
/// materialising executor: first-seen group order, one row for a global
/// aggregate over empty input).
fn aggregate_rows(
    child: BoxRowIter,
    group: &[BoundExpr],
    aggs: &[AggSpec],
) -> Result<Vec<Row>> {
    let mut index: RowKeyMap<usize> = RowKeyMap::default();
    let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
    for row in child {
        let row = row?;
        let mut key_vals = Vec::with_capacity(group.len());
        for g in group {
            key_vals.push(g.eval(&row)?);
        }
        let gi = match index.get(&key_vals) {
            Some(&gi) => gi,
            None => {
                let accs = aggs
                    .iter()
                    .map(|a| Accumulator::new(a.func, a.distinct))
                    .collect();
                // The group's output values and its hash key are the same
                // vector; the clone is a row of refcount bumps.
                index.insert(key_vals.clone(), groups.len());
                groups.push((key_vals, accs));
                groups.len() - 1
            }
        };
        for (a, acc) in aggs.iter().zip(groups[gi].1.iter_mut()) {
            let v = match &a.arg {
                Some(e) => e.eval(&row)?,
                None => Value::Bool(true), // COUNT(*)
            };
            acc.update(&v)?;
        }
    }
    if groups.is_empty() && group.is_empty() {
        let accs: Vec<Accumulator> = aggs
            .iter()
            .map(|a| Accumulator::new(a.func, a.distinct))
            .collect();
        groups.push((Vec::new(), accs));
    }
    Ok(groups
        .into_iter()
        .map(|(mut keys, accs)| {
            keys.extend(accs.iter().map(|a| a.finish()));
            keys
        })
        .collect())
}

/// Drain `child` and sort it (stable, total order, keys precomputed).
fn sort_rows(child: BoxRowIter, keys: &[SortKey]) -> Result<Vec<Row>> {
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();
    for row in child {
        let row = row?;
        let mut kv = Vec::with_capacity(keys.len());
        for k in keys {
            kv.push(k.expr.eval(&row)?);
        }
        keyed.push((kv, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, key) in keys.iter().enumerate() {
            let ord = ka[i].total_cmp(&kb[i]);
            let ord = if key.ascending { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

fn as_ref_bound(b: &std::ops::Bound<Value>) -> std::ops::Bound<&Value> {
    match b {
        std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
        std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
        std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
    }
}
