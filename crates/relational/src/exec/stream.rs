//! Streaming (pull-based) plan execution.
//!
//! [`stream_plan`] lowers a [`Plan`] into an iterator of rows. Pipelined
//! operators — scans, filters, projections, probe sides of joins, LIMIT,
//! UNION concatenation, DISTINCT — produce rows on demand, so a consumer
//! that stops early (a `LIMIT k`, a client that abandons its cursor)
//! stops the upstream work instead of truncating a fully materialised
//! result. Blocking operators (SORT, GROUP BY, the build side of a hash
//! join) still drain their input, exactly as a production Volcano engine
//! would.
//!
//! The executor *consumes* its plan (operators own their state), which is
//! why [`Plan`] is `Clone`: a cached prepared statement clones its plan
//! template per execution.
//!
//! Base-table rows are fetched in batches of [`SCAN_BATCH`] and counted in
//! a shared [`AtomicU64`], so callers can observe how much of the heap a
//! query actually touched — the `LIMIT` short-circuit is measurable, not
//! just asserted.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use crate::db::RowSet;
use crate::error::{Error, Result};
use crate::plan::{AggSpec, IndexLookup, Plan, SortKey};
use crate::schema::Schema;
use crate::sql::ast::JoinKind;
use crate::storage::Table;
use crate::value::{GroupKey, Row, Value};

use super::aggregate::Accumulator;
use super::expr::BoundExpr;

/// Rows copied out of a base table per lock acquisition.
pub const SCAN_BATCH: usize = 1024;

type BoxRowIter = Box<dyn Iterator<Item = Result<Row>> + Send>;

/// A streaming result cursor: the output schema plus a lazy row iterator.
///
/// `Rows` implements `Iterator<Item = Result<Row>>`; pull rows one at a
/// time, or use [`Rows::collect_rows`] to materialise the remainder into a
/// [`RowSet`] (the adapter that keeps pre-cursor call sites working).
pub struct Rows {
    schema: Schema,
    iter: BoxRowIter,
    scanned: Arc<AtomicU64>,
}

impl Rows {
    /// Lower a plan into a cursor. The plan is consumed; clone a cached
    /// template first.
    pub fn from_plan(plan: Plan) -> Result<Rows> {
        let scanned = Arc::new(AtomicU64::new(0));
        let schema = plan.schema().clone();
        let iter = stream_plan(plan, Arc::clone(&scanned))?;
        Ok(Rows { schema, iter, scanned })
    }

    /// Wrap an already-materialised result (used by layers that post-
    /// process rows eagerly but still expose the cursor API).
    pub fn from_rowset(rows: RowSet) -> Rows {
        let scanned = Arc::new(AtomicU64::new(rows.rows.len() as u64));
        Rows {
            schema: rows.schema,
            iter: Box::new(rows.rows.into_iter().map(Ok)),
            scanned,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Base-table rows fetched so far. A `LIMIT k` pipeline over a large
    /// table stops within one scan batch of `k`, and this counter proves
    /// it.
    pub fn rows_scanned(&self) -> u64 {
        self.scanned.load(AtomicOrdering::Relaxed)
    }

    /// Pull the next row (`None` when exhausted).
    pub fn next_row(&mut self) -> Option<Result<Row>> {
        self.iter.next()
    }

    /// Drain the cursor into a materialised row set.
    pub fn collect_rows(self) -> Result<RowSet> {
        let schema = self.schema;
        let rows: Vec<Row> = self.iter.collect::<Result<_>>()?;
        Ok(RowSet { schema, rows })
    }
}

impl Iterator for Rows {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        self.iter.next()
    }
}

impl std::fmt::Debug for Rows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rows")
            .field("schema", &self.schema)
            .field("rows_scanned", &self.rows_scanned())
            .finish_non_exhaustive()
    }
}

/// Incremental base-table scan: copies `SCAN_BATCH` rows per lock
/// acquisition. Unlike [`Table::scan`] this is not a point-in-time
/// snapshot — rows inserted or removed between batches may or may not be
/// observed, which matches the engine's read-committed-style guarantees
/// for analytical scans.
struct TableCursor {
    table: Arc<Table>,
    pos: usize,
    buf: std::vec::IntoIter<Row>,
    done: bool,
    scanned: Arc<AtomicU64>,
}

impl TableCursor {
    fn new(table: Arc<Table>, scanned: Arc<AtomicU64>) -> Self {
        TableCursor { table, pos: 0, buf: Vec::new().into_iter(), done: false, scanned }
    }
}

impl Iterator for TableCursor {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(row) = self.buf.next() {
                return Some(Ok(row));
            }
            if self.done {
                return None;
            }
            let batch = self.table.scan_batch(self.pos, SCAN_BATCH);
            self.pos += batch.len();
            self.scanned.fetch_add(batch.len() as u64, AtomicOrdering::Relaxed);
            if batch.len() < SCAN_BATCH {
                self.done = true;
            }
            if batch.is_empty() {
                return None;
            }
            self.buf = batch.into_iter();
        }
    }
}

/// Lower a plan into a lazy row iterator, charging base-table fetches to
/// `scanned`.
pub fn stream_plan(plan: Plan, scanned: Arc<AtomicU64>) -> Result<BoxRowIter> {
    match plan {
        Plan::Values { rows, .. } => Ok(Box::new(rows.into_iter().map(Ok))),
        Plan::Scan { table, .. } => Ok(Box::new(TableCursor::new(table, scanned))),
        Plan::IndexScan { table, column, lookup, .. } => {
            let via_index = match &lookup {
                IndexLookup::Eq(keys) => table.index_lookup_eq(column, keys),
                IndexLookup::Range { low, high } => {
                    table.index_lookup_range(column, as_ref_bound(low), as_ref_bound(high))
                }
            };
            match via_index {
                Some(rows) => {
                    // The index already narrowed the fetch; charge only
                    // what it returned.
                    scanned.fetch_add(rows.len() as u64, AtomicOrdering::Relaxed);
                    Ok(Box::new(rows.into_iter().map(Ok)))
                }
                // Index dropped between planning and execution: degrade to
                // a filtered streaming scan with identical semantics.
                None => {
                    let cursor = TableCursor::new(table, scanned);
                    Ok(Box::new(cursor.filter(move |r| match r {
                        Ok(row) => lookup.matches(&row[column]),
                        Err(_) => true,
                    })))
                }
            }
        }
        Plan::Filter { input, predicate } => {
            let mut child = stream_plan(*input, scanned)?;
            Ok(Box::new(std::iter::from_fn(move || loop {
                match child.next()? {
                    Err(e) => return Some(Err(e)),
                    Ok(row) => match predicate.eval_predicate(&row) {
                        Err(e) => return Some(Err(e)),
                        Ok(true) => return Some(Ok(row)),
                        Ok(false) => continue,
                    },
                }
            })))
        }
        Plan::Project { input, exprs, .. } => {
            let child = stream_plan(*input, scanned)?;
            Ok(Box::new(child.map(move |r| {
                let row = r?;
                let mut projected = Vec::with_capacity(exprs.len());
                for e in &exprs {
                    projected.push(e.eval(&row)?);
                }
                Ok(projected)
            })))
        }
        Plan::NestedLoopJoin { left, right, kind, predicate, .. } => {
            let right_width = right.schema().len();
            let right_rows: Vec<Row> =
                stream_plan(*right, Arc::clone(&scanned))?.collect::<Result<_>>()?;
            let left_iter = stream_plan(*left, scanned)?;
            Ok(Box::new(JoinStream::new(
                left_iter,
                kind,
                right_width,
                move |l, out| {
                    for r in &right_rows {
                        let mut combined = l.to_vec();
                        combined.extend(r.iter().cloned());
                        let keep = match &predicate {
                            Some(p) => p.eval_predicate(&combined)?,
                            None => true,
                        };
                        if keep {
                            out.push_back(combined);
                        }
                    }
                    Ok(())
                },
            )))
        }
        Plan::HashJoin { left, right, kind, left_keys, right_keys, residual, .. } => {
            let right_width = right.schema().len();
            let right_rows: Vec<Row> =
                stream_plan(*right, Arc::clone(&scanned))?.collect::<Result<_>>()?;
            // Build side: NULL keys never participate (SQL equi-join).
            let mut table: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
            'rows: for (i, r) in right_rows.iter().enumerate() {
                let mut key = Vec::with_capacity(right_keys.len());
                for k in &right_keys {
                    let v = k.eval(r)?;
                    if v.is_null() {
                        continue 'rows;
                    }
                    key.push(v.group_key());
                }
                table.entry(key).or_default().push(i);
            }
            let left_iter = stream_plan(*left, scanned)?;
            Ok(Box::new(JoinStream::new(
                left_iter,
                kind,
                right_width,
                move |l, out| {
                    let mut key = Vec::with_capacity(left_keys.len());
                    for k in &left_keys {
                        let v = k.eval(l)?;
                        if v.is_null() {
                            return Ok(());
                        }
                        key.push(v.group_key());
                    }
                    if let Some(matches) = table.get(&key) {
                        for &ri in matches {
                            let mut combined = l.to_vec();
                            combined.extend(right_rows[ri].iter().cloned());
                            if let Some(p) = &residual {
                                if !p.eval_predicate(&combined)? {
                                    continue;
                                }
                            }
                            out.push_back(combined);
                        }
                    }
                    Ok(())
                },
            )))
        }
        Plan::Aggregate { input, group, aggs, .. } => {
            let child = stream_plan(*input, scanned)?;
            let out = aggregate_rows(child, &group, &aggs)?;
            Ok(Box::new(out.into_iter().map(Ok)))
        }
        Plan::Sort { input, keys } => {
            let child = stream_plan(*input, scanned)?;
            let out = sort_rows(child, &keys)?;
            Ok(Box::new(out.into_iter().map(Ok)))
        }
        Plan::Distinct { input } => {
            let mut child = stream_plan(*input, scanned)?;
            let mut seen: HashSet<Vec<GroupKey>> = HashSet::new();
            Ok(Box::new(std::iter::from_fn(move || loop {
                match child.next()? {
                    Err(e) => return Some(Err(e)),
                    Ok(row) => {
                        let key: Vec<GroupKey> = row.iter().map(|v| v.group_key()).collect();
                        if seen.insert(key) {
                            return Some(Ok(row));
                        }
                    }
                }
            })))
        }
        Plan::Limit { input, limit, offset } => {
            let mut child = stream_plan(*input, scanned)?;
            let mut to_skip = offset as usize;
            let mut remaining = limit.map(|l| l as usize);
            Ok(Box::new(std::iter::from_fn(move || {
                if remaining == Some(0) {
                    // Short-circuit: never pulls the child again, so the
                    // upstream pipeline (and its base-table scan) stops.
                    return None;
                }
                loop {
                    match child.next()? {
                        Err(e) => return Some(Err(e)),
                        Ok(row) => {
                            if to_skip > 0 {
                                to_skip -= 1;
                                continue;
                            }
                            if let Some(r) = &mut remaining {
                                *r -= 1;
                            }
                            return Some(Ok(row));
                        }
                    }
                }
            })))
        }
        Plan::Union { inputs, all, schema } => {
            let width = schema.len();
            // Members start lazily: a LIMIT satisfied by the first member
            // never executes the later ones.
            let mut pending: VecDeque<Plan> = inputs.into_iter().collect();
            let mut current: Option<BoxRowIter> = None;
            let mut seen: HashSet<Vec<GroupKey>> = HashSet::new();
            Ok(Box::new(std::iter::from_fn(move || loop {
                let iter = match &mut current {
                    Some(it) => it,
                    None => {
                        let next_plan = pending.pop_front()?;
                        match stream_plan(next_plan, Arc::clone(&scanned)) {
                            Ok(it) => current.insert(it),
                            Err(e) => return Some(Err(e)),
                        }
                    }
                };
                match iter.next() {
                    None => {
                        current = None;
                        continue;
                    }
                    Some(Err(e)) => return Some(Err(e)),
                    Some(Ok(row)) => {
                        if row.len() != width {
                            return Some(Err(Error::eval(
                                "UNION member produced a row of different width",
                            )));
                        }
                        if all {
                            return Some(Ok(row));
                        }
                        let key: Vec<GroupKey> = row.iter().map(|v| v.group_key()).collect();
                        if seen.insert(key) {
                            return Some(Ok(row));
                        }
                    }
                }
            })))
        }
    }
}

/// Streams a join: pulls one outer row at a time, expands it into zero or
/// more output rows via `expand`, and pads unmatched outer rows for LEFT
/// joins.
struct JoinStream<F> {
    left: BoxRowIter,
    kind: JoinKind,
    right_width: usize,
    expand: F,
    pending: VecDeque<Row>,
}

impl<F> JoinStream<F>
where
    F: FnMut(&Row, &mut VecDeque<Row>) -> Result<()>,
{
    fn new(left: BoxRowIter, kind: JoinKind, right_width: usize, expand: F) -> Self {
        JoinStream { left, kind, right_width, expand, pending: VecDeque::new() }
    }
}

impl<F> Iterator for JoinStream<F>
where
    F: FnMut(&Row, &mut VecDeque<Row>) -> Result<()>,
{
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Some(Ok(row));
            }
            match self.left.next()? {
                Err(e) => return Some(Err(e)),
                Ok(l) => {
                    if let Err(e) = (self.expand)(&l, &mut self.pending) {
                        // Drop any partial expansion of the failed row: a
                        // consumer that keeps pulling past the error must
                        // not see its half-joined output.
                        self.pending.clear();
                        return Some(Err(e));
                    }
                    if self.pending.is_empty() && self.kind == JoinKind::Left {
                        let mut combined = l;
                        combined
                            .extend(std::iter::repeat_n(Value::Null, self.right_width));
                        return Some(Ok(combined));
                    }
                }
            }
        }
    }
}

/// Drain `child` and aggregate it (GROUP BY semantics identical to the
/// materialising executor: first-seen group order, one row for a global
/// aggregate over empty input).
fn aggregate_rows(
    child: BoxRowIter,
    group: &[BoundExpr],
    aggs: &[AggSpec],
) -> Result<Vec<Row>> {
    let mut index: HashMap<Vec<GroupKey>, usize> = HashMap::new();
    let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
    for row in child {
        let row = row?;
        let mut key_vals = Vec::with_capacity(group.len());
        for g in group {
            key_vals.push(g.eval(&row)?);
        }
        let key: Vec<GroupKey> = key_vals.iter().map(|v| v.group_key()).collect();
        let gi = match index.get(&key) {
            Some(&gi) => gi,
            None => {
                let accs = aggs
                    .iter()
                    .map(|a| Accumulator::new(a.func, a.distinct))
                    .collect();
                groups.push((key_vals, accs));
                index.insert(key, groups.len() - 1);
                groups.len() - 1
            }
        };
        for (a, acc) in aggs.iter().zip(groups[gi].1.iter_mut()) {
            let v = match &a.arg {
                Some(e) => e.eval(&row)?,
                None => Value::Bool(true), // COUNT(*)
            };
            acc.update(&v)?;
        }
    }
    if groups.is_empty() && group.is_empty() {
        let accs: Vec<Accumulator> = aggs
            .iter()
            .map(|a| Accumulator::new(a.func, a.distinct))
            .collect();
        groups.push((Vec::new(), accs));
    }
    Ok(groups
        .into_iter()
        .map(|(mut keys, accs)| {
            keys.extend(accs.iter().map(|a| a.finish()));
            keys
        })
        .collect())
}

/// Drain `child` and sort it (stable, total order, keys precomputed).
fn sort_rows(child: BoxRowIter, keys: &[SortKey]) -> Result<Vec<Row>> {
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();
    for row in child {
        let row = row?;
        let mut kv = Vec::with_capacity(keys.len());
        for k in keys {
            kv.push(k.expr.eval(&row)?);
        }
        keyed.push((kv, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, key) in keys.iter().enumerate() {
            let ord = ka[i].total_cmp(&kb[i]);
            let ord = if key.ascending { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

fn as_ref_bound(b: &std::ops::Bound<Value>) -> std::ops::Bound<&Value> {
    match b {
        std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
        std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
        std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
    }
}
