// srclint: allow(R002): scalar-function arity is validated at bind time, so vals.pop() cannot see an empty stack
//! Bound (schema-resolved) expressions and their evaluation.
//!
//! Binding resolves every column reference to a row index once, so repeated
//! evaluation over many rows does no name lookups. Evaluation follows SQL
//! three-valued logic: comparisons involving NULL yield NULL, `AND`/`OR`
//! short-circuit through UNKNOWN, and a WHERE predicate keeps a row only
//! when it evaluates to `TRUE` (not NULL).

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::sql::ast::{BinaryOp, Expr, UnaryOp};
use crate::value::{Row, Value};

/// A fully bound scalar expression.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    Literal(Value),
    /// Index into the input row.
    Column(usize),
    Unary {
        op: UnaryOp,
        expr: Box<BoundExpr>,
    },
    Binary {
        left: Box<BoundExpr>,
        op: BinaryOp,
        right: Box<BoundExpr>,
    },
    IsNull {
        expr: Box<BoundExpr>,
        negated: bool,
    },
    InList {
        expr: Box<BoundExpr>,
        list: Vec<BoundExpr>,
        negated: bool,
    },
    Between {
        expr: Box<BoundExpr>,
        low: Box<BoundExpr>,
        high: Box<BoundExpr>,
        negated: bool,
    },
    Like {
        expr: Box<BoundExpr>,
        pattern: Box<BoundExpr>,
        negated: bool,
    },
    ScalarFn {
        func: ScalarFn,
        args: Vec<BoundExpr>,
    },
    /// CASE expression. With an operand the WHEN values compare by SQL
    /// equality (NULL operand matches nothing); without, each WHEN is a
    /// predicate kept only on TRUE.
    Case {
        operand: Option<Box<BoundExpr>>,
        branches: Vec<(BoundExpr, BoundExpr)>,
        else_expr: Option<Box<BoundExpr>>,
    },
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFn {
    Upper,
    Lower,
    Length,
    Abs,
    Coalesce,
    Round,
    Trim,
    Substr,
}

impl ScalarFn {
    pub fn parse(name: &str) -> Option<ScalarFn> {
        Some(match name.to_ascii_uppercase().as_str() {
            "UPPER" => ScalarFn::Upper,
            "LOWER" => ScalarFn::Lower,
            "LENGTH" | "LEN" => ScalarFn::Length,
            "ABS" => ScalarFn::Abs,
            "COALESCE" => ScalarFn::Coalesce,
            "ROUND" => ScalarFn::Round,
            "TRIM" => ScalarFn::Trim,
            "SUBSTR" | "SUBSTRING" => ScalarFn::Substr,
            _ => return None,
        })
    }
}

/// Bind `expr` against `schema`, resolving all column references.
///
/// Aggregate calls are rejected here; the planner replaces them with column
/// references into the aggregation output before binding.
pub fn bind(expr: &Expr, schema: &Schema) -> Result<BoundExpr> {
    match expr {
        Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
        Expr::Column { qualifier, name } => {
            let idx = schema.resolve(qualifier.as_deref(), name)?;
            Ok(BoundExpr::Column(idx))
        }
        Expr::Param { name, .. } => Err(Error::plan(format!(
            "unbound parameter `{}` — prepare the statement and execute it \
             with bound values",
            match name {
                Some(n) => format!("${n}"),
                None => "?".to_string(),
            }
        ))),
        Expr::Unary { op, expr } => Ok(BoundExpr::Unary {
            op: *op,
            expr: Box::new(bind(expr, schema)?),
        }),
        Expr::Binary { left, op, right } => Ok(BoundExpr::Binary {
            left: Box::new(bind(left, schema)?),
            op: *op,
            right: Box::new(bind(right, schema)?),
        }),
        Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
            expr: Box::new(bind(expr, schema)?),
            negated: *negated,
        }),
        Expr::InList { expr, list, negated } => Ok(BoundExpr::InList {
            expr: Box::new(bind(expr, schema)?),
            list: list.iter().map(|e| bind(e, schema)).collect::<Result<_>>()?,
            negated: *negated,
        }),
        Expr::Between { expr, low, high, negated } => Ok(BoundExpr::Between {
            expr: Box::new(bind(expr, schema)?),
            low: Box::new(bind(low, schema)?),
            high: Box::new(bind(high, schema)?),
            negated: *negated,
        }),
        Expr::Like { expr, pattern, negated } => Ok(BoundExpr::Like {
            expr: Box::new(bind(expr, schema)?),
            pattern: Box::new(bind(pattern, schema)?),
            negated: *negated,
        }),
        Expr::Function { name, args, star, .. } => {
            if *star {
                return Err(Error::plan(format!(
                    "`{name}(*)` is only valid as an aggregate"
                )));
            }
            let func = ScalarFn::parse(name).ok_or_else(|| {
                Error::plan(format!("unknown function `{name}` in scalar context"))
            })?;
            let arity_ok = match func {
                ScalarFn::Coalesce => !args.is_empty(),
                ScalarFn::Substr => args.len() == 2 || args.len() == 3,
                ScalarFn::Round => args.len() == 1 || args.len() == 2,
                _ => args.len() == 1,
            };
            if !arity_ok {
                return Err(Error::plan(format!(
                    "wrong number of arguments for `{name}`"
                )));
            }
            Ok(BoundExpr::ScalarFn {
                func,
                args: args.iter().map(|e| bind(e, schema)).collect::<Result<_>>()?,
            })
        }
        // Subqueries are materialised by the planner before binding; one
        // reaching here sits in a context the planner does not resolve
        // (e.g. a join ON condition).
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => {
            Err(Error::plan(
                "subqueries are only supported in WHERE/HAVING/SELECT/ORDER BY \
                 of the outer query, and must be uncorrelated",
            ))
        }
        Expr::Case { operand, branches, else_expr } => Ok(BoundExpr::Case {
            operand: operand
                .as_ref()
                .map(|o| bind(o, schema).map(Box::new))
                .transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| Ok((bind(w, schema)?, bind(t, schema)?)))
                .collect::<Result<_>>()?,
            else_expr: else_expr
                .as_ref()
                .map(|e| bind(e, schema).map(Box::new))
                .transpose()?,
        }),
    }
}

impl BoundExpr {
    /// Evaluate against a row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Column(i) => Ok(row[*i].clone()),
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match (op, v) {
                    (_, Value::Null) => Ok(Value::Null),
                    (UnaryOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnaryOp::Neg, Value::Int(i)) => Ok(Value::Int(-i)),
                    (UnaryOp::Neg, Value::Float(f)) => Ok(Value::Float(-f)),
                    (op, v) => Err(Error::eval(format!("cannot apply {op:?} to {v}"))),
                }
            }
            BoundExpr::Binary { left, op, right } => {
                eval_binary(left.eval(row)?, *op, || right.eval(row))
            }
            BoundExpr::IsNull { expr, negated } => {
                let isnull = expr.eval(row)?.is_null();
                Ok(Value::Bool(isnull != *negated))
            }
            BoundExpr::InList { expr, list, negated } => {
                let needle = expr.eval(row)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let v = item.eval(row)?;
                    match needle.sql_eq(&v) {
                        Some(true) => return Ok(Value::Bool(!negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            BoundExpr::Between { expr, low, high, negated } => {
                let v = expr.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => {
                        let within = a != std::cmp::Ordering::Less
                            && b != std::cmp::Ordering::Greater;
                        Ok(Value::Bool(within != *negated))
                    }
                    _ => Ok(Value::Null),
                }
            }
            BoundExpr::Like { expr, pattern, negated } => {
                let v = expr.eval(row)?;
                let p = pattern.eval(row)?;
                match (v, p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Str(s), Value::Str(p)) => {
                        Ok(Value::Bool(like_match(&s, &p) != *negated))
                    }
                    (v, p) => Err(Error::eval(format!("LIKE requires strings, got {v} LIKE {p}"))),
                }
            }
            BoundExpr::ScalarFn { func, args } => {
                let vals: Vec<Value> =
                    args.iter().map(|a| a.eval(row)).collect::<Result<_>>()?;
                eval_scalar_fn(*func, vals)
            }
            BoundExpr::Case { operand, branches, else_expr } => {
                match operand {
                    Some(op) => {
                        let v = op.eval(row)?;
                        for (w, t) in branches {
                            if v.sql_eq(&w.eval(row)?) == Some(true) {
                                return t.eval(row);
                            }
                        }
                    }
                    None => {
                        for (w, t) in branches {
                            if w.eval_predicate(row)? {
                                return t.eval(row);
                            }
                        }
                    }
                }
                match else_expr {
                    Some(e) => e.eval(row),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    /// Evaluate as a predicate: true only when the result is `TRUE`.
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        Ok(matches!(self.eval(row)?, Value::Bool(true)))
    }
}

fn eval_binary(
    left: Value,
    op: BinaryOp,
    right: impl FnOnce() -> Result<Value>,
) -> Result<Value> {
    use BinaryOp::*;
    // AND/OR implement three-valued logic with short-circuit on the
    // determining value.
    match op {
        And => {
            return match left {
                Value::Bool(false) => Ok(Value::Bool(false)),
                Value::Bool(true) => match right()? {
                    Value::Bool(b) => Ok(Value::Bool(b)),
                    Value::Null => Ok(Value::Null),
                    v => Err(Error::eval(format!("AND requires booleans, got {v}"))),
                },
                Value::Null => match right()? {
                    Value::Bool(false) => Ok(Value::Bool(false)),
                    Value::Bool(true) | Value::Null => Ok(Value::Null),
                    v => Err(Error::eval(format!("AND requires booleans, got {v}"))),
                },
                v => Err(Error::eval(format!("AND requires booleans, got {v}"))),
            };
        }
        Or => {
            return match left {
                Value::Bool(true) => Ok(Value::Bool(true)),
                Value::Bool(false) => match right()? {
                    Value::Bool(b) => Ok(Value::Bool(b)),
                    Value::Null => Ok(Value::Null),
                    v => Err(Error::eval(format!("OR requires booleans, got {v}"))),
                },
                Value::Null => match right()? {
                    Value::Bool(true) => Ok(Value::Bool(true)),
                    Value::Bool(false) | Value::Null => Ok(Value::Null),
                    v => Err(Error::eval(format!("OR requires booleans, got {v}"))),
                },
                v => Err(Error::eval(format!("OR requires booleans, got {v}"))),
            };
        }
        _ => {}
    }
    let right = right()?;
    if op.is_comparison() {
        let cmp = left.sql_cmp(&right);
        let Some(ord) = cmp else {
            // NULL operand → UNKNOWN; incomparable types → error unless NULL.
            if left.is_null() || right.is_null() {
                return Ok(Value::Null);
            }
            return Err(Error::eval(format!("cannot compare {left} with {right}")));
        };
        use std::cmp::Ordering::*;
        let b = match op {
            Eq => ord == Equal,
            NotEq => ord != Equal,
            Lt => ord == Less,
            LtEq => ord != Greater,
            Gt => ord == Greater,
            GtEq => ord != Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    if left.is_null() || right.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Concat => {
            let mut s = left.lexical_form();
            s.push_str(&right.lexical());
            Ok(Value::from(s))
        }
        Plus | Minus | Multiply | Divide | Modulo => arith(left, op, right),
        And | Or => unreachable!("handled above"),
        _ => unreachable!(),
    }
}

fn arith(left: Value, op: BinaryOp, right: Value) -> Result<Value> {
    use BinaryOp::*;
    match (left, right) {
        (Value::Int(a), Value::Int(b)) => match op {
            Plus => Ok(Value::Int(a.wrapping_add(b))),
            Minus => Ok(Value::Int(a.wrapping_sub(b))),
            Multiply => Ok(Value::Int(a.wrapping_mul(b))),
            Divide => {
                if b == 0 {
                    Err(Error::eval("division by zero"))
                } else {
                    Ok(Value::Int(a.wrapping_div(b)))
                }
            }
            Modulo => {
                if b == 0 {
                    Err(Error::eval("modulo by zero"))
                } else {
                    Ok(Value::Int(a.wrapping_rem(b)))
                }
            }
            _ => unreachable!(),
        },
        (a, b) => {
            let (x, y) = match (a, b) {
                (Value::Int(a), Value::Float(b)) => (a as f64, b),
                (Value::Float(a), Value::Int(b)) => (a, b as f64),
                (Value::Float(a), Value::Float(b)) => (a, b),
                (a, b) => {
                    return Err(Error::eval(format!("cannot compute {a} {op} {b}")))
                }
            };
            let r = match op {
                Plus => x + y,
                Minus => x - y,
                Multiply => x * y,
                Divide => {
                    if y == 0.0 {
                        return Err(Error::eval("division by zero"));
                    }
                    x / y
                }
                Modulo => {
                    if y == 0.0 {
                        return Err(Error::eval("modulo by zero"));
                    }
                    x % y
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(r))
        }
    }
}

fn eval_scalar_fn(func: ScalarFn, mut vals: Vec<Value>) -> Result<Value> {
    match func {
        ScalarFn::Coalesce => Ok(vals
            .into_iter()
            .find(|v| !v.is_null())
            .unwrap_or(Value::Null)),
        ScalarFn::Upper | ScalarFn::Lower | ScalarFn::Trim | ScalarFn::Length => {
            let v = vals.remove(0);
            match (func, v) {
                (_, Value::Null) => Ok(Value::Null),
                (ScalarFn::Upper, Value::Str(s)) => Ok(Value::from(s.to_uppercase())),
                (ScalarFn::Lower, Value::Str(s)) => Ok(Value::from(s.to_lowercase())),
                (ScalarFn::Trim, Value::Str(s)) => Ok(Value::from(s.trim())),
                (ScalarFn::Length, Value::Str(s)) => {
                    Ok(Value::Int(s.chars().count() as i64))
                }
                (f, v) => Err(Error::eval(format!("{f:?} requires a string, got {v}"))),
            }
        }
        ScalarFn::Abs => match vals.remove(0) {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            v => Err(Error::eval(format!("ABS requires a number, got {v}"))),
        },
        ScalarFn::Round => {
            let digits = if vals.len() == 2 {
                match vals.pop().unwrap() {
                    Value::Int(d) => d,
                    Value::Null => return Ok(Value::Null),
                    v => return Err(Error::eval(format!("ROUND digits must be int, got {v}"))),
                }
            } else {
                0
            };
            match vals.remove(0) {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i)),
                Value::Float(f) => {
                    let m = 10f64.powi(digits as i32);
                    Ok(Value::Float((f * m).round() / m))
                }
                v => Err(Error::eval(format!("ROUND requires a number, got {v}"))),
            }
        }
        ScalarFn::Substr => {
            let len = if vals.len() == 3 {
                match vals.pop().unwrap() {
                    Value::Int(l) => Some(l.max(0) as usize),
                    Value::Null => return Ok(Value::Null),
                    v => return Err(Error::eval(format!("SUBSTR length must be int, got {v}"))),
                }
            } else {
                None
            };
            let start = match vals.pop().unwrap() {
                Value::Int(s) => s,
                Value::Null => return Ok(Value::Null),
                v => return Err(Error::eval(format!("SUBSTR start must be int, got {v}"))),
            };
            match vals.remove(0) {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => {
                    // SQL SUBSTR is 1-based.
                    let skip = (start.max(1) - 1) as usize;
                    let it = s.chars().skip(skip);
                    let out: String = match len {
                        Some(l) => it.take(l).collect(),
                        None => it.collect(),
                    };
                    Ok(Value::from(out))
                }
                v => Err(Error::eval(format!("SUBSTR requires a string, got {v}"))),
            }
        }
    }
}

/// SQL LIKE matching: `%` = any sequence, `_` = any single character.
/// Matching is case-sensitive, as in PostgreSQL.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // collapse consecutive %
                let rest = &p[1..];
                (0..=s.len()).any(|k| rec(&s[k..], rest))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::sql::parser::parse_expr;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("name", DataType::Text),
            Column::new("tons", DataType::Float),
            Column::new("n", DataType::Int),
        ])
    }

    fn eval(src: &str, row: &Row) -> Value {
        let e = parse_expr(src).unwrap();
        bind(&e, &schema()).unwrap().eval(row).unwrap()
    }

    fn row() -> Row {
        vec![Value::from("Hg"), Value::from(12.5), Value::from(3)]
    }

    #[test]
    fn column_and_arith() {
        assert_eq!(eval("tons * 2", &row()), Value::Float(25.0));
        assert_eq!(eval("n + 1", &row()), Value::Int(4));
        assert_eq!(eval("n / 2", &row()), Value::Int(1));
        assert_eq!(eval("n % 2", &row()), Value::Int(1));
        assert_eq!(eval("-n", &row()), Value::Int(-3));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = parse_expr("n / 0").unwrap();
        assert!(bind(&e, &schema()).unwrap().eval(&row()).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let null_row = vec![Value::Null, Value::Null, Value::Null];
        assert_eq!(eval("name = 'Hg'", &null_row), Value::Null);
        assert_eq!(eval("name = 'Hg' OR 1 = 1", &null_row), Value::Bool(true));
        assert_eq!(eval("name = 'Hg' AND 1 = 2", &null_row), Value::Bool(false));
        assert_eq!(eval("name = 'Hg' AND 1 = 1", &null_row), Value::Null);
        assert_eq!(eval("NOT (name = 'Hg')", &null_row), Value::Null);
    }

    #[test]
    fn in_list_with_null_semantics() {
        assert_eq!(eval("name IN ('Hg','Pb')", &row()), Value::Bool(true));
        assert_eq!(eval("name IN ('Pb')", &row()), Value::Bool(false));
        assert_eq!(eval("name NOT IN ('Pb')", &row()), Value::Bool(true));
        // x IN (..., NULL) with no match is UNKNOWN
        assert_eq!(eval("name IN ('Pb', NULL)", &row()), Value::Null);
        // match wins over NULL
        assert_eq!(eval("name IN (NULL, 'Hg')", &row()), Value::Bool(true));
    }

    #[test]
    fn between_and_like() {
        assert_eq!(eval("tons BETWEEN 10 AND 20", &row()), Value::Bool(true));
        assert_eq!(eval("tons NOT BETWEEN 10 AND 20", &row()), Value::Bool(false));
        assert_eq!(eval("name LIKE 'H%'", &row()), Value::Bool(true));
        assert_eq!(eval("name LIKE '_g'", &row()), Value::Bool(true));
        assert_eq!(eval("name NOT LIKE 'x%'", &row()), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("mercury", "merc%"));
        assert!(like_match("mercury", "%cur%"));
        assert!(like_match("mercury", "_______"));
        assert!(!like_match("mercury", "______"));
        assert!(like_match("", "%"));
        assert!(!like_match("a", ""));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn is_null() {
        assert_eq!(eval("name IS NULL", &row()), Value::Bool(false));
        assert_eq!(eval("name IS NOT NULL", &row()), Value::Bool(true));
        let null_row = vec![Value::Null, Value::Null, Value::Null];
        assert_eq!(eval("name IS NULL", &null_row), Value::Bool(true));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(eval("UPPER(name)", &row()), Value::from("HG"));
        assert_eq!(eval("LOWER('AbC')", &row()), Value::from("abc"));
        assert_eq!(eval("LENGTH('ciao')", &row()), Value::Int(4));
        assert_eq!(eval("ABS(-5)", &row()), Value::Int(5));
        assert_eq!(eval("COALESCE(NULL, NULL, 7)", &row()), Value::Int(7));
        assert_eq!(eval("ROUND(2.567, 2)", &row()), Value::Float(2.57));
        assert_eq!(eval("TRIM('  x ')", &row()), Value::from("x"));
        assert_eq!(eval("SUBSTR('mercury', 1, 4)", &row()), Value::from("merc"));
        assert_eq!(eval("SUBSTR('mercury', 5)", &row()), Value::from("ury"));
    }

    #[test]
    fn concat_operator() {
        assert_eq!(eval("name || '-' || n", &row()), Value::from("Hg-3"));
        assert_eq!(eval("name || NULL", &row()), Value::Null);
    }

    #[test]
    fn unknown_function_rejected() {
        let e = parse_expr("FROBNICATE(name)").unwrap();
        assert!(bind(&e, &schema()).is_err());
    }

    #[test]
    fn incomparable_comparison_is_error() {
        let e = parse_expr("name > 3").unwrap();
        assert!(bind(&e, &schema()).unwrap().eval(&row()).is_err());
    }
}
