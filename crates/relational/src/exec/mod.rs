//! Plan execution.
//!
//! The engine is pull-based: [`stream::stream_plan`] lowers a plan into a
//! lazy row iterator (see [`stream`] for the operator semantics), and the
//! materialising [`execute_plan`] entry point is a thin collect over it —
//! one executor, two consumption styles.

pub mod aggregate;
pub mod expr;
pub mod fasthash;
pub mod stream;

use crate::error::Result;
use crate::plan::Plan;
use crate::value::Row;

pub use stream::{ExecCtx, Rows};

/// Execute a plan to a fully materialised set of rows (sequential).
///
/// Clones the plan and drains the streaming executor; callers that want
/// lazy consumption (and LIMIT short-circuiting) use [`Rows::from_plan`]
/// instead.
pub fn execute_plan(plan: &Plan) -> Result<Vec<Row>> {
    execute_plan_parallel(plan, 1)
}

/// Execute a plan to a fully materialised set of rows with up to
/// `threads` workers for morsel-parallel operators.
pub fn execute_plan_parallel(plan: &Plan, threads: usize) -> Result<Vec<Row>> {
    stream::stream_plan(plan.clone(), ExecCtx::new(threads))?.collect()
}
