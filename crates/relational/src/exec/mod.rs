//! Plan execution (materialising, operator-at-a-time).

pub mod aggregate;
pub mod expr;

use std::collections::HashMap;

use crate::error::Result;
use crate::plan::Plan;
use crate::sql::ast::JoinKind;
use crate::value::{GroupKey, Row, Value};

use aggregate::Accumulator;

/// Execute a plan to a fully materialised set of rows.
pub fn execute_plan(plan: &Plan) -> Result<Vec<Row>> {
    match plan {
        Plan::Values { rows, .. } => Ok(rows.clone()),
        Plan::Scan { table, .. } => Ok(table.scan()),
        Plan::IndexScan { table, column, lookup, .. } => {
            use crate::plan::IndexLookup;
            let via_index = match lookup {
                IndexLookup::Eq(keys) => table.index_lookup_eq(*column, keys),
                IndexLookup::Range { low, high } => {
                    table.index_lookup_range(*column, as_ref_bound(low), as_ref_bound(high))
                }
            };
            match via_index {
                Some(rows) => Ok(rows),
                // The index was dropped between planning and execution:
                // degrade to a filtered scan with identical semantics.
                None => Ok(table
                    .scan()
                    .into_iter()
                    .filter(|r| lookup.matches(&r[*column]))
                    .collect()),
            }
        }
        Plan::Filter { input, predicate } => {
            let rows = execute_plan(input)?;
            let mut out = Vec::new();
            for row in rows {
                if predicate.eval_predicate(&row)? {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::Project { input, exprs, .. } => {
            let rows = execute_plan(input)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut projected = Vec::with_capacity(exprs.len());
                for e in exprs {
                    projected.push(e.eval(&row)?);
                }
                out.push(projected);
            }
            Ok(out)
        }
        Plan::NestedLoopJoin { left, right, kind, predicate, .. } => {
            nested_loop_join(left, right, *kind, predicate.as_ref())
        }
        Plan::HashJoin { left, right, kind, left_keys, right_keys, residual, .. } => {
            hash_join(left, right, *kind, left_keys, right_keys, residual.as_ref())
        }
        Plan::Aggregate { input, group, aggs, .. } => {
            let rows = execute_plan(input)?;
            // Group rows preserving first-seen order for determinism.
            let mut index: HashMap<Vec<GroupKey>, usize> = HashMap::new();
            let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
            for row in &rows {
                let mut key_vals = Vec::with_capacity(group.len());
                for g in group {
                    key_vals.push(g.eval(row)?);
                }
                let key: Vec<GroupKey> = key_vals.iter().map(|v| v.group_key()).collect();
                let gi = match index.get(&key) {
                    Some(&gi) => gi,
                    None => {
                        let accs = aggs
                            .iter()
                            .map(|a| Accumulator::new(a.func, a.distinct))
                            .collect();
                        groups.push((key_vals, accs));
                        index.insert(key, groups.len() - 1);
                        groups.len() - 1
                    }
                };
                for (a, acc) in aggs.iter().zip(groups[gi].1.iter_mut()) {
                    let v = match &a.arg {
                        Some(e) => e.eval(row)?,
                        None => Value::Bool(true), // COUNT(*)
                    };
                    acc.update(&v)?;
                }
            }
            // Global aggregate over empty input still yields one row.
            if groups.is_empty() && group.is_empty() {
                let accs: Vec<Accumulator> = aggs
                    .iter()
                    .map(|a| Accumulator::new(a.func, a.distinct))
                    .collect();
                groups.push((Vec::new(), accs));
            }
            Ok(groups
                .into_iter()
                .map(|(mut keys, accs)| {
                    keys.extend(accs.iter().map(|a| a.finish()));
                    keys
                })
                .collect())
        }
        Plan::Sort { input, keys } => {
            let rows = execute_plan(input)?;
            // Precompute sort keys per row.
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
            for row in rows {
                let mut kv = Vec::with_capacity(keys.len());
                for k in keys {
                    kv.push(k.expr.eval(&row)?);
                }
                keyed.push((kv, row));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, key) in keys.iter().enumerate() {
                    let ord = ka[i].total_cmp(&kb[i]);
                    let ord = if key.ascending { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(keyed.into_iter().map(|(_, r)| r).collect())
        }
        Plan::Distinct { input } => {
            let rows = execute_plan(input)?;
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for row in rows {
                let key: Vec<GroupKey> = row.iter().map(|v| v.group_key()).collect();
                if seen.insert(key) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::Limit { input, limit, offset } => {
            let rows = execute_plan(input)?;
            let start = (*offset as usize).min(rows.len());
            let end = match limit {
                Some(l) => (start + *l as usize).min(rows.len()),
                None => rows.len(),
            };
            Ok(rows[start..end].to_vec())
        }
        Plan::Union { inputs, all, schema } => {
            let width = schema.len();
            let mut out = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for input in inputs {
                for row in execute_plan(input)? {
                    if row.len() != width {
                        return Err(crate::error::Error::eval(
                            "UNION member produced a row of different width",
                        ));
                    }
                    if *all {
                        out.push(row);
                    } else {
                        let key: Vec<GroupKey> =
                            row.iter().map(|v| v.group_key()).collect();
                        if seen.insert(key) {
                            out.push(row);
                        }
                    }
                }
            }
            Ok(out)
        }
    }
}

fn as_ref_bound(b: &std::ops::Bound<Value>) -> std::ops::Bound<&Value> {
    match b {
        std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
        std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
        std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
    }
}

fn nested_loop_join(
    left: &Plan,
    right: &Plan,
    kind: JoinKind,
    predicate: Option<&expr::BoundExpr>,
) -> Result<Vec<Row>> {
    let left_rows = execute_plan(left)?;
    let right_rows = execute_plan(right)?;
    let right_width = right.schema().len();
    let mut out = Vec::new();
    for l in &left_rows {
        let mut matched = false;
        for r in &right_rows {
            let mut combined = l.clone();
            combined.extend(r.iter().cloned());
            let keep = match predicate {
                Some(p) => p.eval_predicate(&combined)?,
                None => true,
            };
            if keep {
                matched = true;
                out.push(combined);
            }
        }
        if kind == JoinKind::Left && !matched {
            let mut combined = l.clone();
            combined.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(combined);
        }
    }
    Ok(out)
}

fn hash_join(
    left: &Plan,
    right: &Plan,
    kind: JoinKind,
    left_keys: &[expr::BoundExpr],
    right_keys: &[expr::BoundExpr],
    residual: Option<&expr::BoundExpr>,
) -> Result<Vec<Row>> {
    let left_rows = execute_plan(left)?;
    let right_rows = execute_plan(right)?;
    let right_width = right.schema().len();

    // Build side: right input. NULL keys never participate (SQL equi-join).
    let mut table: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
    'rows: for (i, r) in right_rows.iter().enumerate() {
        let mut key = Vec::with_capacity(right_keys.len());
        for k in right_keys {
            let v = k.eval(r)?;
            if v.is_null() {
                continue 'rows;
            }
            key.push(v.group_key());
        }
        table.entry(key).or_default().push(i);
    }

    let mut out = Vec::new();
    'probe: for l in &left_rows {
        let mut key = Vec::with_capacity(left_keys.len());
        let mut null_key = false;
        for k in left_keys {
            let v = k.eval(l)?;
            if v.is_null() {
                null_key = true;
                break;
            }
            key.push(v.group_key());
        }
        let mut matched = false;
        if !null_key {
            if let Some(matches) = table.get(&key) {
                for &ri in matches {
                    let mut combined = l.clone();
                    combined.extend(right_rows[ri].iter().cloned());
                    if let Some(p) = residual {
                        if !p.eval_predicate(&combined)? {
                            continue;
                        }
                    }
                    matched = true;
                    out.push(combined);
                }
            }
        }
        if kind == JoinKind::Left && !matched {
            let mut combined = l.clone();
            combined.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(combined);
            continue 'probe;
        }
    }
    Ok(out)
}
