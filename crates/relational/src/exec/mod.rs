//! Plan execution.
//!
//! The engine is pull-based: [`stream::stream_plan`] lowers a plan into a
//! lazy row iterator (see [`stream`] for the operator semantics), and the
//! materialising [`execute_plan`] entry point is a thin collect over it —
//! one executor, two consumption styles.

pub mod aggregate;
pub mod expr;
pub mod stream;

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use crate::error::Result;
use crate::plan::Plan;
use crate::value::Row;

pub use stream::Rows;

/// Execute a plan to a fully materialised set of rows.
///
/// Clones the plan and drains the streaming executor; callers that want
/// lazy consumption (and LIMIT short-circuiting) use [`Rows::from_plan`]
/// instead.
pub fn execute_plan(plan: &Plan) -> Result<Vec<Row>> {
    let scanned = Arc::new(AtomicU64::new(0));
    stream::stream_plan(plan.clone(), scanned)?.collect()
}
