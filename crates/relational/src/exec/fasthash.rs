// srclint: allow(R002): chunks_exact(8) yields exactly 8-byte slices, the try_into cannot fail
//! A fast, dependency-free hasher for the executor's internal hash
//! tables (join builds, DISTINCT/UNION dedup, GROUP BY indexes).
//!
//! The default `RandomState` (SipHash 1-3) is keyed for HashDoS
//! resistance, which the executor does not need: its tables are built
//! from already-admitted row data, live for one operator, and are never
//! exposed to an attacker who can choose keys against a long-lived map.
//! This is the FxHash construction (rotate–xor–multiply over word-sized
//! chunks), which hashes short `Value` keys several times faster.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for the executor's internal maps.
pub type FastBuild = BuildHasherDefault<FastHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style word-at-a-time hasher.
#[derive(Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Finalizer (murmur3-style xor-fold): the rotate–xor–multiply
        // core pushes entropy toward the high bits, but the hash table
        // indexes buckets with the LOW bits — without this fold, similar
        // short keys (generated names like `LF00042`) cluster into probe
        // chains and dedup degrades by an order of magnitude.
        let mut h = self.hash;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length in the top byte so "ab" and "ab\0" differ.
            tail[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn h(v: &impl Hash) -> u64 {
        FastBuild::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(h(&"abc"), h(&"abc"));
        assert_eq!(h(&42u64), h(&42u64));
    }

    #[test]
    fn distinct_short_strings_do_not_collide_trivially() {
        let inputs = ["", "a", "ab", "ab\0", "ba", "abc", "abcd", "abcdefgh", "abcdefghi"];
        let hashes: std::collections::HashSet<u64> =
            inputs.iter().map(h).collect();
        assert_eq!(hashes.len(), inputs.len());
    }
}
