//! SQL front-end: lexer, AST, parser.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod token;
