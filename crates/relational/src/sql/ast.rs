//! SQL abstract syntax tree.
//!
//! The AST is deliberately close to textbook SQL. `Display` implementations
//! render back to valid SQL text; the SESQL layer relies on this to rebuild
//! the "cleaned" query of paper Remark 4.1 and the final query over the
//! temporary support database (Fig. 6).

use std::fmt;

use crate::value::{DataType, Value};

/// Any SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        /// `CREATE OR REPLACE TABLE`
        or_replace: bool,
        /// `CREATE TABLE IF NOT EXISTS`
        if_not_exists: bool,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    Insert {
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        /// One expression list per `VALUES` tuple.
        rows: Vec<Vec<Expr>>,
    },
    /// `INSERT INTO table [(cols)] SELECT ...` — bulk transfer of a query
    /// result (the databank's "materialise a derived view" path).
    InsertSelect {
        table: String,
        columns: Option<Vec<String>>,
        query: Box<Select>,
    },
    Delete {
        table: String,
        filter: Option<Expr>,
    },
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        filter: Option<Expr>,
    },
    /// `CREATE INDEX name ON table (column)` — a single-column secondary
    /// index.
    CreateIndex {
        name: String,
        table: String,
        column: String,
        if_not_exists: bool,
    },
    DropIndex {
        name: String,
        if_exists: bool,
    },
    Select(Box<Select>),
    /// `EXPLAIN SELECT ...` — show the bound plan without executing it.
    Explain(Box<Select>),
}

/// Column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
}

/// A `SELECT` query, possibly a compound (`UNION` chain). `ORDER BY` /
/// `LIMIT` / `OFFSET` of the head apply to the whole compound; union
/// members carry none of their own.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projections: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub filter: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    /// Further SELECT cores combined with `UNION [ALL]`; the bool is
    /// `true` for `UNION ALL`.
    pub union: Vec<(bool, Select)>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

impl Select {
    /// An empty SELECT skeleton, useful for programmatic construction.
    pub fn empty() -> Self {
        Select {
            distinct: false,
            projections: Vec::new(),
            from: Vec::new(),
            filter: None,
            group_by: Vec::new(),
            having: None,
            union: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS alias`.
    Expr { expr: Expr, alias: Option<String> },
}

/// A table reference in the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Table {
        name: String,
        alias: Option<String>,
    },
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        /// ON condition; `None` only for CROSS joins.
        on: Option<Expr>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

/// ORDER BY item: an expression (or output-column name) plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub ascending: bool,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// A parameter placeholder (`$name` or positional `?`) awaiting a
    /// value at execute time. `index` is the parameter slot assigned at
    /// parse time; repeated `$name` occurrences share one slot. A query
    /// containing unbound parameters can be prepared but not executed
    /// directly.
    Param {
        index: usize,
        name: Option<String>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// Scalar or aggregate function call. `COUNT(*)` is represented with
    /// `star = true` and empty args.
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
        star: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`. The subquery must be uncorrelated and
    /// produce exactly one column; the planner materialises it into an
    /// `InList` before binding (so NULL semantics — and index usability —
    /// are exactly those of a literal IN-list).
    InSubquery {
        expr: Box<Expr>,
        query: Box<Select>,
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`; uncorrelated, resolved at plan time.
    Exists {
        query: Box<Select>,
        negated: bool,
    },
    /// `(SELECT ...)` used as a scalar: one column, at most one row
    /// (zero rows yield NULL). Uncorrelated, resolved at plan time.
    ScalarSubquery(Box<Select>),
    /// `CASE [operand] WHEN ... THEN ... [ELSE ...] END`. With an operand
    /// the WHEN values are compared by SQL equality; without, each WHEN is
    /// a predicate.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column { qualifier: None, name: name.into() }
    }

    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column { qualifier: Some(qualifier.into()), name: name.into() }
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::And, right)
    }

    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::Or, right)
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::Eq, right)
    }

    /// Depth-first pre-order visit of this expression tree.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param { .. } => {}
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::Between { expr, low, high, .. } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            // Subquery bodies are separate scopes; only the outer operand
            // participates in this expression tree.
            Expr::InSubquery { expr, .. } => expr.visit(f),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
            Expr::Case { operand, branches, else_expr } => {
                if let Some(op) = operand {
                    op.visit(f);
                }
                for (w, t) in branches {
                    w.visit(f);
                    t.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
        }
    }

    /// Structural rewrite: `f` is applied bottom-up to every node and may
    /// replace it. The SESQL WHERE-clause enrichments (REPLACECONSTANT /
    /// REPLACEVARIABLE) are implemented as such rewrites.
    pub fn rewrite(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param { .. } => self,
            Expr::Unary { op, expr } => Expr::Unary { op, expr: Box::new(expr.rewrite(f)) },
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(left.rewrite(f)),
                op,
                right: Box::new(right.rewrite(f)),
            },
            Expr::IsNull { expr, negated } => {
                Expr::IsNull { expr: Box::new(expr.rewrite(f)), negated }
            }
            Expr::InList { expr, list, negated } => Expr::InList {
                expr: Box::new(expr.rewrite(f)),
                list: list.into_iter().map(|e| e.rewrite(f)).collect(),
                negated,
            },
            Expr::Between { expr, low, high, negated } => Expr::Between {
                expr: Box::new(expr.rewrite(f)),
                low: Box::new(low.rewrite(f)),
                high: Box::new(high.rewrite(f)),
                negated,
            },
            Expr::Like { expr, pattern, negated } => Expr::Like {
                expr: Box::new(expr.rewrite(f)),
                pattern: Box::new(pattern.rewrite(f)),
                negated,
            },
            Expr::Function { name, args, distinct, star } => Expr::Function {
                name,
                args: args.into_iter().map(|e| e.rewrite(f)).collect(),
                distinct,
                star,
            },
            Expr::InSubquery { expr, query, negated } => Expr::InSubquery {
                expr: Box::new(expr.rewrite(f)),
                query,
                negated,
            },
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => self,
            Expr::Case { operand, branches, else_expr } => Expr::Case {
                operand: operand.map(|o| Box::new(o.rewrite(f))),
                branches: branches
                    .into_iter()
                    .map(|(w, t)| (w.rewrite(f), t.rewrite(f)))
                    .collect(),
                else_expr: else_expr.map(|e| Box::new(e.rewrite(f))),
            },
        };
        f(rebuilt)
    }

    /// True if this expression (sub)tree contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if is_aggregate_name(name) {
                    found = true;
                }
            }
        });
        found
    }
}

/// Whether `name` names one of the built-in aggregate functions.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
    )
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    And,
    Or,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    Concat,
}

impl BinaryOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
            BinaryOp::Concat => "||",
        };
        f.write_str(s)
    }
}

fn fmt_ident(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    let plain = !s.is_empty()
        && s.chars().next().map(|c| c.is_ascii_alphabetic() || c == '_').unwrap_or(false)
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if plain {
        f.write_str(s)
    } else {
        write!(f, "\"{}\"", s.replace('"', "\"\""))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(Value::Str(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column { qualifier, name } => {
                if let Some(q) = qualifier {
                    fmt_ident(f, q)?;
                    f.write_str(".")?;
                }
                fmt_ident(f, name)
            }
            Expr::Param { name: Some(n), .. } => write!(f, "${n}"),
            Expr::Param { name: None, .. } => f.write_str("?"),
            Expr::Unary { op: UnaryOp::Not, expr } => write!(f, "NOT ({expr})"),
            Expr::Unary { op: UnaryOp::Neg, expr } => write!(f, "-({expr})"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::IsNull { expr, negated: false } => write!(f, "({expr} IS NULL)"),
            Expr::IsNull { expr, negated: true } => write!(f, "({expr} IS NOT NULL)"),
            Expr::InList { expr, list, negated } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "({expr} {}IN ({}))",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::Between { expr, low, high, negated } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like { expr, pattern, negated } => {
                write!(f, "({expr} {}LIKE {pattern})", if *negated { "NOT " } else { "" })
            }
            Expr::Function { name, args, distinct, star } => {
                write!(f, "{name}(")?;
                if *star {
                    f.write_str("*")?;
                } else {
                    if *distinct {
                        f.write_str("DISTINCT ")?;
                    }
                    let items: Vec<String> = args.iter().map(|e| e.to_string()).collect();
                    f.write_str(&items.join(", "))?;
                }
                f.write_str(")")
            }
            Expr::InSubquery { expr, query, negated } => {
                write!(f, "({expr} {}IN ({query}))", if *negated { "NOT " } else { "" })
            }
            Expr::Exists { query, negated } => {
                write!(f, "{}EXISTS ({query})", if *negated { "NOT " } else { "" })
            }
            Expr::ScalarSubquery(query) => write!(f, "({query})"),
            Expr::Case { operand, branches, else_expr } => {
                f.write_str("CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(q) => write!(f, "{q}.*"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
            SelectItem::Expr { expr, alias: Some(a) } => {
                write!(f, "{expr} AS ")?;
                fmt_ident(f, a)
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table { name, alias: None } => fmt_ident(f, name),
            TableRef::Table { name, alias: Some(a) } => {
                fmt_ident(f, name)?;
                f.write_str(" AS ")?;
                fmt_ident(f, a)
            }
            TableRef::Join { left, right, kind, on } => {
                let kw = match kind {
                    JoinKind::Inner => "JOIN",
                    JoinKind::Left => "LEFT JOIN",
                    JoinKind::Cross => "CROSS JOIN",
                };
                write!(f, "{left} {kw} {right}")?;
                if let Some(on) = on {
                    write!(f, " ON {on}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        let items: Vec<String> = self.projections.iter().map(|p| p.to_string()).collect();
        f.write_str(&items.join(", "))?;
        if !self.from.is_empty() {
            let tables: Vec<String> = self.from.iter().map(|t| t.to_string()).collect();
            write!(f, " FROM {}", tables.join(", "))?;
        }
        if let Some(w) = &self.filter {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            let g: Vec<String> = self.group_by.iter().map(|e| e.to_string()).collect();
            write!(f, " GROUP BY {}", g.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        for (all, member) in &self.union {
            write!(f, " UNION {}{member}", if *all { "ALL " } else { "" })?;
        }
        if !self.order_by.is_empty() {
            let o: Vec<String> = self
                .order_by
                .iter()
                .map(|i| {
                    format!("{}{}", i.expr, if i.ascending { "" } else { " DESC" })
                })
                .collect();
            write!(f, " ORDER BY {}", o.join(", "))?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable { name, columns, or_replace, if_not_exists } => {
                f.write_str("CREATE ")?;
                if *or_replace {
                    f.write_str("OR REPLACE ")?;
                }
                f.write_str("TABLE ")?;
                if *if_not_exists {
                    f.write_str("IF NOT EXISTS ")?;
                }
                fmt_ident(f, name)?;
                let cols: Vec<String> = columns
                    .iter()
                    .map(|c| format!("{} {}", c.name, c.data_type))
                    .collect();
                write!(f, " ({})", cols.join(", "))
            }
            Statement::DropTable { name, if_exists } => {
                f.write_str("DROP TABLE ")?;
                if *if_exists {
                    f.write_str("IF EXISTS ")?;
                }
                fmt_ident(f, name)
            }
            Statement::Insert { table, columns, rows } => {
                f.write_str("INSERT INTO ")?;
                fmt_ident(f, table)?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                f.write_str(" VALUES ")?;
                let tuples: Vec<String> = rows
                    .iter()
                    .map(|vals| {
                        let items: Vec<String> = vals.iter().map(|e| e.to_string()).collect();
                        format!("({})", items.join(", "))
                    })
                    .collect();
                f.write_str(&tuples.join(", "))
            }
            Statement::InsertSelect { table, columns, query } => {
                f.write_str("INSERT INTO ")?;
                fmt_ident(f, table)?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                write!(f, " {query}")
            }
            Statement::Delete { table, filter } => {
                f.write_str("DELETE FROM ")?;
                fmt_ident(f, table)?;
                if let Some(w) = filter {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Update { table, assignments, filter } => {
                f.write_str("UPDATE ")?;
                fmt_ident(f, table)?;
                let sets: Vec<String> =
                    assignments.iter().map(|(c, e)| format!("{c} = {e}")).collect();
                write!(f, " SET {}", sets.join(", "))?;
                if let Some(w) = filter {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::CreateIndex { name, table, column, if_not_exists } => {
                f.write_str("CREATE INDEX ")?;
                if *if_not_exists {
                    f.write_str("IF NOT EXISTS ")?;
                }
                fmt_ident(f, name)?;
                f.write_str(" ON ")?;
                fmt_ident(f, table)?;
                write!(f, " ({column})")
            }
            Statement::DropIndex { name, if_exists } => {
                f.write_str("DROP INDEX ")?;
                if *if_exists {
                    f.write_str("IF EXISTS ")?;
                }
                fmt_ident(f, name)
            }
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Explain(s) => write!(f, "EXPLAIN {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders_and_display() {
        let e = Expr::and(
            Expr::eq(Expr::qcol("l", "city"), Expr::lit("Torino")),
            Expr::binary(Expr::col("tons"), BinaryOp::Gt, Expr::lit(100)),
        );
        assert_eq!(e.to_string(), "((l.city = 'Torino') AND (tons > 100))");
    }

    #[test]
    fn string_literal_escaped_on_display() {
        let e = Expr::lit("it's");
        assert_eq!(e.to_string(), "'it''s'");
    }

    #[test]
    fn aggregate_detection() {
        let e = Expr::Function {
            name: "count".into(),
            args: vec![],
            distinct: false,
            star: true,
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let nested = Expr::binary(Expr::lit(1), BinaryOp::Plus, e);
        assert!(nested.contains_aggregate());
    }

    #[test]
    fn rewrite_replaces_nodes() {
        let e = Expr::eq(Expr::col("elem_name"), Expr::lit("HazardousWaste"));
        let rewritten = e.rewrite(&mut |node| match node {
            Expr::Literal(Value::Str(s)) if s == "HazardousWaste" => Expr::InList {
                expr: Box::new(Expr::col("elem_name")),
                list: vec![Expr::lit("Hg"), Expr::lit("Pb")],
                negated: false,
            },
            other => other,
        });
        let text = rewritten.to_string();
        assert!(text.contains("IN ('Hg', 'Pb')"), "{text}");
    }

    #[test]
    fn select_display_round_trip_shape() {
        let mut s = Select::empty();
        s.projections = vec![
            SelectItem::Expr { expr: Expr::col("elem_name"), alias: None },
            SelectItem::Expr { expr: Expr::col("landfill_name"), alias: Some("l".into()) },
        ];
        s.from = vec![TableRef::Table { name: "elem_contained".into(), alias: None }];
        s.filter = Some(Expr::eq(Expr::col("landfill_name"), Expr::lit("a")));
        s.limit = Some(10);
        assert_eq!(
            s.to_string(),
            "SELECT elem_name, landfill_name AS l FROM elem_contained \
             WHERE (landfill_name = 'a') LIMIT 10"
        );
    }

    #[test]
    fn weird_identifiers_are_quoted() {
        let e = Expr::qcol("od d", "sel ect");
        assert_eq!(e.to_string(), "\"od d\".\"sel ect\"");
    }
}
