// srclint: allow(R002): char reads are at byte offsets produced by the same scan, always in bounds
//! Hand-written SQL lexer.

use crate::error::{Error, Result};

use super::token::{Token, TokenKind};

/// Tokenize a SQL string.
///
/// Supports `--` line comments and `/* ... */` block comments, single-quoted
/// string literals with `''` escaping, double-quoted identifiers, and the
/// operator set of [`TokenKind`]. Always ends the stream with a single
/// [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Lexer { input: input.as_bytes(), src: input, pos: 0 }.run()
}

struct Lexer<'a> {
    input: &'a [u8],
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let offset = self.pos;
            let Some(&b) = self.input.get(self.pos) else {
                out.push(Token { kind: TokenKind::Eof, offset });
                return Ok(out);
            };
            let kind = match b {
                b',' => self.single(TokenKind::Comma),
                b'.' => {
                    // A dot followed by a digit could be a float like `.5`;
                    // SQL usage here is dominated by qualified names, so a
                    // leading-dot float is only lexed when not preceded by
                    // an identifier — the parser never needs `.5` anyway,
                    // so we keep the simple rule: always punctuation.
                    self.single(TokenKind::Dot)
                }
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'*' => self.single(TokenKind::Star),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'/' => self.single(TokenKind::Slash),
                b'%' => self.single(TokenKind::Percent),
                b';' => self.single(TokenKind::Semicolon),
                b'=' => self.single(TokenKind::Eq),
                b'<' => {
                    self.pos += 1;
                    match self.input.get(self.pos) {
                        Some(b'=') => {
                            self.pos += 1;
                            TokenKind::LtEq
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            TokenKind::NotEq
                        }
                        _ => TokenKind::Lt,
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.input.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        TokenKind::GtEq
                    } else {
                        TokenKind::Gt
                    }
                }
                b'!' => {
                    self.pos += 1;
                    if self.input.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        TokenKind::NotEq
                    } else {
                        return Err(Error::lex("unexpected `!`", offset));
                    }
                }
                b'|' => {
                    self.pos += 1;
                    if self.input.get(self.pos) == Some(&b'|') {
                        self.pos += 1;
                        TokenKind::Concat
                    } else {
                        return Err(Error::lex("unexpected `|` (did you mean `||`?)", offset));
                    }
                }
                b'?' => self.single(TokenKind::PositionalParam),
                b'$' => {
                    self.pos += 1;
                    let start = self.pos;
                    while matches!(self.input.get(self.pos),
                        Some(b) if b.is_ascii_alphanumeric() || *b == b'_')
                    {
                        self.pos += 1;
                    }
                    if start == self.pos {
                        return Err(Error::lex(
                            "`$` must be followed by a parameter name",
                            offset,
                        ));
                    }
                    TokenKind::NamedParam(self.src[start..self.pos].to_string())
                }
                b'\'' => self.string_literal()?,
                b'"' => self.quoted_ident()?,
                b'0'..=b'9' => self.number()?,
                b if b.is_ascii_alphabetic() || b == b'_' => self.ident(),
                other => {
                    return Err(Error::lex(
                        format!("unexpected character `{}`", other as char),
                        offset,
                    ))
                }
            };
            out.push(Token { kind, offset });
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.input.get(self.pos) {
                Some(b) if b.is_ascii_whitespace() => self.pos += 1,
                Some(b'-') if self.input.get(self.pos + 1) == Some(&b'-') => {
                    while let Some(&b) = self.input.get(self.pos) {
                        self.pos += 1;
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.input.get(self.pos + 1) == Some(&b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.input.get(self.pos), self.input.get(self.pos + 1)) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(Error::lex("unterminated block comment", start))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn string_literal(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            match self.input.get(self.pos) {
                Some(b'\'') => {
                    if self.input.get(self.pos + 1) == Some(&b'\'') {
                        s.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(TokenKind::String(s));
                    }
                }
                Some(_) => {
                    // advance one full UTF-8 character
                    let ch = self.src[self.pos..].chars().next().expect("in bounds");
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error::lex("unterminated string literal", start)),
            }
        }
    }

    fn quoted_ident(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        self.pos += 1;
        let mut s = String::new();
        loop {
            match self.input.get(self.pos) {
                Some(b'"') => {
                    if self.input.get(self.pos + 1) == Some(&b'"') {
                        s.push('"');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        if s.is_empty() {
                            return Err(Error::lex("empty quoted identifier", start));
                        }
                        return Ok(TokenKind::Ident { value: s, quoted: true });
                    }
                }
                Some(_) => {
                    let ch = self.src[self.pos..].chars().next().expect("in bounds");
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error::lex("unterminated quoted identifier", start)),
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        while matches!(self.input.get(self.pos), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.input.get(self.pos) == Some(&b'.')
            && matches!(self.input.get(self.pos + 1), Some(b) if b.is_ascii_digit())
        {
            is_float = true;
            self.pos += 1;
            while matches!(self.input.get(self.pos), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.input.get(self.pos), Some(b'e' | b'E')) {
            let mut look = self.pos + 1;
            if matches!(self.input.get(look), Some(b'+' | b'-')) {
                look += 1;
            }
            if matches!(self.input.get(look), Some(b) if b.is_ascii_digit()) {
                is_float = true;
                self.pos = look;
                while matches!(self.input.get(self.pos), Some(b) if b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| Error::lex(format!("bad float literal: {e}"), start))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|e| Error::lex(format!("bad integer literal: {e}"), start))
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.input.get(self.pos), Some(b) if b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        TokenKind::Ident { value: self.src[start..self.pos].to_string(), quoted: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select() {
        let ks = kinds("SELECT a FROM t;");
        assert!(ks[0].is_kw("select"));
        assert!(ks[1].is_kw("a"));
        assert!(ks[2].is_kw("from"));
        assert_eq!(ks[4], TokenKind::Semicolon);
        assert_eq!(ks[5], TokenKind::Eof);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("<= >= <> != = < > || + - * / %")
                .into_iter()
                .take(13)
                .collect::<Vec<_>>(),
            vec![
                TokenKind::LtEq,
                TokenKind::GtEq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Eq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Concat,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
            ]
        );
    }

    #[test]
    fn string_escape() {
        assert_eq!(kinds("'it''s'")[0], TokenKind::String("it's".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("4.25")[0], TokenKind::Float(4.25));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::Float(0.25));
    }

    #[test]
    fn dot_is_punctuation_in_qualified_names() {
        let ks = kinds("t.col");
        assert!(ks[0].is_kw("t"));
        assert_eq!(ks[1], TokenKind::Dot);
        assert!(ks[2].is_kw("col"));
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("SELECT -- hi\n 1 /* there */ , 2");
        assert!(ks[0].is_kw("select"));
        assert_eq!(ks[1], TokenKind::Int(1));
        assert_eq!(ks[2], TokenKind::Comma);
        assert_eq!(ks[3], TokenKind::Int(2));
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(tokenize("/* nope").is_err());
    }

    #[test]
    fn quoted_identifier_preserves_case() {
        match &kinds("\"MiXeD\"")[0] {
            TokenKind::Ident { value, quoted: true } => assert_eq!(value, "MiXeD"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn utf8_in_strings() {
        assert_eq!(kinds("'Torinò'")[0], TokenKind::String("Torinò".into()));
    }

    #[test]
    fn unexpected_char_reports_position() {
        let err = tokenize("SELECT @").unwrap_err();
        match err {
            Error::Lex { position, .. } => assert_eq!(position, 7),
            other => panic!("unexpected {other:?}"),
        }
    }
}
