//! Recursive-descent SQL parser.

use crate::error::{Error, Result};
use crate::value::{DataType, Value};

use super::ast::*;
use super::lexer::tokenize;
use super::token::{Token, TokenKind};

/// Parse a single SQL statement (an optional trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat_kind(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat_kind(&TokenKind::Semicolon) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.statement()?);
        if !p.eat_kind(&TokenKind::Semicolon) {
            p.expect_eof()?;
            return Ok(out);
        }
    }
}

/// Parse a standalone scalar expression (used by the SESQL condition
/// scanner to re-locate tagged conditions inside the cleaned WHERE clause).
pub fn parse_expr(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// One parameter slot of a prepared statement, in slot-index order.
///
/// Named placeholders (`$name`) occurring several times share one slot;
/// every positional `?` gets a fresh anonymous slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSlot {
    pub name: Option<String>,
}

/// Parse a single statement together with its parameter slot table
/// (the prepare-side entry point; [`parse_statement`] remains the plain
/// text-in path).
pub fn parse_statement_with_params(sql: &str) -> Result<(Statement, Vec<ParamSlot>)> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat_kind(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok((stmt, p.params))
}

/// Parse a standalone expression keeping its parameter slots.
pub fn parse_expr_with_params(sql: &str) -> Result<(Expr, Vec<ParamSlot>)> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok((e, p.params))
}

/// Reconstruct the parameter slot table of a parsed SELECT from its
/// `Expr::Param` nodes (every clause, union members, subquery bodies).
/// Inverse of the parser's slot assignment — used when a cached AST needs
/// its slots re-derived.
pub fn collect_params(select: &Select) -> Vec<ParamSlot> {
    fn note(slots: &mut Vec<ParamSlot>, index: usize, name: &Option<String>) {
        if slots.len() <= index {
            slots.resize(index + 1, ParamSlot { name: None });
        }
        if name.is_some() {
            slots[index].name = name.clone();
        }
    }
    fn walk_expr(e: &Expr, slots: &mut Vec<ParamSlot>) {
        e.visit(&mut |node| {
            if let Expr::Param { index, name } = node {
                note(slots, *index, name);
            }
        });
        // `visit` treats subquery bodies as separate scopes; descend.
        match e {
            Expr::InSubquery { query, .. }
            | Expr::Exists { query, .. }
            | Expr::ScalarSubquery(query) => walk_select(query, slots),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => walk_expr(expr, slots),
            Expr::Binary { left, right, .. } => {
                walk_expr(left, slots);
                walk_expr(right, slots);
            }
            Expr::InList { expr, list, .. } => {
                walk_expr(expr, slots);
                list.iter().for_each(|e| walk_expr(e, slots));
            }
            Expr::Between { expr, low, high, .. } => {
                walk_expr(expr, slots);
                walk_expr(low, slots);
                walk_expr(high, slots);
            }
            Expr::Like { expr, pattern, .. } => {
                walk_expr(expr, slots);
                walk_expr(pattern, slots);
            }
            Expr::Function { args, .. } => args.iter().for_each(|e| walk_expr(e, slots)),
            Expr::Case { operand, branches, else_expr } => {
                operand.iter().for_each(|e| walk_expr(e, slots));
                for (w, t) in branches {
                    walk_expr(w, slots);
                    walk_expr(t, slots);
                }
                else_expr.iter().for_each(|e| walk_expr(e, slots));
            }
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param { .. } => {}
        }
    }
    fn walk_table_ref(tr: &super::ast::TableRef, slots: &mut Vec<ParamSlot>) {
        if let super::ast::TableRef::Join { left, right, on, .. } = tr {
            walk_table_ref(left, slots);
            walk_table_ref(right, slots);
            on.iter().for_each(|e| walk_expr(e, slots));
        }
    }
    fn walk_select(select: &Select, slots: &mut Vec<ParamSlot>) {
        for p in &select.projections {
            if let super::ast::SelectItem::Expr { expr, .. } = p {
                walk_expr(expr, slots);
            }
        }
        select.from.iter().for_each(|tr| walk_table_ref(tr, slots));
        select.filter.iter().for_each(|e| walk_expr(e, slots));
        select.group_by.iter().for_each(|e| walk_expr(e, slots));
        select.having.iter().for_each(|e| walk_expr(e, slots));
        select.order_by.iter().for_each(|o| walk_expr(&o.expr, slots));
        for (_, member) in &select.union {
            walk_select(member, slots);
        }
    }
    let mut slots = Vec::new();
    walk_select(select, &mut slots);
    slots
}

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Parameter slots discovered so far, in slot-index order.
    params: Vec<ParamSlot>,
}

impl Parser {
    pub(crate) fn new(sql: &str) -> Result<Self> {
        Ok(Parser { tokens: tokenize(sql)?, pos: 0, params: Vec::new() })
    }

    /// Slot index for a placeholder: named parameters reuse their slot,
    /// positional ones always allocate.
    fn param_slot(&mut self, name: Option<String>) -> usize {
        if let Some(n) = &name {
            if let Some(i) = self
                .params
                .iter()
                .position(|s| s.name.as_deref() == Some(n.as_str()))
            {
                return i;
            }
        }
        self.params.push(ParamSlot { name });
        self.params.len() - 1
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(Error::parse(
                format!("unexpected trailing input `{}`", self.peek()),
                self.offset(),
            ))
        }
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat_kind(kind) {
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected `{kind}`, found `{}`", self.peek()),
                self.offset(),
            ))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected `{}`, found `{}`", kw.to_uppercase(), self.peek()),
                self.offset(),
            ))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_kw(kw)
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident { value, .. } => {
                self.advance();
                Ok(value)
            }
            other => Err(Error::parse(
                format!("expected identifier, found `{other}`"),
                self.offset(),
            )),
        }
    }

    // ---- statements -----------------------------------------------------

    pub(crate) fn statement(&mut self) -> Result<Statement> {
        if self.peek_kw("select") {
            return Ok(Statement::Select(Box::new(self.select()?)));
        }
        if self.eat_kw("explain") {
            return Ok(Statement::Explain(Box::new(self.select()?)));
        }
        if self.eat_kw("create") {
            if self.eat_kw("index") {
                return self.create_index();
            }
            return self.create_table();
        }
        if self.eat_kw("drop") {
            if self.eat_kw("index") {
                let if_exists = self.if_clause("exists")?;
                let name = self.ident()?;
                return Ok(Statement::DropIndex { name, if_exists });
            }
            self.expect_kw("table")?;
            let if_exists = self.if_clause("exists")?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident()?;
            let filter = if self.eat_kw("where") { Some(self.expr()?) } else { None };
            return Ok(Statement::Delete { table, filter });
        }
        if self.eat_kw("update") {
            return self.update();
        }
        Err(Error::parse(
            format!("expected a statement, found `{}`", self.peek()),
            self.offset(),
        ))
    }

    fn if_clause(&mut self, second: &str) -> Result<bool> {
        if self.peek_kw("if") {
            self.advance();
            if second == "exists" {
                self.expect_kw("exists")?;
            } else {
                self.expect_kw("not")?;
                self.expect_kw("exists")?;
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn create_index(&mut self) -> Result<Statement> {
        let if_not_exists = self.if_clause("not exists")?;
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect_kind(&TokenKind::LParen)?;
        let column = self.ident()?;
        self.expect_kind(&TokenKind::RParen)?;
        Ok(Statement::CreateIndex { name, table, column, if_not_exists })
    }

    fn create_table(&mut self) -> Result<Statement> {
        let or_replace = if self.eat_kw("or") {
            self.expect_kw("replace")?;
            true
        } else {
            false
        };
        self.expect_kw("table")?;
        let if_not_exists = self.if_clause("not exists")?;
        let name = self.ident()?;
        self.expect_kind(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let type_name = self.ident()?;
            // Swallow a parenthesised length, e.g. VARCHAR(80).
            if self.eat_kind(&TokenKind::LParen) {
                loop {
                    match self.advance() {
                        TokenKind::RParen => break,
                        TokenKind::Eof => {
                            return Err(Error::parse("unterminated type arguments", self.offset()))
                        }
                        _ => {}
                    }
                }
            }
            let data_type = DataType::parse(&type_name)
                .map_err(|_| Error::parse(format!("unknown data type `{type_name}`"), self.offset()))?;
            columns.push(ColumnDef { name: col_name, data_type });
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RParen)?;
        Ok(Statement::CreateTable { name, columns, or_replace, if_not_exists })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let columns = if self.eat_kind(&TokenKind::LParen) {
            let mut cols = vec![self.ident()?];
            while self.eat_kind(&TokenKind::Comma) {
                cols.push(self.ident()?);
            }
            self.expect_kind(&TokenKind::RParen)?;
            Some(cols)
        } else {
            None
        };
        if self.peek_kw("select") {
            let query = self.select()?;
            return Ok(Statement::InsertSelect {
                table,
                columns,
                query: Box::new(query),
            });
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_kind(&TokenKind::LParen)?;
            let mut vals = vec![self.expr()?];
            while self.eat_kind(&TokenKind::Comma) {
                vals.push(self.expr()?);
            }
            self.expect_kind(&TokenKind::RParen)?;
            rows.push(vals);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, rows })
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_kind(&TokenKind::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, assignments, filter })
    }

    // ---- SELECT ----------------------------------------------------------

    pub(crate) fn select(&mut self) -> Result<Select> {
        let mut select = self.select_core()?;
        while self.eat_kw("union") {
            let all = self.eat_kw("all");
            let member = self.select_core()?;
            select.union.push((all, member));
        }
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                select.order_by.push(OrderItem { expr, ascending });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("limit") {
            select.limit = Some(self.unsigned()?);
        }
        if self.eat_kw("offset") {
            select.offset = Some(self.unsigned()?);
        }
        Ok(select)
    }

    /// One SELECT core: everything up to (but excluding) UNION / ORDER BY /
    /// LIMIT, which belong to the compound statement.
    fn select_core(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let mut select = Select::empty();
        select.distinct = self.eat_kw("distinct");
        if self.eat_kw("all") {
            // SELECT ALL is the default; accept and ignore.
        }
        loop {
            select.projections.push(self.select_item()?);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        if self.eat_kw("from") {
            loop {
                select.from.push(self.table_ref()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("where") {
            select.filter = Some(self.expr()?);
        }
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                select.group_by.push(self.expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("having") {
            select.having = Some(self.expr()?);
        }
        Ok(select)
    }

    fn unsigned(&mut self) -> Result<u64> {
        match self.peek().clone() {
            TokenKind::Int(i) if i >= 0 => {
                self.advance();
                Ok(i as u64)
            }
            other => Err(Error::parse(
                format!("expected non-negative integer, found `{other}`"),
                self.offset(),
            )),
        }
    }

    #[allow(clippy::if_same_then_else)] // branches differ in *when*, not what
    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_kind(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let TokenKind::Ident { value, .. } = self.peek().clone() {
            if *self.peek_at(1) == TokenKind::Dot && *self.peek_at(2) == TokenKind::Star {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(value));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if matches!(self.peek(), TokenKind::Ident { quoted: false, value }
            if !is_clause_keyword(value)) || matches!(self.peek(), TokenKind::Ident { quoted: true, .. })
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_factor()?;
        loop {
            let kind = if self.peek_kw("join") || self.peek_kw("inner") {
                self.eat_kw("inner");
                self.expect_kw("join")?;
                JoinKind::Inner
            } else if self.peek_kw("left") {
                self.advance();
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Left
            } else if self.peek_kw("cross") {
                self.advance();
                self.expect_kw("join")?;
                JoinKind::Cross
            } else {
                return Ok(left);
            };
            let right = self.table_factor()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_kw("on")?;
                Some(self.expr()?)
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
    }

    #[allow(clippy::if_same_then_else)] // branches differ in *when*, not what
    fn table_factor(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if matches!(self.peek(), TokenKind::Ident { quoted: false, value }
            if !is_table_clause_keyword(value))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    // ---- expressions -----------------------------------------------------
    //
    // Precedence (loosest to tightest):
    //   OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < additive ('+','-','||')
    //   < multiplicative < unary minus < primary

    pub(crate) fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::or(left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.peek_kw("is") {
            self.advance();
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = if self.peek_kw("not")
            && (self.peek_at(1).is_kw("in")
                || self.peek_at(1).is_kw("between")
                || self.peek_at(1).is_kw("like"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw("in") {
            self.expect_kind(&TokenKind::LParen)?;
            if self.peek_kw("select") {
                let query = self.select()?;
                self.expect_kind(&TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = Vec::new();
            if !self.eat_kind(&TokenKind::RParen) {
                list.push(self.expr()?);
                while self.eat_kind(&TokenKind::Comma) {
                    list.push(self.expr()?);
                }
                self.expect_kind(&TokenKind::RParen)?;
            }
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("like") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(Error::parse("expected IN, BETWEEN or LIKE after NOT", self.offset()));
        }
        let op = match self.peek() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expr::binary(left, op, right))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Plus,
                TokenKind::Minus => BinaryOp::Minus,
                TokenKind::Concat => BinaryOp::Concat,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Multiply,
                TokenKind::Slash => BinaryOp::Divide,
                TokenKind::Percent => BinaryOp::Modulo,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_kind(&TokenKind::Minus) {
            let inner = self.unary()?;
            // Fold negation of numeric literals so `-3` is a literal.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        if self.eat_kind(&TokenKind::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::NamedParam(n) => {
                self.advance();
                let index = self.param_slot(Some(n.clone()));
                Ok(Expr::Param { index, name: Some(n) })
            }
            TokenKind::PositionalParam => {
                self.advance();
                let index = self.param_slot(None);
                Ok(Expr::Param { index, name: None })
            }
            TokenKind::Int(i) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(i)))
            }
            TokenKind::Float(f) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(f)))
            }
            TokenKind::String(s) => {
                self.advance();
                // One shared allocation per literal: every per-row clone
                // during evaluation is then a refcount bump.
                Ok(Expr::Literal(Value::from(s)))
            }
            TokenKind::LParen => {
                self.advance();
                if self.peek_kw("select") {
                    let query = self.select()?;
                    self.expect_kind(&TokenKind::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(query)));
                }
                let e = self.expr()?;
                self.expect_kind(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident { value, quoted } => {
                if !quoted && value.eq_ignore_ascii_case("exists") {
                    self.advance();
                    self.expect_kind(&TokenKind::LParen)?;
                    if !self.peek_kw("select") {
                        return Err(Error::parse(
                            "EXISTS requires a subquery",
                            self.offset(),
                        ));
                    }
                    let query = self.select()?;
                    self.expect_kind(&TokenKind::RParen)?;
                    return Ok(Expr::Exists { query: Box::new(query), negated: false });
                }
                if !quoted && value.eq_ignore_ascii_case("case") {
                    self.advance();
                    return self.case_expr();
                }
                if !quoted && is_reserved_in_expr(&value) {
                    return Err(Error::parse(
                        format!("expected expression, found keyword `{value}`"),
                        self.offset(),
                    ));
                }
                if !quoted {
                    if value.eq_ignore_ascii_case("null") {
                        self.advance();
                        return Ok(Expr::Literal(Value::Null));
                    }
                    if value.eq_ignore_ascii_case("true") {
                        self.advance();
                        return Ok(Expr::Literal(Value::Bool(true)));
                    }
                    if value.eq_ignore_ascii_case("false") {
                        self.advance();
                        return Ok(Expr::Literal(Value::Bool(false)));
                    }
                }
                // function call?
                if *self.peek_at(1) == TokenKind::LParen {
                    self.advance(); // name
                    self.advance(); // (
                    if self.eat_kind(&TokenKind::Star) {
                        self.expect_kind(&TokenKind::RParen)?;
                        return Ok(Expr::Function {
                            name: value,
                            args: vec![],
                            distinct: false,
                            star: true,
                        });
                    }
                    let distinct = self.eat_kw("distinct");
                    let mut args = Vec::new();
                    if !self.eat_kind(&TokenKind::RParen) {
                        args.push(self.expr()?);
                        while self.eat_kind(&TokenKind::Comma) {
                            args.push(self.expr()?);
                        }
                        self.expect_kind(&TokenKind::RParen)?;
                    }
                    return Ok(Expr::Function { name: value, args, distinct, star: false });
                }
                // column ref, possibly qualified
                self.advance();
                if self.eat_kind(&TokenKind::Dot) {
                    let name = self.ident()?;
                    Ok(Expr::Column { qualifier: Some(value), name })
                } else {
                    Ok(Expr::Column { qualifier: None, name: value })
                }
            }
            other => Err(Error::parse(
                format!("expected expression, found `{other}`"),
                self.offset(),
            )),
        }
    }

    /// Parse the body of a CASE expression (the `CASE` keyword has been
    /// consumed): `[operand] WHEN w THEN t ... [ELSE e] END`.
    fn case_expr(&mut self) -> Result<Expr> {
        let operand = if self.peek_kw("when") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let w = self.expr()?;
            self.expect_kw("then")?;
            let t = self.expr()?;
            branches.push((w, t));
        }
        if branches.is_empty() {
            return Err(Error::parse("CASE requires at least one WHEN branch", self.offset()));
        }
        let else_expr = if self.eat_kw("else") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(Expr::Case { operand, branches, else_expr })
    }
}

/// Keywords that terminate the projection list (an unquoted identifier in
/// alias position must not swallow these).
fn is_clause_keyword(word: &str) -> bool {
    const KW: &[&str] = &[
        "from", "where", "group", "having", "order", "limit", "offset", "union", "as",
        "on", "join", "inner", "left", "right", "cross", "and", "or", "not", "asc",
        "desc", "enrich",
    ];
    KW.iter().any(|k| word.eq_ignore_ascii_case(k))
}

fn is_table_clause_keyword(word: &str) -> bool {
    is_clause_keyword(word)
}

/// Keywords that may not start an expression as a bare column reference.
/// A column really named like one of these can still be referenced with a
/// quoted identifier.
fn is_reserved_in_expr(word: &str) -> bool {
    const KW: &[&str] = &[
        "from", "where", "group", "having", "order", "limit", "offset", "select",
        "set", "values", "into", "by", "on", "join", "inner", "left", "right",
        "cross", "as", "distinct", "union", "enrich",
    ];
    KW.iter().any(|k| word.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_41_sql_part() {
        let stmt = parse_statement(
            "SELECT elem_name, landfill_name FROM elem_contained WHERE landfill_name = 'a'",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!("not a select") };
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.from.len(), 1);
        assert!(s.filter.is_some());
    }

    #[test]
    fn paper_example_46_self_join() {
        let stmt = parse_statement(
            "SELECT Elecond1.landfill_name AS l_name1, Elecond2.landfill_name AS l_name2, \
             Elecond1.elem_name \
             FROM elem_contained AS Elecond1, elem_contained AS Elecond2 \
             WHERE Elecond1.elem_name <> Elecond2.elem_name \
               AND Elecond1.elem_name = Elecond2.elem_name",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!("not a select") };
        assert_eq!(s.from.len(), 2);
        assert!(matches!(
            &s.from[1],
            TableRef::Table { alias: Some(a), .. } if a == "Elecond2"
        ));
    }

    #[test]
    fn create_insert_round_trip() {
        let c = parse_statement(
            "CREATE TABLE landfill (name VARCHAR(80), city TEXT, tons FLOAT)",
        )
        .unwrap();
        match c {
            Statement::CreateTable { ref columns, .. } => {
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[0].data_type, DataType::Text);
            }
            _ => panic!(),
        }
        let i = parse_statement(
            "INSERT INTO landfill (name, city) VALUES ('a', 'b'), ('c', NULL)",
        )
        .unwrap();
        match i {
            Statement::Insert { rows, columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns.unwrap().len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn explicit_joins() {
        let s = parse_statement(
            "SELECT l.name FROM landfill l \
             JOIN elem_contained e ON l.name = e.landfill_name \
             LEFT JOIN analysis a ON a.landfill = l.name",
        )
        .unwrap();
        let Statement::Select(s) = s else { panic!() };
        match &s.from[0] {
            TableRef::Join { kind: JoinKind::Left, left, .. } => {
                assert!(matches!(**left, TableRef::Join { kind: JoinKind::Inner, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_or_and() {
        let e = parse_expr("a = 1 OR b = 2 AND c = 3").unwrap();
        // AND binds tighter: a=1 OR (b=2 AND c=3)
        match e {
            Expr::Binary { op: BinaryOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary { op: BinaryOp::Plus, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinaryOp::Multiply, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn in_between_like_is_null() {
        assert!(matches!(
            parse_expr("x IN ('a','b')").unwrap(),
            Expr::InList { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("x NOT IN ('a')").unwrap(),
            Expr::InList { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("x BETWEEN 1 AND 2").unwrap(),
            Expr::Between { .. }
        ));
        assert!(matches!(
            parse_expr("x LIKE 'a%'").unwrap(),
            Expr::Like { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("x IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn functions_and_count_star() {
        let e = parse_expr("COUNT(*)").unwrap();
        assert!(matches!(e, Expr::Function { star: true, .. }));
        let e = parse_expr("SUM(DISTINCT tons)").unwrap();
        assert!(matches!(e, Expr::Function { distinct: true, .. }));
        let e = parse_expr("coalesce(a, b, 0)").unwrap();
        assert!(matches!(e, Expr::Function { ref args, .. } if args.len() == 3));
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_expr("-3").unwrap(), Expr::lit(-3));
        assert_eq!(parse_expr("-2.5").unwrap(), Expr::lit(-2.5));
    }

    #[test]
    fn bare_alias_without_as() {
        let s = parse_statement("SELECT name n FROM landfill l").unwrap();
        let Statement::Select(s) = s else { panic!() };
        assert!(matches!(
            &s.projections[0],
            SelectItem::Expr { alias: Some(a), .. } if a == "n"
        ));
        assert!(matches!(
            &s.from[0],
            TableRef::Table { alias: Some(a), .. } if a == "l"
        ));
    }

    #[test]
    fn group_having_order_limit() {
        let s = parse_statement(
            "SELECT city, COUNT(*) AS n FROM landfill GROUP BY city \
             HAVING COUNT(*) > 1 ORDER BY n DESC, city LIMIT 5 OFFSET 2",
        )
        .unwrap();
        let Statement::Select(s) = s else { panic!() };
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].ascending);
        assert_eq!(s.limit, Some(5));
        assert_eq!(s.offset, Some(2));
    }

    #[test]
    fn wildcard_variants() {
        let s = parse_statement("SELECT *, l.* FROM landfill l").unwrap();
        let Statement::Select(s) = s else { panic!() };
        assert_eq!(s.projections[0], SelectItem::Wildcard);
        assert_eq!(s.projections[1], SelectItem::QualifiedWildcard("l".into()));
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_script(
            "CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT x FROM t;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("SELECT a FROM").is_err());
        assert!(parse_statement("INSERT t VALUES (1)").is_err());
        assert!(parse_statement("SELECT a FROM t WHERE").is_err());
        assert!(parse_statement("SELECT a FROM t extra garbage !").is_err());
        assert!(parse_expr("a NOT 3").is_err());
    }

    #[test]
    fn display_round_trip_reparses() {
        let sql = "SELECT DISTINCT l.name AS n, COUNT(*) FROM landfill AS l \
                   WHERE (l.city = 'Torino') AND (l.tons > 10) \
                   GROUP BY l.name ORDER BY n LIMIT 3";
        let stmt = parse_statement(sql).unwrap();
        let rendered = stmt.to_string();
        let reparsed = parse_statement(&rendered).unwrap();
        assert_eq!(stmt, reparsed, "rendered: {rendered}");
    }

    #[test]
    fn subquery_forms_parse_and_roundtrip() {
        for sql in [
            "SELECT a FROM t WHERE a IN (SELECT b FROM u)",
            "SELECT a FROM t WHERE a NOT IN (SELECT b FROM u WHERE b > 1)",
            "SELECT a FROM t WHERE EXISTS (SELECT b FROM u)",
            "SELECT a FROM t WHERE NOT EXISTS (SELECT b FROM u)",
            "SELECT a FROM t WHERE a > (SELECT MAX(b) FROM u)",
            "SELECT (SELECT MAX(b) FROM u) AS m FROM t",
        ] {
            let stmt = parse_statement(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            let rendered = stmt.to_string();
            let reparsed = parse_statement(&rendered)
                .unwrap_or_else(|e| panic!("re-parse `{rendered}`: {e}"));
            assert_eq!(stmt, reparsed, "rendered: {rendered}");
        }
    }

    #[test]
    fn in_subquery_ast_shape() {
        let e = parse_expr("a IN (SELECT b FROM u)").unwrap();
        assert!(matches!(e, Expr::InSubquery { negated: false, .. }));
        let e = parse_expr("a NOT IN (SELECT b FROM u)").unwrap();
        assert!(matches!(e, Expr::InSubquery { negated: true, .. }));
    }

    #[test]
    fn exists_requires_subquery() {
        assert!(parse_expr("EXISTS (a + 1)").is_err());
    }

    #[test]
    fn case_forms_parse_and_roundtrip() {
        for sql in [
            "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
            "SELECT CASE a WHEN 1 THEN 'x' WHEN 2 THEN 'y' END FROM t",
            "SELECT CASE WHEN a IS NULL THEN 0 END FROM t",
        ] {
            let stmt = parse_statement(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            let rendered = stmt.to_string();
            let reparsed = parse_statement(&rendered)
                .unwrap_or_else(|e| panic!("re-parse `{rendered}`: {e}"));
            assert_eq!(stmt, reparsed, "rendered: {rendered}");
        }
    }

    #[test]
    fn case_requires_when_and_end() {
        assert!(parse_expr("CASE END").is_err());
        assert!(parse_expr("CASE WHEN a THEN 1").is_err());
        assert!(parse_expr("CASE a THEN 1 END").is_err());
    }

    #[test]
    fn create_and_drop_index_parse() {
        let s = parse_statement("CREATE INDEX i ON t (c)").unwrap();
        assert!(matches!(s, Statement::CreateIndex { if_not_exists: false, .. }));
        let s = parse_statement("CREATE INDEX IF NOT EXISTS i ON t (c)").unwrap();
        assert!(matches!(s, Statement::CreateIndex { if_not_exists: true, .. }));
        let s = parse_statement("DROP INDEX IF EXISTS i").unwrap();
        assert!(matches!(s, Statement::DropIndex { if_exists: true, .. }));
        assert!(parse_statement("CREATE INDEX i ON t (a, b)").is_err());
    }

    #[test]
    fn update_and_delete() {
        let u = parse_statement("UPDATE t SET a = 1, b = 'x' WHERE c > 0").unwrap();
        match u {
            Statement::Update { assignments, filter, .. } => {
                assert_eq!(assignments.len(), 2);
                assert!(filter.is_some());
            }
            _ => panic!(),
        }
        let d = parse_statement("DELETE FROM t").unwrap();
        assert!(matches!(d, Statement::Delete { filter: None, .. }));
    }
}
