//! SQL tokens.

use std::fmt;

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds produced by the SQL lexer.
///
/// Keywords are *not* reserved at the lexer level: the lexer emits
/// [`TokenKind::Ident`] and the parser decides contextually, which keeps the
/// identifier space open for SESQL vocabulary (e.g. a column named `enrich`
/// would still lex, while the SESQL layer splits on the ENRICH keyword
/// before SQL parsing).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare or quoted identifier. `quoted` identifiers keep their case and
    /// never match keywords.
    Ident { value: String, quoted: bool },
    /// String literal (single quotes, `''` escape).
    String(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    // punctuation / operators
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    /// `<>` or `!=`
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// `||` string concatenation
    Concat,
    Semicolon,
    /// `$name` — a named parameter placeholder.
    NamedParam(String),
    /// `?` — a positional parameter placeholder.
    PositionalParam,
    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// If this token is a bare identifier equal (case-insensitively) to
    /// `kw`, return true. Quoted identifiers never match.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident { value, quoted: false } if value.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident { value, quoted: false } => write!(f, "{value}"),
            TokenKind::Ident { value, quoted: true } => write!(f, "\"{value}\""),
            TokenKind::String(s) => write!(f, "'{s}'"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::NotEq => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::LtEq => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::GtEq => f.write_str(">="),
            TokenKind::Concat => f.write_str("||"),
            TokenKind::Semicolon => f.write_str(";"),
            TokenKind::NamedParam(n) => write!(f, "${n}"),
            TokenKind::PositionalParam => f.write_str("?"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}
