//! CSV import/export.
//!
//! The SmartGround platform ingests data from "national agencies, public
//! bodies data bases, European statistics" — flat-file deliveries in
//! practice. This module provides an RFC-4180-style reader/writer (quoted
//! fields, embedded commas/newlines, `""` escapes) with typed import into
//! catalog tables.

use crate::error::{Error, Result};
use crate::storage::Table;
use crate::value::{DataType, Interner, Value};
use crate::RowSet;

/// Parse CSV text into records of string fields.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err(Error::parse("quote inside unquoted field", 0));
                }
                in_quotes = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
            }
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
            }
            other => field.push(other),
        }
    }
    if in_quotes {
        return Err(Error::parse("unterminated quoted field", 0));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Convert one CSV field to a typed value. Empty fields become NULL; text
/// fields intern through `interner` when given, so the (typically very
/// repetitive) categorical columns of a flat-file delivery share one
/// allocation per distinct value.
fn field_to_value(field: &str, ty: DataType, interner: Option<&Interner>) -> Result<Value> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        DataType::Text => Ok(match interner {
            Some(i) => i.value(field),
            None => Value::from(field),
        }),
        DataType::Int => field
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| Error::constraint(format!("`{field}` is not an integer"))),
        DataType::Float => field
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::constraint(format!("`{field}` is not a number"))),
        DataType::Bool => match field.trim().to_ascii_lowercase().as_str() {
            "true" | "t" | "1" | "yes" => Ok(Value::Bool(true)),
            "false" | "f" | "0" | "no" => Ok(Value::Bool(false)),
            other => Err(Error::constraint(format!("`{other}` is not a boolean"))),
        },
    }
}

/// Import CSV text into an existing table. With `has_header` the first
/// record must name a subset/permutation of the table's columns; without
/// it, fields map positionally. Returns the number of rows inserted
/// (atomically: any bad row aborts the whole import).
pub fn import_csv(table: &Table, text: &str, has_header: bool) -> Result<usize> {
    import_csv_interned(table, text, has_header, None)
}

/// [`import_csv`] with text fields interned through `interner` (the
/// `Database` CSV path passes its own, so loads share allocations with
/// query literals and enrichment values).
pub fn import_csv_interned(
    table: &Table,
    text: &str,
    has_header: bool,
    interner: Option<&Interner>,
) -> Result<usize> {
    let mut records = parse_csv(text)?;
    if records.is_empty() {
        return Ok(0);
    }
    let schema = &table.schema;
    let positions: Vec<usize> = if has_header {
        let header = records.remove(0);
        header
            .iter()
            .map(|name| schema.resolve(None, name.trim()))
            .collect::<Result<_>>()?
    } else {
        (0..schema.len()).collect()
    };

    let mut rows = Vec::with_capacity(records.len());
    for (lineno, record) in records.iter().enumerate() {
        if record.len() != positions.len() {
            return Err(Error::constraint(format!(
                "record {} has {} fields, expected {}",
                lineno + 1,
                record.len(),
                positions.len()
            )));
        }
        let mut row = vec![Value::Null; schema.len()];
        for (field, &pos) in record.iter().zip(&positions) {
            row[pos] = field_to_value(field, schema.columns[pos].data_type, interner)?;
        }
        rows.push(row);
    }
    table.insert_many(rows)
}

fn escape_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Export a result set as CSV text (with a header line).
pub fn export_csv(rows: &RowSet) -> String {
    let mut out = String::new();
    // Bare column names (not alias-qualified forms) so an exported file
    // re-imports against a table with the same column names.
    let header: Vec<String> = rows
        .schema
        .columns
        .iter()
        .map(|c| escape_field(&c.name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in &rows.rows {
        let fields: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Str(s) => escape_field(s),
                other => other.lexical_form(),
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;

    fn db() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE landfill (name TEXT, city TEXT, tons FLOAT, open BOOLEAN)")
            .unwrap();
        db
    }

    #[test]
    fn parse_simple() {
        let r = parse_csv("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[1], vec!["1", "2", "3"]);
    }

    #[test]
    fn parse_quotes_commas_newlines() {
        let r = parse_csv("\"a,b\",\"say \"\"hi\"\"\",\"two\nlines\"\n").unwrap();
        assert_eq!(r[0], vec!["a,b", "say \"hi\"", "two\nlines"]);
    }

    #[test]
    fn parse_crlf_and_missing_trailing_newline() {
        let r = parse_csv("a,b\r\nc,d").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[1], vec!["c", "d"]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_csv("\"unterminated").is_err());
        assert!(parse_csv("ab\"cd\n").is_err());
    }

    #[test]
    fn import_positional() {
        let d = db();
        let t = d.catalog().get_table("landfill").unwrap();
        let n = import_csv(&t, "Basse di Stura,Torino,1200.5,true\nBarricalla,Collegno,,false\n", false)
            .unwrap();
        assert_eq!(n, 2);
        let rs = d.query("SELECT tons FROM landfill WHERE name = 'Barricalla'").unwrap();
        assert!(rs.rows[0][0].is_null(), "empty field becomes NULL");
    }

    #[test]
    fn import_with_header_reorders() {
        let d = db();
        let t = d.catalog().get_table("landfill").unwrap();
        import_csv(&t, "tons,name\n77.5,X\n", true).unwrap();
        let rs = d.query("SELECT name, tons, city FROM landfill").unwrap();
        assert_eq!(rs.rows[0][0], Value::from("X"));
        assert_eq!(rs.rows[0][1], Value::Float(77.5));
        assert!(rs.rows[0][2].is_null());
    }

    #[test]
    fn import_bad_type_is_atomic() {
        let d = db();
        let t = d.catalog().get_table("landfill").unwrap();
        let err = import_csv(&t, "A,Torino,12.5,true\nB,Torino,notanumber,true\n", false)
            .unwrap_err();
        assert!(err.to_string().contains("notanumber"), "{err}");
        assert_eq!(t.row_count(), 0, "nothing inserted on failure");
    }

    #[test]
    fn import_header_with_unknown_column_fails() {
        let d = db();
        let t = d.catalog().get_table("landfill").unwrap();
        assert!(import_csv(&t, "nope\nx\n", true).is_err());
    }

    #[test]
    fn import_arity_mismatch_reports_line() {
        let d = db();
        let t = d.catalog().get_table("landfill").unwrap();
        let err = import_csv(&t, "a,b,1.0,true\nshort\n", false).unwrap_err();
        assert!(err.to_string().contains("record 2"), "{err}");
    }

    #[test]
    fn bool_spellings() {
        for (text, want) in [("1", true), ("no", false), ("T", true), ("False", false)] {
            assert_eq!(
                field_to_value(text, DataType::Bool, None).unwrap(),
                Value::Bool(want)
            );
        }
        assert!(field_to_value("maybe", DataType::Bool, None).is_err());
    }

    #[test]
    fn export_round_trips() {
        let d = db();
        let t = d.catalog().get_table("landfill").unwrap();
        import_csv(&t, "\"A, inc\",Torino,1.5,true\nB,,2.0,false\n", false).unwrap();
        let rs = d.query("SELECT * FROM landfill ORDER BY name").unwrap();
        let csv = export_csv(&rs);
        assert!(csv.starts_with("name,city,tons,open\n"), "{csv}");
        assert!(csv.contains("\"A, inc\""), "{csv}");

        // Re-import the exported text into a fresh table.
        let d2 = db();
        let t2 = d2.catalog().get_table("landfill").unwrap();
        import_csv(&t2, &csv, true).unwrap();
        let rs2 = d2.query("SELECT * FROM landfill ORDER BY name").unwrap();
        assert_eq!(rs.rows, rs2.rows);
    }

    #[test]
    fn empty_input() {
        assert!(parse_csv("").unwrap().is_empty());
        let d = db();
        let t = d.catalog().get_table("landfill").unwrap();
        assert_eq!(import_csv(&t, "", false).unwrap(), 0);
    }
}
