//! The `Database` facade: parse → plan → execute, plus the prepared-
//! statement entry point (parse once → bind → stream).

use std::fmt;
use std::sync::Arc;

use crosse_cache::{CacheStats, Lru};
use parking_lot::Mutex;
pub use parking_lot::tracking::LockSiteStats;

use crate::error::{Error, Result};
use crate::exec::expr::bind;
use crate::exec::Rows;
use crate::opt::{optimize, OptimizerConfig};
use crate::plan::{plan_select, Plan};
use crate::prepared::{infer_slot_types, normalize_sql, Prepared, SlotInfo};
use crate::schema::{Column, Schema};
use crate::sql::ast::{Expr, Select, Statement};
use crate::sql::parser::{parse_script, parse_statement, parse_statement_with_params};
use crate::storage::durable::{
    DurabilityHandle, RelDurability, WalOptions, WalRedoSink, WalStats,
};
use crate::storage::snapshot::decode_catalog;
use crate::storage::wal::apply_rel_op;
use crate::storage::Catalog;
use crate::value::{Interner, Row, Value};

/// A materialised query result: a schema plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct RowSet {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl RowSet {
    pub fn empty(schema: Schema) -> Self {
        RowSet { schema, rows: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of an output column by name (alias-aware).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema.index_of_output(name)
    }

    /// All values of one output column.
    pub fn column_values(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self
            .column_index(name)
            .ok_or_else(|| Error::plan(format!("no output column `{name}`")))?;
        Ok(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Render as an ASCII table (for examples and the experiment harness).
    pub fn to_ascii_table(&self) -> String {
        let headers: Vec<String> =
            self.schema.columns.iter().map(|c| c.display_name()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = match v {
                            Value::Str(s) => s.to_string(),
                            other => other.to_string(),
                        };
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &cells {
            out.push('|');
            for (c, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {c:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out.push_str(&format!("({} rows)\n", self.rows.len()));
        out
    }
}

impl fmt::Display for RowSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii_table())
    }
}

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// SELECT produced rows.
    Rows(RowSet),
    /// DML affected `n` rows.
    Affected(usize),
    /// DDL completed.
    Done,
}

impl ExecOutcome {
    /// Unwrap a row set; error if the statement was not a SELECT.
    pub fn into_rows(self) -> Result<RowSet> {
        match self {
            ExecOutcome::Rows(r) => Ok(r),
            other => Err(Error::plan(format!("statement produced {other:?}, not rows"))),
        }
    }
}

/// Default capacity of the prepared-statement (plan) cache.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// A compiled statement as stored in the plan cache, tagged with the
/// catalog version its slots (and plan) were derived against.
#[derive(Debug, Clone)]
struct CachedStmt {
    select: Arc<Select>,
    slots: Arc<Vec<SlotInfo>>,
    plan: Option<(Arc<Plan>, u64)>,
    /// Lint diagnostics computed at prepare time (parameters allowed).
    warnings: Arc<Vec<crosse_lint::Diagnostic>>,
    version: u64,
}

/// An in-memory SQL database: a catalog plus an execution engine.
///
/// Cloning is cheap and shares the underlying catalog (and the plan
/// cache), mirroring a pool of connections to one server.
#[derive(Debug, Clone)]
pub struct Database {
    catalog: Catalog,
    plans: Arc<Mutex<Lru<String, CachedStmt>>>,
    /// Worker threads for morsel-parallel query execution (shared across
    /// clones — one engine, one setting). 1 = sequential.
    exec_threads: Arc<std::sync::atomic::AtomicUsize>,
    /// Shared string interner: repeated lexical forms entering the engine
    /// (CSV loads, enrichment term decodes) share one allocation, so text
    /// equality gets a pointer fast path across independent producers.
    interner: Arc<Interner>,
    /// Which plan-rewrite passes run between planning and execution
    /// (shared across clones — one engine, one setting).
    opt: Arc<Mutex<OptimizerConfig>>,
    /// Durability handle when the database was opened from a data
    /// directory ([`Database::open`]); `None` for in-memory databases.
    durability: Option<Arc<dyn DurabilityHandle>>,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            catalog: Catalog::default(),
            plans: Arc::new(Mutex::new_labeled("db.plan_cache", Lru::new(DEFAULT_PLAN_CACHE_CAPACITY))),
            exec_threads: Arc::new(std::sync::atomic::AtomicUsize::new(1)),
            interner: Arc::new(Interner::new()),
            opt: Arc::new(Mutex::new_labeled("db.opt_config", OptimizerConfig::default())),
            durability: None,
        }
    }
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Open (or create) a durable database at `path` with the default WAL
    /// options. Loads the latest snapshot, replays the log tail, then
    /// attaches the redo sink so every subsequent mutation is logged.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Database> {
        Self::open_with(path, WalOptions::default())
    }

    /// [`Database::open`] with explicit [`WalOptions`] (sync policy).
    pub fn open_with(
        path: impl AsRef<std::path::Path>,
        opts: WalOptions,
    ) -> Result<Database> {
        let (wal, recovered) = crosse_wal::WalStore::open(path, opts)?;
        let mut db = Database::new();
        // 1. Restore the checkpoint snapshot (if any).
        for (tag, bytes) in &recovered.sections {
            if *tag == crosse_wal::CHAN_REL {
                decode_catalog(&db.catalog, bytes, Some(&db.interner))?;
            }
        }
        // 2. Replay the log tail. No sink is attached yet, so replay never
        //    re-logs.
        for rec in &recovered.records {
            if rec.chan == crosse_wal::CHAN_REL {
                apply_rel_op(&db.catalog, &rec.payload, Some(&db.interner))?;
            }
        }
        // 3. Start logging.
        db.catalog
            .attach_sink(Arc::new(WalRedoSink::new(Arc::clone(&wal), crosse_wal::CHAN_REL)));
        db.durability = Some(Arc::new(RelDurability::new(
            wal,
            db.catalog.clone(),
            recovered.warnings.clone(),
        )));
        Ok(db)
    }

    /// Install a durability handle (used by `crosse-core`, which owns a
    /// combined relational+RDF checkpoint and shares one log).
    pub fn set_durability(&mut self, handle: Arc<dyn DurabilityHandle>) {
        self.durability = Some(handle);
    }

    /// Whether this database logs to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    fn durability(&self) -> Result<&Arc<dyn DurabilityHandle>> {
        self.durability.as_ref().ok_or_else(|| {
            Error::storage("database was not opened from a data directory")
        })
    }

    /// Take a checkpoint: pin both stores' state under the WAL barrier,
    /// write the snapshot off-thread, truncate the log. Returns the pinned
    /// LSN. Errors if the database is not durable.
    pub fn checkpoint(&self) -> Result<u64> {
        self.durability()?.checkpoint()
    }

    /// Wait for any in-flight checkpoint and surface its error, if any.
    pub fn checkpoint_join(&self) -> Result<()> {
        self.durability()?.checkpoint_join()
    }

    /// WAL statistics, or `None` for an in-memory database.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.durability.as_ref().map(|d| d.wal_stats())
    }

    /// Per-site lock acquisition/contention/hold-time counters from the
    /// concurrency tracking layer, sorted by site label. Counters are
    /// process-global (every labeled lock in the process reports here, not
    /// just this database's). Empty in release builds — the layer compiles
    /// out — and in debug builds unless `CROSSE_LOCK_TRACK` is set or
    /// [`parking_lot::tracking::set_enabled`] was called.
    pub fn lock_stats(&self) -> Vec<LockSiteStats> {
        parking_lot::tracking::stats()
    }

    /// Non-fatal notes from recovery (e.g. a torn final record that was
    /// truncated away). Empty for in-memory databases and clean opens.
    pub fn recovery_warnings(&self) -> Vec<String> {
        self.durability
            .as_ref()
            .map(|d| d.recovery_warnings())
            .unwrap_or_default()
    }

    /// The database's string interner (shared across clones). Layers that
    /// convert external data into [`Value`]s intern through this so
    /// repeated lexical forms cost one allocation total.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Import CSV text into `table_name`, interning text fields through
    /// the database's interner. See [`crate::csv::import_csv`].
    pub fn import_csv(&self, table_name: &str, text: &str, has_header: bool) -> Result<usize> {
        let table = self.catalog.get_table(table_name)?;
        crate::csv::import_csv_interned(&table, text, has_header, Some(&self.interner))
    }

    /// Set the worker-thread budget for morsel-parallel query execution
    /// (scan/filter/project pipelines and hash-join probe sides partition
    /// pinned snapshots across this many threads). 1 disables parallelism;
    /// 0 is clamped to 1. Applies to every clone of this database.
    pub fn set_exec_threads(&self, threads: usize) {
        self.exec_threads
            .store(threads.max(1), std::sync::atomic::Ordering::Release);
    }

    /// Current worker-thread budget for query execution.
    pub fn exec_threads(&self) -> usize {
        self.exec_threads.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Set which plan-rewrite passes run between planning and execution
    /// (see [`crate::opt`]). The default enables every pass;
    /// [`OptimizerConfig::none`] executes plans exactly as built —
    /// the equivalence property tests compare the two. Applies to every
    /// clone of this database and also invalidates cached plan templates
    /// (they embed the optimized shape).
    pub fn set_optimizer_config(&self, cfg: OptimizerConfig) {
        *self.opt.lock() = cfg;
        // Cached `Prepared` templates were optimized under the old
        // config; drop them rather than serve stale shapes.
        self.plans.lock().clear();
    }

    /// The active plan-rewrite pass configuration.
    pub fn optimizer_config(&self) -> OptimizerConfig {
        *self.opt.lock()
    }

    /// Plan a SELECT and run it through the configured rewrite passes.
    /// This is what every execution path uses; it is public so other
    /// layers (the SESQL engine's `EXPLAIN`, tooling) can inspect the
    /// exact plan a statement would run as.
    pub fn plan_optimized(&self, select: &Select) -> Result<crate::opt::Optimized> {
        let plan = plan_select(&self.catalog, select)?;
        Ok(optimize(plan, &self.optimizer_config())?)
    }

    /// Compile a SELECT into a [`Prepared`] handle: parse, collect typed
    /// parameter slots and (for parameterless statements) plan. Compiled
    /// statements are cached in a bounded LRU keyed by normalized text,
    /// so repeated `prepare` calls with equivalent text skip the whole
    /// front-end.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let key = normalize_sql(sql)?;
        let version = self.catalog.version();
        // Bind the lookup before matching: an `if let` scrutinee would
        // keep the cache lock alive across `finish_prepare`'s re-lock.
        let cached = { self.plans.lock().get(&key).cloned() };
        if let Some(cached) = cached {
            if cached.version == version {
                return Ok(Prepared::new(
                    self.clone(),
                    key,
                    cached.select,
                    cached.slots,
                    cached.plan,
                    cached.warnings,
                    cached.version,
                ));
            }
            // DDL since compilation: the parse is still valid (text → AST
            // is pure), but slot types and the plan template must be
            // re-derived against the live catalog.
            return self.finish_prepare(key, cached.select, version);
        }
        let (stmt, _) = parse_statement_with_params(sql)?;
        let Statement::Select(select) = stmt else {
            return Err(Error::plan(
                "only SELECT statements can be prepared (DDL/DML execute directly)",
            ));
        };
        self.finish_prepare(key, Arc::new(*select), version)
    }

    /// Infer slots + plan for `select` against the live catalog and
    /// (re-)publish the cache entry.
    fn finish_prepare(
        &self,
        key: String,
        select: Arc<Select>,
        version: u64,
    ) -> Result<Prepared> {
        let raw_slots = crate::sql::parser::collect_params(&select);
        // Prepare-time invariant: the AST must not reference a parameter
        // slot outside the table we just derived (an engine bug in slot
        // collection or AST caching, not a user error).
        crate::opt::validate::check_param_slots(&select, raw_slots.len())
            .map_err(Error::plan)?;
        let slots = Arc::new(infer_slot_types(&self.catalog, &select, &raw_slots));
        let plan = if slots.is_empty() {
            // Templates are cached post-optimization: repeated executions
            // replay the rewritten (pushed-down, spooled) shape directly.
            Some((Arc::new(self.plan_optimized(&select)?.plan), version))
        } else {
            None
        };
        // Parameters are expected in a prepared statement, so the linter
        // runs with L006 suppressed. Lint against the normalized text:
        // spans are best-effort anyway and the original was not retained.
        let warnings =
            Arc::new(crate::lint::lint_select(&self.catalog, &select, &key, true));
        let cached = CachedStmt {
            select: Arc::clone(&select),
            slots: Arc::clone(&slots),
            plan: plan.clone(),
            warnings: Arc::clone(&warnings),
            version,
        };
        self.plans.lock().put(key.clone(), cached);
        Ok(Prepared::new(self.clone(), key, select, slots, plan, warnings, version))
    }

    /// Lint a statement without executing it: parse, then run the
    /// semantic rules of [`crate::lint`] (always-false predicates,
    /// implicit cross joins, coercing comparisons, ...). Parse errors are
    /// returned as errors; a clean statement returns an empty list.
    pub fn lint(&self, sql: &str) -> Result<Vec<crosse_lint::Diagnostic>> {
        let (stmt, _) = parse_statement_with_params(sql)?;
        Ok(crate::lint::lint_statement(&self.catalog, &stmt, sql, false))
    }

    /// Hit/miss/eviction statistics of the prepared-statement cache.
    pub fn prepare_cache_stats(&self) -> CacheStats {
        self.plans.lock().stats()
    }

    /// Resize the prepared-statement cache (0 disables caching).
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        self.plans.lock().set_capacity(capacity);
    }

    /// Parse, plan and stream a SELECT through a cursor in one call (the
    /// ad-hoc path; prepared statements amortise the front-end).
    pub fn query_cursor(&self, sql: &str) -> Result<Rows> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(select) = stmt else {
            return Err(Error::plan("query_cursor expects a SELECT statement"));
        };
        let plan = self.plan_optimized(&select)?.plan;
        Rows::from_plan_parallel(plan, self.exec_threads())
    }

    /// Parse and execute a single statement.
    pub fn execute(&self, sql: &str) -> Result<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a `;`-separated script, returning the outcome of each
    /// statement.
    pub fn execute_script(&self, sql: &str) -> Result<Vec<ExecOutcome>> {
        parse_script(sql)?
            .iter()
            .map(|s| self.execute_statement(s))
            .collect()
    }

    /// Shorthand: execute a SELECT and return its rows.
    pub fn query(&self, sql: &str) -> Result<RowSet> {
        self.execute(sql)?.into_rows()
    }

    /// Execute an already-parsed statement. The SESQL layer uses this to run
    /// the "cleaned" SQL query (paper Remark 4.1) without re-rendering text.
    pub fn execute_statement(&self, stmt: &Statement) -> Result<ExecOutcome> {
        match stmt {
            Statement::Select(s) => self.run_select(s).map(ExecOutcome::Rows),
            Statement::Explain(s) => {
                let optimized = self.plan_optimized(s)?;
                let schema = Schema::new(vec![Column::new("plan", crate::value::DataType::Text)]);
                let mut lines = explain_lines(&optimized);
                // Lint footer: one `-- lint:` line per diagnostic, so
                // EXPLAIN doubles as a quick statement health check.
                for d in crate::lint::lint_select(&self.catalog, s, "", true) {
                    lines.push(format!("-- lint: {d}"));
                }
                let rows = lines.into_iter().map(|l| vec![Value::from(l)]).collect();
                Ok(ExecOutcome::Rows(RowSet { schema, rows }))
            }
            Statement::CreateTable { name, columns, or_replace, if_not_exists } => {
                let cols: Vec<Column> = columns
                    .iter()
                    .map(|c| Column::new(c.name.clone(), c.data_type))
                    .collect();
                if *or_replace {
                    self.catalog.create_or_replace_table(name, cols)?;
                } else if *if_not_exists && self.catalog.has_table(name) {
                    // no-op
                } else {
                    self.catalog.create_table(name, cols)?;
                }
                Ok(ExecOutcome::Done)
            }
            Statement::DropTable { name, if_exists } => {
                match self.catalog.drop_table(name) {
                    Ok(()) => Ok(ExecOutcome::Done),
                    Err(_) if *if_exists => Ok(ExecOutcome::Done),
                    Err(e) => Err(e),
                }
            }
            Statement::CreateIndex { name, table, column, if_not_exists } => {
                if *if_not_exists && self.catalog.has_index(name) {
                    return Ok(ExecOutcome::Done);
                }
                self.catalog.create_index(name, table, column)?;
                Ok(ExecOutcome::Done)
            }
            Statement::DropIndex { name, if_exists } => {
                match self.catalog.drop_index(name) {
                    Ok(()) => Ok(ExecOutcome::Done),
                    Err(_) if *if_exists => Ok(ExecOutcome::Done),
                    Err(e) => Err(e),
                }
            }
            Statement::Insert { table, columns, rows } => {
                let t = self.catalog.get_table(table)?;
                let schema = &t.schema;
                // Map provided columns onto table positions.
                let positions: Vec<usize> = match columns {
                    Some(cols) => cols
                        .iter()
                        .map(|c| schema.resolve(None, c))
                        .collect::<Result<_>>()?,
                    None => (0..schema.len()).collect(),
                };
                let empty = Schema::default();
                let mut materialised = Vec::with_capacity(rows.len());
                for value_exprs in rows {
                    if value_exprs.len() != positions.len() {
                        return Err(Error::constraint(format!(
                            "INSERT expects {} values, got {}",
                            positions.len(),
                            value_exprs.len()
                        )));
                    }
                    let mut row = vec![Value::Null; schema.len()];
                    for (e, &pos) in value_exprs.iter().zip(&positions) {
                        // VALUES expressions are constant: bind to an empty
                        // schema and evaluate against an empty row.
                        let bound = bind(e, &empty)?;
                        row[pos] = bound.eval(&Vec::new())?;
                    }
                    materialised.push(row);
                }
                let n = t.insert_many(materialised)?;
                Ok(ExecOutcome::Affected(n))
            }
            Statement::InsertSelect { table, columns, query } => {
                let t = self.catalog.get_table(table)?;
                let schema = &t.schema;
                let positions: Vec<usize> = match columns {
                    Some(cols) => cols
                        .iter()
                        .map(|c| schema.resolve(None, c))
                        .collect::<Result<_>>()?,
                    None => (0..schema.len()).collect(),
                };
                let source = self.run_select(query)?;
                if source.schema.len() != positions.len() {
                    return Err(Error::constraint(format!(
                        "INSERT ... SELECT provides {} column(s), target expects {}",
                        source.schema.len(),
                        positions.len()
                    )));
                }
                let mut materialised = Vec::with_capacity(source.rows.len());
                for src_row in source.rows {
                    let mut row = vec![Value::Null; schema.len()];
                    for (v, &pos) in src_row.into_iter().zip(&positions) {
                        row[pos] = v;
                    }
                    materialised.push(row);
                }
                let n = t.insert_many(materialised)?;
                Ok(ExecOutcome::Affected(n))
            }
            Statement::Delete { table, filter } => {
                let t = self.catalog.get_table(table)?;
                let n = match filter {
                    None => {
                        let n = t.row_count();
                        t.truncate()?;
                        n
                    }
                    Some(f) => {
                        let pred = self.bind_dml_filter(f, &t.schema)?;
                        // Collect matches first so an evaluation error
                        // leaves the table untouched.
                        let rows = t.scan();
                        let mut keep_err: Option<Error> = None;
                        let matches: Vec<bool> = rows
                            .iter()
                            .map(|r| match pred.eval_predicate(r) {
                                Ok(b) => b,
                                Err(e) => {
                                    keep_err.get_or_insert(e);
                                    false
                                }
                            })
                            .collect();
                        if let Some(e) = keep_err {
                            return Err(e);
                        }
                        let mut it = matches.iter();
                        t.delete_where(|_| *it.next().unwrap_or(&false))?
                    }
                };
                Ok(ExecOutcome::Affected(n))
            }
            Statement::Update { table, assignments, filter } => {
                let t = self.catalog.get_table(table)?;
                let schema = t.schema.clone();
                let pred = filter
                    .as_ref()
                    .map(|f| self.bind_dml_filter(f, &schema))
                    .transpose()?;
                let bound: Vec<(usize, crate::exec::expr::BoundExpr)> = assignments
                    .iter()
                    .map(|(c, e)| Ok((schema.resolve(None, c)?, bind(e, &schema)?)))
                    .collect::<Result<_>>()?;
                let n = t.update_where(|row| {
                    if let Some(p) = &pred {
                        if !p.eval_predicate(row)? {
                            return Ok(false);
                        }
                    }
                    let mut new_row = row.clone();
                    for (idx, e) in &bound {
                        let v = e.eval(row)?;
                        new_row[*idx] =
                            v.coerce(schema.columns[*idx].data_type)?;
                    }
                    *row = new_row;
                    Ok(true)
                })?;
                Ok(ExecOutcome::Affected(n))
            }
        }
    }

    /// Bind a DELETE/UPDATE filter, first materialising any uncorrelated
    /// subqueries it contains (e.g. `DELETE ... WHERE x IN (SELECT ...)`).
    fn bind_dml_filter(
        &self,
        filter: &Expr,
        schema: &Schema,
    ) -> Result<crate::exec::expr::BoundExpr> {
        let resolved =
            crate::plan::resolve_expr_subqueries(&self.catalog, filter.clone())?;
        bind(&resolved, schema)
    }

    /// Plan a SELECT, optimize it and run it.
    pub fn run_select(&self, select: &Select) -> Result<RowSet> {
        let plan = self.plan_optimized(select)?.plan;
        let schema = plan.schema().clone();
        let rows = Rows::from_plan_parallel(plan, self.exec_threads())?
            .collect_rows()?
            .rows;
        Ok(RowSet { schema, rows })
    }

    /// Materialise a row set as a new table (the SESQL temporary support
    /// database stores JoinManager output this way).
    pub fn materialise(&self, name: &str, rows: &RowSet) -> Result<()> {
        self.materialise_owned(name, &rows.schema, rows.rows.clone())
    }

    /// [`Database::materialise`] for callers that already own the rows —
    /// no re-clone (the REPLACEVARIABLE pairs-cache hit path hands over
    /// one copy of its cached rows directly). Materialised tables are
    /// **ephemeral**: derived intermediates are rebuildable, so they stay
    /// out of the write-ahead log and checkpoint snapshots.
    pub fn materialise_owned(&self, name: &str, schema: &Schema, rows: Vec<Row>) -> Result<()> {
        let cols: Vec<Column> = schema
            .columns
            .iter()
            .map(|c| Column::new(c.name.clone(), c.data_type))
            .collect();
        let table = self.catalog.create_ephemeral_table(name, cols)?;
        table.insert_many(rows)?;
        Ok(())
    }
}

/// `EXPLAIN` rendering of an optimized plan, line by line.
pub(crate) fn explain_lines(optimized: &crate::opt::Optimized) -> Vec<String> {
    optimized.render().lines().map(str::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE landfill (name TEXT, city TEXT, tons FLOAT);
             INSERT INTO landfill VALUES
               ('Basse di Stura', 'Torino', 1200.0),
               ('Barricalla', 'Collegno', 800.5),
               ('Gerbido', 'Torino', 450.0),
               ('Vallette', NULL, 90.0);
             CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT, amount FLOAT);
             INSERT INTO elem_contained VALUES
               ('Hg', 'Basse di Stura', 12.5),
               ('Pb', 'Basse di Stura', 30.0),
               ('As', 'Barricalla', 5.25),
               ('Cu', 'Gerbido', 100.0),
               ('Hg', 'Gerbido', 3.5);",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_filter_project() {
        let rs = db()
            .query("SELECT name FROM landfill WHERE city = 'Torino' ORDER BY name")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::from("Basse di Stura"));
        assert_eq!(rs.rows[1][0], Value::from("Gerbido"));
    }

    #[test]
    fn null_city_not_matched_by_equality_or_inequality() {
        let d = db();
        let eq = d.query("SELECT name FROM landfill WHERE city = 'Torino'").unwrap();
        let ne = d.query("SELECT name FROM landfill WHERE city <> 'Torino'").unwrap();
        assert_eq!(eq.len() + ne.len(), 3); // 'Vallette' (NULL city) in neither
    }

    #[test]
    fn implicit_cross_join_with_where() {
        let rs = db()
            .query(
                "SELECT l.name, e.elem_name FROM landfill l, elem_contained e \
                 WHERE l.name = e.landfill_name AND e.elem_name = 'Hg' ORDER BY l.name",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn explicit_inner_join() {
        let rs = db()
            .query(
                "SELECT l.city, e.elem_name FROM landfill l \
                 JOIN elem_contained e ON l.name = e.landfill_name \
                 WHERE e.amount > 10 ORDER BY e.elem_name",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 3); // Hg(12.5), Pb(30), Cu(100)
    }

    #[test]
    fn left_join_pads_nulls() {
        let rs = db()
            .query(
                "SELECT l.name, e.elem_name FROM landfill l \
                 LEFT JOIN elem_contained e ON l.name = e.landfill_name \
                 ORDER BY l.name, e.elem_name",
            )
            .unwrap();
        // Vallette has no elements → one padded row. 5 matches + 1 = 6.
        assert_eq!(rs.rows.len(), 6);
        let vallette: Vec<_> = rs
            .rows
            .iter()
            .filter(|r| r[0] == Value::from("Vallette"))
            .collect();
        assert_eq!(vallette.len(), 1);
        assert!(vallette[0][1].is_null());
    }

    #[test]
    fn self_join_paper_example_46_shape() {
        // Landfills sharing a common element (Hg in Basse di Stura and Gerbido).
        let rs = db()
            .query(
                "SELECT e1.landfill_name AS l1, e2.landfill_name AS l2, e1.elem_name \
                 FROM elem_contained AS e1, elem_contained AS e2 \
                 WHERE e1.elem_name = e2.elem_name \
                   AND e1.landfill_name <> e2.landfill_name",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2); // (BdS,Gerbido,Hg) and (Gerbido,BdS,Hg)
    }

    #[test]
    fn aggregates_group_by_having() {
        let rs = db()
            .query(
                "SELECT landfill_name, COUNT(*) AS n, SUM(amount) AS total \
                 FROM elem_contained GROUP BY landfill_name \
                 HAVING COUNT(*) > 1 ORDER BY n DESC",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][1], Value::Int(2));
    }

    #[test]
    fn global_aggregate_without_group() {
        let rs = db().query("SELECT COUNT(*), AVG(amount) FROM elem_contained").unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(5));
    }

    #[test]
    fn global_aggregate_on_empty_table() {
        let d = db();
        d.execute("CREATE TABLE empty (x INT)").unwrap();
        let rs = d.query("SELECT COUNT(*), SUM(x) FROM empty").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert!(rs.rows[0][1].is_null());
    }

    #[test]
    fn distinct_rows() {
        let rs = db().query("SELECT DISTINCT elem_name FROM elem_contained").unwrap();
        assert_eq!(rs.rows.len(), 4); // Hg, Pb, As, Cu
    }

    #[test]
    fn order_by_desc_with_nulls_first_on_asc() {
        let rs = db().query("SELECT city FROM landfill ORDER BY city").unwrap();
        assert!(rs.rows[0][0].is_null(), "NULLs sort first in total order");
        let rs = db()
            .query("SELECT tons FROM landfill ORDER BY tons DESC LIMIT 1")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(1200.0));
    }

    #[test]
    fn limit_offset() {
        let rs = db()
            .query("SELECT name FROM landfill ORDER BY name LIMIT 2 OFFSET 1")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::from("Basse di Stura"));
    }

    #[test]
    fn order_by_non_projected_column() {
        let rs = db().query("SELECT name FROM landfill ORDER BY tons DESC").unwrap();
        assert_eq!(rs.rows[0][0], Value::from("Basse di Stura"));
        assert_eq!(rs.rows[3][0], Value::from("Vallette"));
    }

    #[test]
    fn update_and_delete() {
        let d = db();
        let out = d.execute("UPDATE landfill SET tons = 0.0 WHERE city = 'Torino'").unwrap();
        assert_eq!(out, ExecOutcome::Affected(2));
        let out = d.execute("DELETE FROM landfill WHERE tons = 0.0").unwrap();
        assert_eq!(out, ExecOutcome::Affected(2));
        let rs = d.query("SELECT COUNT(*) FROM landfill").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let d = db();
        d.execute("INSERT INTO landfill (name) VALUES ('NewOne')").unwrap();
        let rs = d
            .query("SELECT city, tons FROM landfill WHERE name = 'NewOne'")
            .unwrap();
        assert!(rs.rows[0][0].is_null());
        assert!(rs.rows[0][1].is_null());
    }

    #[test]
    fn insert_arity_mismatch_errors() {
        let d = db();
        assert!(d.execute("INSERT INTO landfill (name, city) VALUES ('x')").is_err());
    }

    #[test]
    fn create_if_not_exists_and_drop_if_exists() {
        let d = db();
        d.execute("CREATE TABLE IF NOT EXISTS landfill (x INT)").unwrap();
        // still the original schema
        assert!(d.query("SELECT name FROM landfill LIMIT 1").is_ok());
        d.execute("DROP TABLE IF EXISTS nothere").unwrap();
        assert!(d.execute("DROP TABLE nothere").is_err());
    }

    #[test]
    fn materialise_round_trip() {
        let d = db();
        let rs = d.query("SELECT name, tons FROM landfill WHERE tons > 100").unwrap();
        d.materialise("tmp_big", &rs).unwrap();
        let rs2 = d.query("SELECT COUNT(*) FROM tmp_big").unwrap();
        assert_eq!(rs2.rows[0][0], Value::Int(3));
    }

    #[test]
    fn select_without_from_computes() {
        let rs = db().query("SELECT 2 + 3 AS five, UPPER('hg')").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(5));
        assert_eq!(rs.rows[0][1], Value::from("HG"));
    }

    #[test]
    fn ascii_table_renders() {
        let rs = db().query("SELECT name FROM landfill ORDER BY name LIMIT 1").unwrap();
        let t = rs.to_ascii_table();
        assert!(t.contains("name"));
        assert!(t.contains("(1 rows)"));
    }

    #[test]
    fn in_list_filter() {
        let rs = db()
            .query("SELECT elem_name FROM elem_contained WHERE elem_name IN ('Hg','Pb')")
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn union_deduplicates_and_union_all_keeps() {
        let d = db();
        let u = d
            .query(
                "SELECT city FROM landfill WHERE tons > 400 \
                 UNION SELECT city FROM landfill WHERE city = 'Torino'",
            )
            .unwrap();
        // Torino (×2 matches collapse), Collegno — NULL city row from
        // Vallette is excluded by both filters.
        assert_eq!(u.len(), 2);
        let ua = d
            .query(
                "SELECT city FROM landfill WHERE tons > 400 \
                 UNION ALL SELECT city FROM landfill WHERE city = 'Torino'",
            )
            .unwrap();
        assert_eq!(ua.len(), 5); // 3 + 2
    }

    #[test]
    fn union_with_order_and_limit() {
        let d = db();
        let rs = d
            .query(
                "SELECT name FROM landfill WHERE city = 'Torino' \
                 UNION SELECT elem_name FROM elem_contained \
                 ORDER BY name DESC LIMIT 3",
            )
            .unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.rows[0][0], Value::from("Pb"));
    }

    #[test]
    fn union_arity_mismatch_rejected() {
        let d = db();
        assert!(d
            .query("SELECT name, city FROM landfill UNION SELECT name FROM landfill")
            .is_err());
    }

    #[test]
    fn union_mixed_chain_dedupes() {
        let d = db();
        // UNION ALL followed by UNION: strictest member wins (dedup).
        let rs = d
            .query(
                "SELECT city FROM landfill WHERE city = 'Torino' \
                 UNION ALL SELECT city FROM landfill WHERE city = 'Torino' \
                 UNION SELECT city FROM landfill WHERE city = 'Collegno'",
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn union_explain_shows_inputs() {
        let d = db();
        let rs = d
            .query("EXPLAIN SELECT name FROM landfill UNION SELECT elem_name FROM elem_contained")
            .unwrap();
        let text: String = rs
            .rows
            .iter()
            .map(|r| r[0].lexical_form())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("Union: 2 inputs"), "{text}");
    }

    #[test]
    fn where_on_left_join_right_side_is_not_pushed_below() {
        // WHERE e.amount > 5 after a LEFT JOIN removes NULL-padded rows
        // (NULL > 5 is UNKNOWN). Pushing it below the join would wrongly
        // keep Vallette with a padded row.
        let rs = db()
            .query(
                "SELECT l.name, e.amount FROM landfill l \
                 LEFT JOIN elem_contained e ON l.name = e.landfill_name \
                 WHERE e.amount > 5",
            )
            .unwrap();
        assert!(rs.rows.iter().all(|r| !r[1].is_null()));
        assert!(!rs.rows.iter().any(|r| r[0] == Value::from("Vallette")));
    }

    #[test]
    fn where_on_left_join_preserved_side_pushes_safely() {
        let rs = db()
            .query(
                "SELECT l.name, e.elem_name FROM landfill l \
                 LEFT JOIN elem_contained e ON l.name = e.landfill_name \
                 WHERE l.tons < 100 ORDER BY l.name",
            )
            .unwrap();
        // Only Vallette (90 tons), padded with NULL element.
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("Vallette"));
        assert!(rs.rows[0][1].is_null());
    }

    #[test]
    fn explain_shows_plan_shape() {
        let d = db();
        let rs = d
            .query(
                "EXPLAIN SELECT l.city, COUNT(*) FROM landfill l \
                 JOIN elem_contained e ON l.name = e.landfill_name \
                 WHERE e.amount > 1 GROUP BY l.city ORDER BY l.city LIMIT 3",
            )
            .unwrap();
        let text: String = rs
            .rows
            .iter()
            .map(|r| r[0].lexical_form())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("Aggregate"), "{text}");
        assert!(text.contains("SeqScan: landfill"), "{text}");
        assert!(text.contains("Limit"), "{text}");
    }

    #[test]
    fn explain_pushdown_visible() {
        let d = db();
        let rs = d
            .query(
                "EXPLAIN SELECT l.name FROM landfill l, elem_contained e \
                 WHERE l.name = e.landfill_name AND l.tons > 100",
            )
            .unwrap();
        let text: String = rs
            .rows
            .iter()
            .map(|r| r[0].lexical_form())
            .collect::<Vec<_>>()
            .join("\n");
        // Filter sits below the join after pushdown.
        let join_at = text.find("HashJoin").expect("hash join in plan");
        let filter_at = text.find("Filter").expect("pushed filter");
        assert!(filter_at > join_at, "{text}");
    }

    #[test]
    fn column_values_helper() {
        let rs = db().query("SELECT name, city FROM landfill").unwrap();
        let cities = rs.column_values("city").unwrap();
        assert_eq!(cities.len(), 4);
        assert!(rs.column_values("nope").is_err());
    }

    // ---- index DDL + indexed query paths -----------------------------------

    #[test]
    fn create_index_ddl_and_indexed_query_agree_with_scan() {
        let d = db();
        let want = d
            .query("SELECT name FROM landfill WHERE city = 'Torino' ORDER BY name")
            .unwrap();
        d.execute("CREATE INDEX idx_city ON landfill (city)").unwrap();
        let got = d
            .query("SELECT name FROM landfill WHERE city = 'Torino' ORDER BY name")
            .unwrap();
        assert_eq!(want.rows, got.rows);

        // EXPLAIN confirms the index path is actually chosen.
        let plan = d
            .query("EXPLAIN SELECT name FROM landfill WHERE city = 'Torino'")
            .unwrap();
        let text: String = plan
            .rows
            .iter()
            .map(|r| r[0].lexical_form())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("IndexScan"), "{text}");
    }

    #[test]
    fn indexed_query_after_dml_stays_correct() {
        let d = db();
        d.execute("CREATE INDEX idx_city ON landfill (city)").unwrap();
        d.execute("UPDATE landfill SET city = 'Torino' WHERE name = 'Barricalla'")
            .unwrap();
        d.execute("DELETE FROM landfill WHERE name = 'Gerbido'").unwrap();
        d.execute("INSERT INTO landfill VALUES ('Nuovo', 'Torino', 5.0)").unwrap();
        let rs = d
            .query("SELECT name FROM landfill WHERE city = 'Torino' ORDER BY name")
            .unwrap();
        let names: Vec<String> =
            rs.rows.iter().map(|r| r[0].lexical_form()).collect();
        assert_eq!(names, vec!["Barricalla", "Basse di Stura", "Nuovo"]);
    }

    #[test]
    fn index_ddl_variants() {
        let d = db();
        d.execute("CREATE INDEX i ON landfill (city)").unwrap();
        assert!(d.execute("CREATE INDEX i ON landfill (tons)").is_err());
        d.execute("CREATE INDEX IF NOT EXISTS i ON landfill (tons)").unwrap();
        d.execute("DROP INDEX i").unwrap();
        assert!(d.execute("DROP INDEX i").is_err());
        d.execute("DROP INDEX IF EXISTS i").unwrap();
    }

    #[test]
    fn index_scan_falls_back_when_index_dropped_after_planning() {
        let d = db();
        d.execute("CREATE INDEX idx_city ON landfill (city)").unwrap();
        let Statement::Select(s) =
            crate::sql::parser::parse_statement(
                "SELECT name FROM landfill WHERE city = 'Torino'",
            )
            .unwrap()
        else {
            panic!("not a select")
        };
        let plan = plan_select(d.catalog(), &s).unwrap();
        assert!(plan.explain().contains("IndexScan"));
        d.execute("DROP INDEX idx_city").unwrap();
        let rows = crate::exec::execute_plan(&plan).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn in_list_uses_index_end_to_end() {
        let d = db();
        d.execute("CREATE INDEX idx_city ON landfill (city)").unwrap();
        let rs = d
            .query(
                "SELECT name FROM landfill WHERE city IN ('Torino', 'Collegno') \
                 ORDER BY name",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    // ---- subqueries and CASE -----------------------------------------------

    #[test]
    fn in_subquery_resolves_to_semi_join_semantics() {
        let rs = db()
            .query(
                "SELECT name FROM landfill WHERE name IN \
                 (SELECT landfill_name FROM elem_contained WHERE elem_name = 'Hg') \
                 ORDER BY name",
            )
            .unwrap();
        let names: Vec<String> = rs.rows.iter().map(|r| r[0].lexical_form()).collect();
        assert_eq!(names, vec!["Basse di Stura", "Gerbido"]);
    }

    #[test]
    fn not_in_subquery_with_null_semantics() {
        let d = db();
        // Add a NULL landfill_name: NOT IN over a set containing NULL
        // filters everything (SQL three-valued logic).
        d.execute("INSERT INTO elem_contained VALUES ('Zn', NULL, 1.0)").unwrap();
        let rs = d
            .query(
                "SELECT name FROM landfill WHERE name NOT IN \
                 (SELECT landfill_name FROM elem_contained)",
            )
            .unwrap();
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn exists_and_not_exists() {
        let d = db();
        let rs = d
            .query(
                "SELECT name FROM landfill WHERE EXISTS \
                 (SELECT elem_name FROM elem_contained WHERE elem_name = 'Hg')",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 4); // uncorrelated TRUE keeps all rows
        let rs = d
            .query(
                "SELECT name FROM landfill WHERE NOT EXISTS \
                 (SELECT elem_name FROM elem_contained WHERE elem_name = 'Au')",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn scalar_subquery_in_comparison_and_projection() {
        let d = db();
        let rs = d
            .query(
                "SELECT name FROM landfill WHERE tons > \
                 (SELECT AVG(tons) FROM landfill) ORDER BY name",
            )
            .unwrap();
        let names: Vec<String> = rs.rows.iter().map(|r| r[0].lexical_form()).collect();
        assert_eq!(names, vec!["Barricalla", "Basse di Stura"]);

        let rs = d
            .query("SELECT (SELECT MAX(tons) FROM landfill)")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(1200.0));
    }

    #[test]
    fn scalar_subquery_empty_is_null_and_multirow_errors() {
        let d = db();
        let rs = d
            .query(
                "SELECT name FROM landfill WHERE tons = \
                 (SELECT tons FROM landfill WHERE name = 'missing')",
            )
            .unwrap();
        assert!(rs.rows.is_empty()); // NULL comparison keeps nothing

        let err = d
            .query("SELECT name FROM landfill WHERE tons = (SELECT tons FROM landfill)")
            .unwrap_err();
        assert!(err.to_string().contains("rows"), "{err}");
    }

    #[test]
    fn in_subquery_multi_column_rejected() {
        let err = db()
            .query(
                "SELECT name FROM landfill WHERE name IN \
                 (SELECT elem_name, landfill_name FROM elem_contained)",
            )
            .unwrap_err();
        assert!(err.to_string().contains("one column"), "{err}");
    }

    #[test]
    fn correlated_subquery_reports_unknown_column() {
        // The inner query references the outer alias — unsupported.
        let err = db()
            .query(
                "SELECT name FROM landfill l WHERE EXISTS \
                 (SELECT 1 FROM elem_contained e WHERE e.landfill_name = l.name)",
            )
            .unwrap_err();
        assert!(err.to_string().contains("l.name") || err.to_string().contains("unknown"),
            "{err}");
    }

    #[test]
    fn nested_subqueries_resolve_inner_first() {
        let rs = db()
            .query(
                "SELECT name FROM landfill WHERE name IN \
                 (SELECT landfill_name FROM elem_contained WHERE elem_name IN \
                   (SELECT elem_name FROM elem_contained WHERE amount > 50))",
            )
            .unwrap();
        // Cu (100.0) is in Gerbido only.
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("Gerbido"));
    }

    #[test]
    fn in_subquery_uses_index_when_available() {
        let d = db();
        d.execute("CREATE INDEX idx_name ON landfill (name)").unwrap();
        let plan = d
            .query(
                "EXPLAIN SELECT name FROM landfill WHERE name IN \
                 (SELECT landfill_name FROM elem_contained)",
            )
            .unwrap();
        let text: String = plan
            .rows
            .iter()
            .map(|r| r[0].lexical_form())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("IndexScan"), "{text}");
    }

    #[test]
    fn case_searched_form() {
        let rs = db()
            .query(
                "SELECT name, CASE WHEN tons > 1000 THEN 'large' \
                                   WHEN tons > 100 THEN 'medium' \
                                   ELSE 'small' END AS size \
                 FROM landfill ORDER BY name",
            )
            .unwrap();
        let sizes: Vec<String> = rs.rows.iter().map(|r| r[1].lexical_form()).collect();
        assert_eq!(sizes, vec!["medium", "large", "medium", "small"]);
    }

    #[test]
    fn case_operand_form_and_missing_else_is_null() {
        let rs = db()
            .query(
                "SELECT CASE city WHEN 'Torino' THEN 1 WHEN 'Collegno' THEN 2 END \
                 FROM landfill ORDER BY name",
            )
            .unwrap();
        let vals: Vec<Value> = rs.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(
            vals,
            vec![Value::Int(2), Value::Int(1), Value::Int(1), Value::Null]
        );
    }

    #[test]
    fn case_in_where_and_aggregates_over_case() {
        let d = db();
        let rs = d
            .query(
                "SELECT COUNT(*) FROM landfill \
                 WHERE CASE WHEN city IS NULL THEN FALSE ELSE TRUE END",
            )
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
        let rs = d
            .query(
                "SELECT SUM(CASE WHEN tons > 100 THEN 1 ELSE 0 END) FROM landfill",
            )
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn insert_select_copies_query_results() {
        let d = db();
        d.execute("CREATE TABLE torino (name TEXT, tons FLOAT)").unwrap();
        let n = d
            .execute(
                "INSERT INTO torino SELECT name, tons FROM landfill WHERE city = 'Torino'",
            )
            .unwrap();
        assert!(matches!(n, ExecOutcome::Affected(2)));
        let rs = d.query("SELECT name FROM torino ORDER BY name").unwrap();
        assert_eq!(rs.rows[0][0], Value::from("Basse di Stura"));
    }

    #[test]
    fn insert_select_with_column_list_fills_rest_with_null() {
        let d = db();
        d.execute("CREATE TABLE summary (city TEXT, total FLOAT, note TEXT)").unwrap();
        d.execute(
            "INSERT INTO summary (city, total) \
             SELECT city, SUM(tons) FROM landfill WHERE city IS NOT NULL GROUP BY city",
        )
        .unwrap();
        let rs = d.query("SELECT city, total, note FROM summary ORDER BY city").unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert!(rs.rows.iter().all(|r| r[2].is_null()));
    }

    #[test]
    fn insert_select_arity_mismatch_errors() {
        let d = db();
        d.execute("CREATE TABLE narrow (x TEXT)").unwrap();
        let err = d
            .execute("INSERT INTO narrow SELECT name, city FROM landfill")
            .unwrap_err();
        assert!(err.to_string().contains("column"), "{err}");
    }

    #[test]
    fn insert_select_coerces_and_validates_types() {
        let d = db();
        d.execute("CREATE TABLE typed (v FLOAT)").unwrap();
        // Int result coerces into a FLOAT column.
        d.execute("INSERT INTO typed SELECT COUNT(*) FROM landfill").unwrap();
        assert_eq!(d.query("SELECT v FROM typed").unwrap().rows[0][0], Value::Float(4.0));
        // Text into FLOAT is rejected, atomically.
        assert!(d.execute("INSERT INTO typed SELECT name FROM landfill").is_err());
        assert_eq!(d.query("SELECT COUNT(*) FROM typed").unwrap().rows[0][0], Value::Int(1));
    }

    #[test]
    fn delete_and_update_accept_subqueries() {
        let d = db();
        let n = d
            .execute(
                "DELETE FROM landfill WHERE name IN \
                 (SELECT landfill_name FROM elem_contained WHERE elem_name = 'Hg')",
            )
            .unwrap();
        assert!(matches!(n, ExecOutcome::Affected(2)));
        d.execute(
            "UPDATE elem_contained SET amount = 0 WHERE landfill_name NOT IN \
             (SELECT name FROM landfill)",
        )
        .unwrap();
        let rs = d
            .query("SELECT COUNT(*) FROM elem_contained WHERE amount = 0")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(4)); // rows pointing at deleted landfills
    }

    #[test]
    fn insert_select_roundtrips_through_display() {
        let stmt = crate::sql::parser::parse_statement(
            "INSERT INTO t (a, b) SELECT x, y FROM u WHERE x > 1",
        )
        .unwrap();
        let rendered = stmt.to_string();
        let reparsed = crate::sql::parser::parse_statement(&rendered).unwrap();
        assert_eq!(stmt, reparsed, "{rendered}");
    }

    #[test]
    fn case_null_operand_matches_nothing() {
        // 'Vallette' has a NULL city; CASE <null> WHEN ... never matches,
        // so it falls to ELSE.
        let rs = db()
            .query(
                "SELECT name, CASE city WHEN 'Torino' THEN 'T' ELSE 'other' END \
                 FROM landfill WHERE name = 'Vallette'",
            )
            .unwrap();
        assert_eq!(rs.rows[0][1], Value::from("other"));
    }

    #[test]
    fn null_needle_in_subquery_is_unknown() {
        let d = db();
        // city IS NULL for Vallette: `city IN (subquery)` is UNKNOWN → dropped.
        let rs = d
            .query(
                "SELECT name FROM landfill WHERE city IN (SELECT city FROM landfill)",
            )
            .unwrap();
        assert_eq!(rs.len(), 3, "NULL city row filtered by UNKNOWN");
    }

    #[test]
    fn subquery_in_having_and_order_by() {
        let d = db();
        let rs = d
            .query(
                "SELECT city, COUNT(*) AS n FROM landfill \
                 WHERE city IS NOT NULL GROUP BY city \
                 HAVING COUNT(*) >= (SELECT 1) \
                 ORDER BY n DESC, city",
            )
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::from("Torino"));
        assert_eq!(rs.rows[0][1], Value::Int(2));
    }

    #[test]
    fn exists_on_empty_table_is_false() {
        let d = db();
        d.execute("CREATE TABLE empty (x INT)").unwrap();
        let rs = d
            .query("SELECT name FROM landfill WHERE EXISTS (SELECT x FROM empty)")
            .unwrap();
        assert!(rs.rows.is_empty());
        let rs = d
            .query("SELECT name FROM landfill WHERE NOT EXISTS (SELECT x FROM empty)")
            .unwrap();
        assert_eq!(rs.len(), 4);
    }

    #[test]
    fn subquery_in_projection_with_alias() {
        let rs = db()
            .query("SELECT name, (SELECT COUNT(*) FROM elem_contained) AS n FROM landfill")
            .unwrap();
        assert!(rs.rows.iter().all(|r| r[1] == Value::Int(5)));
        assert_eq!(rs.schema.columns[1].name, "n");
    }

    #[test]
    fn in_subquery_inside_case_branch() {
        let rs = db()
            .query(
                "SELECT name, CASE WHEN name IN \
                   (SELECT landfill_name FROM elem_contained WHERE elem_name = 'Hg') \
                 THEN 'mercury' ELSE 'clean' END FROM landfill ORDER BY name",
            )
            .unwrap();
        let tags: Vec<String> = rs.rows.iter().map(|r| r[1].lexical_form()).collect();
        assert_eq!(tags, vec!["clean", "mercury", "mercury", "clean"]);
    }

    #[test]
    fn range_query_through_index_handles_floats_and_ints() {
        let d = db();
        d.execute("CREATE INDEX idx_tons ON landfill (tons)").unwrap();
        let rs = d
            .query("SELECT name FROM landfill WHERE tons >= 450 ORDER BY tons")
            .unwrap();
        let names: Vec<String> =
            rs.rows.iter().map(|r| r[0].lexical_form()).collect();
        assert_eq!(names, vec!["Gerbido", "Barricalla", "Basse di Stura"]);
    }

    #[test]
    fn hash_join_agrees_with_filter_for_huge_ints() {
        // 2^53 and 2^53+1 both round to the same f64. The hash-keyed join
        // and the comparison-based filter form must agree on how many
        // rows match the float — a non-transitive Value::Eq would make
        // the hash table drop one of the two build entries.
        let d = Database::new();
        d.execute_script(
            "CREATE TABLE a (i INT); CREATE TABLE b (f FLOAT);
             INSERT INTO a VALUES (9007199254740992), (9007199254740993);
             INSERT INTO b VALUES (9007199254740992.0);",
        )
        .unwrap();
        let joined = d.query("SELECT b.f, a.i FROM b, a WHERE b.f = a.i").unwrap();
        let filtered = d
            .query("SELECT b.f, a.i FROM b, a WHERE b.f <= a.i AND b.f >= a.i")
            .unwrap();
        assert_eq!(joined.rows.len(), filtered.rows.len());
        assert_eq!(joined.rows.len(), 2);
    }
}
