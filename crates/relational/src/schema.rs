//! Table and result-set schemas.

use std::fmt;

use crate::error::{Error, Result};
use crate::value::DataType;

/// A column definition: an optional table qualifier, a name, and a type.
///
/// Result-set columns carry the qualifier of the table (or alias) they came
/// from so that `Elecond1.elem_name` and `Elecond2.elem_name` (paper
/// Example 4.6) remain distinguishable after a self-join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub qualifier: Option<String>,
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column { qualifier: None, name: name.into(), data_type, nullable: true }
    }

    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
    ) -> Self {
        Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    pub fn with_qualifier(mut self, qualifier: impl Into<String>) -> Self {
        self.qualifier = Some(qualifier.into());
        self
    }

    /// Fully qualified display name (`alias.column` or `column`).
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether this column matches a reference `[qualifier.]name`.
    /// An unqualified reference matches any qualifier; both name parts are
    /// compared case-insensitively, following SQL identifier rules.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .map(|own| own.eq_ignore_ascii_case(q))
                .unwrap_or(false),
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.display_name(), self.data_type)
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Resolve a column reference to its index.
    ///
    /// Errors on no match and on ambiguous unqualified references, matching
    /// standard SQL binding rules.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut hits = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.matches(qualifier, name));
        let first = hits.next();
        let second = hits.next();
        match (first, second) {
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => Err(Error::plan(format!(
                "ambiguous column reference `{}`",
                match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.to_string(),
                }
            ))),
            (None, _) => Err(Error::plan(format!(
                "unknown column `{}`",
                match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.to_string(),
                }
            ))),
        }
    }

    /// Find the index of a column by output name (used by ORDER BY aliases
    /// and the SESQL enrichment layer, which addresses result columns).
    pub fn index_of_output(&self, name: &str) -> Option<usize> {
        // Prefer exact unqualified-name match, then fall back to a match on
        // the qualified display form.
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .or_else(|| {
                self.columns
                    .iter()
                    .position(|c| c.display_name().eq_ignore_ascii_case(name))
            })
    }

    /// Re-qualify every column (applied when a table gets an alias).
    pub fn with_qualifier(mut self, qualifier: &str) -> Self {
        for c in &mut self.columns {
            c.qualifier = Some(qualifier.to_string());
        }
        self
    }

    /// Concatenate two schemas (used by joins / cross products).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self.columns.iter().map(|c| c.to_string()).collect();
        write!(f, "({})", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::qualified("landfill", "name", DataType::Text),
            Column::qualified("landfill", "city", DataType::Text),
            Column::qualified("element", "name", DataType::Text),
        ])
    }

    #[test]
    fn resolve_qualified() {
        let s = sample();
        assert_eq!(s.resolve(Some("landfill"), "city").unwrap(), 1);
        assert_eq!(s.resolve(Some("element"), "name").unwrap(), 2);
    }

    #[test]
    fn resolve_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.resolve(Some("LANDFILL"), "CITY").unwrap(), 1);
    }

    #[test]
    fn unqualified_ambiguity_is_error() {
        let s = sample();
        let err = s.resolve(None, "name").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn unknown_column_is_error() {
        let s = sample();
        assert!(s.resolve(None, "nope").is_err());
        assert!(s.resolve(Some("landfill"), "elem").is_err());
    }

    #[test]
    fn requalify_changes_all() {
        let s = sample().with_qualifier("l");
        assert!(s.columns.iter().all(|c| c.qualifier.as_deref() == Some("l")));
        assert_eq!(s.resolve(Some("l"), "city").unwrap(), 1);
    }

    #[test]
    fn join_concatenates() {
        let s = sample();
        let j = s.join(&sample().with_qualifier("x"));
        assert_eq!(j.len(), 6);
        assert_eq!(j.resolve(Some("x"), "city").unwrap(), 4);
    }

    #[test]
    fn output_name_lookup() {
        let s = sample();
        // unqualified name match wins even when ambiguous (first position)
        assert_eq!(s.index_of_output("city"), Some(1));
        assert_eq!(s.index_of_output("landfill.name"), Some(0));
        assert_eq!(s.index_of_output("zzz"), None);
    }
}
