//! Runtime values and data types.
//!
//! The engine uses a small dynamic value model close to what SESQL needs:
//! NULL, booleans, 64-bit integers, 64-bit floats and UTF-8 strings.
//! Comparison follows SQL three-valued logic at the expression layer; at the
//! [`Value`] layer, comparisons against NULL return `None`.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Text,
}

impl DataType {
    /// Parse a type name as written in `CREATE TABLE` (case-insensitive).
    ///
    /// Common SQL aliases map onto the four storage types so that schemas
    /// written for PostgreSQL (the paper's main platform) load unchanged.
    pub fn parse(name: &str) -> Result<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "SERIAL" => Ok(DataType::Int),
            "FLOAT" | "REAL" | "DOUBLE" | "NUMERIC" | "DECIMAL" => Ok(DataType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Ok(DataType::Text),
            other => Err(Error::parse(format!("unknown data type `{other}`"), 0)),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
        };
        f.write_str(s)
    }
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    /// The value's data type, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Text),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Coerce into `target` if losslessly possible (Int→Float, anything→Text
    /// is *not* implicit; only numeric widening is).
    pub fn coerce(self, target: DataType) -> Result<Value> {
        match (self, target) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(i as f64)),
            (v, t) if v.data_type() == Some(t) => Ok(v),
            (v, t) => Err(Error::constraint(format!(
                "cannot store {} value `{v}` into {t} column",
                v.data_type().map(|d| d.to_string()).unwrap_or_else(|| "NULL".into())
            ))),
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL (UNKNOWN),
    /// or when the values are of incomparable types.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used for ORDER BY and index structures: NULLs sort
    /// first, then booleans, numbers, strings. Unlike [`Value::sql_cmp`]
    /// this never fails, so sorting mixed columns is deterministic.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => unreachable!("rank() guarantees same class"),
        }
    }

    /// SQL equality (NULL-propagating): `None` if either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Equality for grouping / DISTINCT / hash joins: NULL equals NULL.
    pub fn group_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// A hashable key for grouping (uses the bit pattern for floats).
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            // Integers and integral floats hash identically so that
            // `1 = 1.0` groups together, matching sql_cmp semantics.
            Value::Int(i) => GroupKey::Num((*i as f64).to_bits()),
            Value::Float(f) => GroupKey::Num(f.to_bits()),
            Value::Str(s) => GroupKey::Str(s.clone()),
        }
    }

    /// Render as a bare string (no quotes) — used for SESQL↔RDF bridging,
    /// where relational values are compared with RDF term lexical forms.
    pub fn lexical_form(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    f.to_string()
                }
            }
            Value::Str(s) => s.clone(),
        }
    }
}

/// Hashable grouping key derived from a [`Value`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.group_eq(other)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// A tuple of values; the engine's unit of data flow.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_aliases_parse() {
        assert_eq!(DataType::parse("varchar").unwrap(), DataType::Text);
        assert_eq!(DataType::parse("BIGINT").unwrap(), DataType::Int);
        assert_eq!(DataType::parse("double").unwrap(), DataType::Float);
        assert_eq!(DataType::parse("boolean").unwrap(), DataType::Bool);
        assert!(DataType::parse("blob").is_err());
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Float(1.5).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn incomparable_types_are_unknown() {
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_ranks_classes() {
        let mut vs = [Value::Str("a".into()),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5)];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert!(vs[0].is_null());
        assert!(matches!(vs[1], Value::Bool(true)));
        assert!(matches!(vs[2], Value::Float(_)));
        assert!(matches!(vs[3], Value::Int(3)));
        assert!(matches!(vs[4], Value::Str(_)));
    }

    #[test]
    fn group_key_unifies_int_and_float() {
        assert_eq!(Value::Int(1).group_key(), Value::Float(1.0).group_key());
        assert_ne!(Value::Int(1).group_key(), Value::Float(1.25).group_key());
    }

    #[test]
    fn coercion_widens_int_to_float() {
        assert!(matches!(
            Value::Int(3).coerce(DataType::Float).unwrap(),
            Value::Float(f) if f == 3.0
        ));
        assert!(Value::Str("x".into()).coerce(DataType::Int).is_err());
        assert!(Value::Null.coerce(DataType::Int).unwrap().is_null());
    }

    #[test]
    fn lexical_form_round_trips_strings() {
        assert_eq!(Value::Str("Mercury".into()).lexical_form(), "Mercury");
        assert_eq!(Value::Int(42).lexical_form(), "42");
        assert_eq!(Value::Float(2.0).lexical_form(), "2.0");
        assert_eq!(Value::Bool(true).lexical_form(), "true");
    }
}
