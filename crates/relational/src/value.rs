//! Runtime values and data types.
//!
//! The engine uses a small dynamic value model close to what SESQL needs:
//! NULL, booleans, 64-bit integers, 64-bit floats and UTF-8 strings.
//! Comparison follows SQL three-valued logic at the expression layer; at the
//! [`Value`] layer, comparisons against NULL return `None`.
//!
//! Strings are **interned**: [`Str`] wraps an `Arc<str>`, so cloning a text
//! value is a reference-count bump instead of a heap allocation, and
//! equality between two clones of the same allocation is a pointer
//! comparison. A per-[`crate::Database`] [`Interner`] deduplicates repeated
//! lexical forms (CSV loads, dictionary decodes, enrichment joins) so the
//! pointer fast path fires across independently produced values too.
//!
//! [`Value`] implements `Eq`/`Ord`/`Hash` directly with *grouping*
//! semantics — the total order of [`Value::total_cmp`] and a hash in which
//! `1` and `1.0` coincide — so executor hash tables (GROUP BY, DISTINCT,
//! UNION, hash joins) and ordered indexes key rows without materialising a
//! separate key representation per row.

use std::borrow::{Borrow, Cow};
use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Error, Result};

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Text,
}

impl DataType {
    /// Parse a type name as written in `CREATE TABLE` (case-insensitive).
    ///
    /// Common SQL aliases map onto the four storage types so that schemas
    /// written for PostgreSQL (the paper's main platform) load unchanged.
    pub fn parse(name: &str) -> Result<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "SERIAL" => Ok(DataType::Int),
            "FLOAT" | "REAL" | "DOUBLE" | "NUMERIC" | "DECIMAL" => Ok(DataType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Ok(DataType::Text),
            other => Err(Error::parse(format!("unknown data type `{other}`"), 0)),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
        };
        f.write_str(s)
    }
}

/// A cheaply-clonable, shareable string: `Arc<str>` with a pointer fast
/// path on equality and ordering. All text [`Value`]s hold one of these.
#[derive(Clone)]
pub struct Str(Arc<str>);

impl Str {
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Two `Str`s sharing one allocation (e.g. both produced by the same
    /// [`Interner`], or clones of each other).
    pub fn ptr_eq(a: &Str, b: &Str) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Deref for Str {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Str {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Str {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Str {
    fn from(s: &str) -> Str {
        Str(Arc::from(s))
    }
}

impl From<String> for Str {
    fn from(s: String) -> Str {
        Str(Arc::from(s))
    }
}

impl From<Arc<str>> for Str {
    fn from(s: Arc<str>) -> Str {
        Str(s)
    }
}

impl PartialEq for Str {
    fn eq(&self, other: &Str) -> bool {
        Str::ptr_eq(self, other) || self.0 == other.0
    }
}

impl Eq for Str {}

impl PartialEq<str> for Str {
    fn eq(&self, other: &str) -> bool {
        *self.0 == *other
    }
}

impl PartialEq<&str> for Str {
    fn eq(&self, other: &&str) -> bool {
        *self.0 == **other
    }
}

impl PartialEq<String> for Str {
    fn eq(&self, other: &String) -> bool {
        *self.0 == **other
    }
}

impl PartialOrd for Str {
    fn partial_cmp(&self, other: &Str) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Str {
    fn cmp(&self, other: &Str) -> Ordering {
        if Str::ptr_eq(self, other) {
            return Ordering::Equal;
        }
        self.0.cmp(&other.0)
    }
}

impl Hash for Str {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Content hash, matching `Borrow<str>` (interner lookups by &str).
        self.0.hash(state)
    }
}

impl fmt::Debug for Str {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl fmt::Display for Str {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Default bound on distinct strings an [`Interner`] will hold. Beyond
/// it, `intern` degrades to a plain allocation — correctness unchanged,
/// only the sharing is lost — so a long-lived engine fed unbounded
/// high-cardinality text (unique IDs, measurements) cannot pin memory
/// for its whole lifetime.
pub const DEFAULT_INTERNER_CAPACITY: usize = 1 << 18;

/// A string interner: repeated lexical forms share one allocation, so
/// equality between interned values is a pointer comparison and N
/// occurrences of a term cost one allocation total. One lives on each
/// `Database`; hot conversion paths (CSV import, RDF term decoding in the
/// enrichment JoinManager) intern through it. Bounded (see
/// [`DEFAULT_INTERNER_CAPACITY`]): at capacity, lookups still hit but new
/// strings are returned un-shared instead of being remembered.
#[derive(Debug)]
pub struct Interner {
    strings: Mutex<HashSet<Str>>,
    capacity: usize,
}

impl Default for Interner {
    fn default() -> Self {
        Interner {
            strings: Mutex::new_labeled("interner.strings", HashSet::new()),
            capacity: DEFAULT_INTERNER_CAPACITY,
        }
    }
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// An interner bounded to `capacity` distinct strings (0 disables
    /// sharing entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        Interner { strings: Mutex::new_labeled("interner.strings", HashSet::new()), capacity }
    }

    /// The shared [`Str`] for `s` (allocating only on first sight; not
    /// remembered once the capacity bound is reached).
    pub fn intern(&self, s: &str) -> Str {
        let mut strings = self.strings.lock();
        if let Some(hit) = strings.get(s) {
            return hit.clone();
        }
        let fresh = Str::from(s);
        if strings.len() < self.capacity {
            strings.insert(fresh.clone());
        }
        fresh
    }

    /// Intern an owned string (reuses the allocation on first sight).
    pub fn intern_owned(&self, s: String) -> Str {
        let mut strings = self.strings.lock();
        if let Some(hit) = strings.get(s.as_str()) {
            return hit.clone();
        }
        let fresh = Str::from(s);
        if strings.len() < self.capacity {
            strings.insert(fresh.clone());
        }
        fresh
    }

    /// Interned text [`Value`] for `s`.
    pub fn value(&self, s: &str) -> Value {
        Value::Str(self.intern(s))
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop the table (existing `Str`s stay valid; future interns realloc).
    pub fn clear(&self) {
        self.strings.lock().clear();
    }
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Str),
}

impl Value {
    /// The value's data type, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Text),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow the text content of a `Str` value (`None` for other kinds).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Coerce into `target` if losslessly possible (Int→Float, anything→Text
    /// is *not* implicit; only numeric widening is).
    pub fn coerce(self, target: DataType) -> Result<Value> {
        match (self, target) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(i as f64)),
            (v, t) if v.data_type() == Some(t) => Ok(v),
            (v, t) => Err(Error::constraint(format!(
                "cannot store {} value `{v}` into {t} column",
                v.data_type().map(|d| d.to_string()).unwrap_or_else(|| "NULL".into())
            ))),
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL (UNKNOWN),
    /// or when the values are of incomparable types.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used for ORDER BY and index structures: NULLs sort
    /// first, then booleans, numbers, strings. Unlike [`Value::sql_cmp`]
    /// this never fails, so sorting mixed columns is deterministic.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        let (ra, rb) = (self.rank(), other.rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => unreachable!("rank() guarantees same class"),
        }
    }

    /// Type-class rank backing the total order (and the `Hash` impl, which
    /// must collapse Int/Float into one class the way `total_cmp` does).
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// SQL equality (NULL-propagating): `None` if either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Equality for grouping / DISTINCT / hash joins: NULL equals NULL,
    /// and *all* numbers compare through their `f64` value (bit pattern),
    /// so `1 = 1.0` groups together and NaN keys are stable. This is what
    /// `==` (and the `Eq`/`Hash` impls) mean for `Value`.
    ///
    /// Numbers must go through `f64` on *both* sides — an exact Int/Int
    /// comparison would make equality non-transitive around 2^53 (two
    /// adjacent huge ints both equal to the same float but not to each
    /// other), which corrupts hash containers keyed by `Value`.
    pub fn group_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (a, b) => match (a.as_f64_bits(), b.as_f64_bits()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }

    /// The `f64` bit pattern of a numeric value (`None` otherwise) — the
    /// shared key through which Int and Float unify in `Eq`/`Hash`.
    fn as_f64_bits(&self) -> Option<u64> {
        match self {
            Value::Int(i) => Some((*i as f64).to_bits()),
            Value::Float(f) => Some(f.to_bits()),
            _ => None,
        }
    }

    /// Render as a bare string (no quotes), allocating only for non-text
    /// values — used for SESQL↔RDF bridging, where relational values are
    /// compared with RDF term lexical forms.
    pub fn lexical(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::Bool(b) => Cow::Owned(b.to_string()),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    Cow::Owned(format!("{f:.1}"))
                } else {
                    Cow::Owned(f.to_string())
                }
            }
            Value::Str(s) => Cow::Borrowed(s),
        }
    }

    /// Owned form of [`Value::lexical`].
    pub fn lexical_form(&self) -> String {
        self.lexical().into_owned()
    }
}

/// Grouping equality (see [`Value::group_eq`]): `NULL == NULL`,
/// `1 == 1.0` (numbers unify through `f64`), NaNs compare by bit pattern.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.group_eq(other)
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The total order of [`Value::total_cmp`] — NOT SQL comparison semantics
/// (no NULL propagation). Lets `Value` key ordered containers directly.
///
/// Note: `Ord` distinguishes integers exactly while `Eq` unifies numbers
/// through `f64` — for integers beyond 2^53 two values can be `Equal`-
/// adjacent in the order yet `==` each other. Ordered containers (ORDER
/// BY, BTreeMap indexes) only rely on `Ord`; hash containers only on
/// `Eq`/`Hash`, which are mutually consistent.
impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        self.total_cmp(other)
    }
}

/// Hash consistent with the grouping `Eq`: integers and integral floats
/// hash identically (both through the `f64` bit pattern) so that `1` and
/// `1.0` land in the same hash bucket, matching `group_eq`.
impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.rank());
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Str::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Str::from(v))
    }
}
impl From<Str> for Value {
    fn from(v: Str) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// A tuple of values; the engine's unit of data flow.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_aliases_parse() {
        assert_eq!(DataType::parse("varchar").unwrap(), DataType::Text);
        assert_eq!(DataType::parse("BIGINT").unwrap(), DataType::Int);
        assert_eq!(DataType::parse("double").unwrap(), DataType::Float);
        assert_eq!(DataType::parse("boolean").unwrap(), DataType::Bool);
        assert!(DataType::parse("blob").is_err());
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Float(1.5).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn incomparable_types_are_unknown() {
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_ranks_classes() {
        let mut vs = [Value::Str("a".into()),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5)];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert!(vs[0].is_null());
        assert!(matches!(vs[1], Value::Bool(true)));
        assert!(matches!(vs[2], Value::Float(_)));
        assert!(matches!(vs[3], Value::Int(3)));
        assert!(matches!(vs[4], Value::Str(_)));
    }

    fn hash_of(v: &Value) -> u64 {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn hash_unifies_int_and_float() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_eq!(hash_of(&Value::Int(1)), hash_of(&Value::Float(1.0)));
        assert_ne!(Value::Int(1), Value::Float(1.25));
    }

    #[test]
    fn hash_matches_group_equality_for_strings() {
        let a = Value::from("Torino");
        let b = Value::from("Torino".to_string());
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn grouping_eq_is_transitive_beyond_2_53() {
        // 2^53 and 2^53+1 round to the same f64. Grouping equality must
        // unify them (as the float they both equal does), or Eq would be
        // non-transitive and corrupt hash containers keyed by Value.
        let a = Value::Int(9007199254740992);
        let b = Value::Int(9007199254740993);
        let f = Value::Float(9007199254740992.0);
        assert_eq!(a, f);
        assert_eq!(b, f);
        assert_eq!(a, b, "Eq must be transitive through the float");
        assert_eq!(hash_of(&a), hash_of(&b));
        // The total order still distinguishes them exactly (ORDER BY and
        // BTreeMap indexes rely on Ord alone).
        assert_eq!(a.total_cmp(&b), Ordering::Less);
    }

    #[test]
    fn nan_and_null_group_keys_are_stable() {
        // NaN == NaN and NULL == NULL under grouping semantics, with
        // matching hashes — a GROUP BY over them forms one group each.
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, Value::Float(f64::NAN));
        assert_eq!(hash_of(&nan), hash_of(&Value::Float(f64::NAN)));
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, nan);
    }

    #[test]
    fn coercion_widens_int_to_float() {
        assert!(matches!(
            Value::Int(3).coerce(DataType::Float).unwrap(),
            Value::Float(f) if f == 3.0
        ));
        assert!(Value::Str("x".into()).coerce(DataType::Int).is_err());
        assert!(Value::Null.coerce(DataType::Int).unwrap().is_null());
    }

    #[test]
    fn lexical_form_round_trips_strings() {
        assert_eq!(Value::Str("Mercury".into()).lexical_form(), "Mercury");
        assert_eq!(Value::Int(42).lexical_form(), "42");
        assert_eq!(Value::Float(2.0).lexical_form(), "2.0");
        assert_eq!(Value::Bool(true).lexical_form(), "true");
    }

    #[test]
    fn lexical_borrows_text_values() {
        let v = Value::from("Hg");
        assert!(matches!(v.lexical(), Cow::Borrowed("Hg")));
        assert!(matches!(Value::Int(1).lexical(), Cow::Owned(_)));
    }

    // ---- interning ---------------------------------------------------------

    #[test]
    fn interner_shares_allocations() {
        let interner = Interner::new();
        let a = interner.intern("Torino");
        let b = interner.intern("Torino");
        assert!(Str::ptr_eq(&a, &b));
        assert_eq!(interner.len(), 1);
        let c = interner.intern("Milano");
        assert!(!Str::ptr_eq(&a, &c));
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn interned_values_equal_fresh_values() {
        let interner = Interner::new();
        assert_eq!(interner.value("Hg"), Value::from("Hg"));
        assert_eq!(interner.intern_owned("Pb".to_string()), Str::from("Pb"));
    }

    #[test]
    fn str_comparisons_against_plain_strings() {
        let s = Str::from("ciao");
        assert_eq!(s, *"ciao");
        assert_eq!(s, "ciao");
        assert_eq!(s, "ciao".to_string());
        assert_eq!(s.as_str(), "ciao");
        let (a, b) = (Str::from("a"), Str::from("b"));
        assert!(a < b);
    }

    #[test]
    fn unicode_round_trips_through_interning() {
        let interner = Interner::new();
        for s in ["héllo wörld", "試験データ", "emoji 🜍 alchemy", "ASCII"] {
            let interned = interner.value(s);
            assert_eq!(interned.lexical_form(), s);
            assert_eq!(interned, Value::from(s));
            assert_eq!(hash_of(&interned), hash_of(&Value::from(s)));
        }
    }

    #[test]
    fn clear_keeps_existing_strs_valid() {
        let interner = Interner::new();
        let a = interner.intern("x");
        interner.clear();
        assert!(interner.is_empty());
        assert_eq!(a, "x");
        let b = interner.intern("x");
        assert_eq!(a, b, "equal content, distinct allocation after clear");
        assert!(!Str::ptr_eq(&a, &b));
    }
}
