//! Wiring between the relational store and the `crosse-wal` log: the
//! concrete [`RedoSink`] that appends to a [`WalStore`], and the
//! [`DurabilityHandle`] a [`crate::Database`] opened from a data directory
//! carries for checkpointing and stats.

use std::sync::Arc;

use parking_lot::RwLock;

use crosse_wal::{WalStore, CHAN_REL};
pub use crosse_wal::{Recovered, SyncPolicy, WalOptions, WalStats};

use crate::error::{Error, Result};

use super::snapshot::{encode_catalog, pin_catalog};
use super::wal::RedoSink;
use super::Catalog;

/// What an engine needs from the durability layer once it is running:
/// trigger checkpoints, surface background checkpoint errors, report
/// stats. Implemented here for a standalone relational database and in
/// `crosse-core` for the combined relational+RDF engine.
pub trait DurabilityHandle: Send + Sync + std::fmt::Debug {
    /// Take a checkpoint; returns the pinned LSN. Blocks only for the
    /// pin phase — snapshot encoding and writing happen on a background
    /// thread (join with [`DurabilityHandle::checkpoint_join`]).
    fn checkpoint(&self) -> Result<u64>;

    /// Wait for any in-flight checkpoint and surface its error, if any.
    fn checkpoint_join(&self) -> Result<()>;

    fn wal_stats(&self) -> WalStats;

    /// Non-fatal recovery notes from open (e.g. a torn final record that
    /// was truncated).
    fn recovery_warnings(&self) -> Vec<String>;

    /// Force an fsync of the log regardless of the sync policy.
    fn sync(&self) -> Result<()>;
}

/// [`RedoSink`] over a shared [`WalStore`], tagging every record with one
/// channel (the relational store and the RDF store share a single log).
pub struct WalRedoSink {
    wal: Arc<WalStore>,
    chan: u8,
}

impl WalRedoSink {
    pub fn new(wal: Arc<WalStore>, chan: u8) -> Self {
        WalRedoSink { wal, chan }
    }
}

impl std::fmt::Debug for WalRedoSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalRedoSink")
            .field("chan", &self.chan)
            .field("dir", &self.wal.dir())
            .finish()
    }
}

impl RedoSink for WalRedoSink {
    fn barrier(&self) -> &RwLock<()> {
        self.wal.barrier()
    }

    fn log(&self, payload: &[u8]) -> Result<()> {
        self.wal.append_nosync(self.chan, payload).map(drop).map_err(Error::from)
    }

    fn flush(&self) -> Result<()> {
        self.wal.sync_policy().map_err(Error::from)
    }
}

/// Durability handle for a standalone relational [`crate::Database`]:
/// checkpoints pin the catalog and write it as one `CHAN_REL` snapshot
/// section.
pub struct RelDurability {
    wal: Arc<WalStore>,
    catalog: Catalog,
    warnings: Vec<String>,
}

impl RelDurability {
    pub fn new(wal: Arc<WalStore>, catalog: Catalog, warnings: Vec<String>) -> Self {
        RelDurability { wal, catalog, warnings }
    }
}

impl std::fmt::Debug for RelDurability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelDurability").field("dir", &self.wal.dir()).finish()
    }
}

impl DurabilityHandle for RelDurability {
    fn checkpoint(&self) -> Result<u64> {
        let catalog = self.catalog.clone();
        self.wal
            .checkpoint(
                move || pin_catalog(&catalog),
                |pin| vec![(CHAN_REL, encode_catalog(&pin))],
            )
            .map_err(Error::from)
    }

    fn checkpoint_join(&self) -> Result<()> {
        self.wal.checkpoint_join().map_err(Error::from)
    }

    fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    fn recovery_warnings(&self) -> Vec<String> {
        self.warnings.clone()
    }

    fn sync(&self) -> Result<()> {
        self.wal.sync().map_err(Error::from)
    }
}

#[cfg(test)]
mod tests {
    use crate::db::Database;
    use crate::value::Value;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("crosse-rel-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn count(db: &Database, table: &str) -> i64 {
        let rs = db.query(&format!("SELECT COUNT(*) AS n FROM {table}")).unwrap();
        match rs.rows[0][0] {
            Value::Int(n) => n,
            ref other => panic!("expected int, got {other:?}"),
        }
    }

    #[test]
    fn open_log_reopen_roundtrip() {
        let dir = tmp_dir("roundtrip");
        {
            let db = Database::open(&dir).unwrap();
            assert!(db.is_durable());
            db.execute_script(
                "CREATE TABLE t (name TEXT, tons FLOAT);
                 INSERT INTO t VALUES ('a', 1.0), ('b', 2.0);
                 CREATE INDEX idx_t ON t (name);
                 UPDATE t SET tons = 20.0 WHERE name = 'b';
                 DELETE FROM t WHERE name = 'a';",
            )
            .unwrap();
        }
        let db = Database::open(&dir).unwrap();
        assert!(db.recovery_warnings().is_empty());
        let rs = db.query("SELECT name, tons FROM t").unwrap();
        assert_eq!(rs.rows, vec![crate::row!["b", 20.0]]);
        assert!(db.catalog().has_index("idx_t"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_then_tail_replay() {
        let dir = tmp_dir("ckpt");
        {
            let db = Database::open(&dir).unwrap();
            db.execute("CREATE TABLE t (x INT)").unwrap();
            db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
            let lsn = db.checkpoint().unwrap();
            assert!(lsn > 0);
            db.checkpoint_join().unwrap();
            // Post-checkpoint traffic lands in the fresh log tail.
            db.execute("INSERT INTO t VALUES (3)").unwrap();
            let stats = db.wal_stats().unwrap();
            assert_eq!(stats.snapshot_lsn, lsn);
            assert!(stats.last_lsn > lsn);
        }
        let db = Database::open(&dir).unwrap();
        assert_eq!(count(&db, "t"), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_database_rejects_checkpoint_with_typed_error() {
        let db = Database::new();
        assert!(!db.is_durable());
        assert!(db.wal_stats().is_none());
        let err = db.checkpoint().unwrap_err();
        assert!(matches!(err, crate::error::Error::Storage(_)), "{err}");
    }

    #[test]
    fn delete_all_and_ddl_survive_reopen() {
        let dir = tmp_dir("ddl");
        {
            let db = Database::open(&dir).unwrap();
            db.execute_script(
                "CREATE TABLE a (x INT);
                 CREATE TABLE b (y TEXT);
                 INSERT INTO a VALUES (1), (2), (3);
                 DELETE FROM a;
                 DROP TABLE b;",
            )
            .unwrap();
        }
        let db = Database::open(&dir).unwrap();
        assert_eq!(count(&db, "a"), 0);
        assert!(!db.catalog().has_table("b"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
