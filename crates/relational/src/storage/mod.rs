//! Row storage: tables and the catalog.
//!
//! Storage is an in-memory heap of rows per table held as a **generational
//! copy-on-write snapshot**: the heap is an `Arc<Vec<Row>>` behind a
//! `parking_lot::RwLock`. Readers pin the current `Arc` once (a
//! [`TableSnapshot`]) and then stream from it without ever re-taking the
//! lock — a cursor sees exactly the rows that existed when it opened, no
//! matter what concurrent `INSERT`/`DELETE`/`TRUNCATE` traffic does in the
//! meantime. Writers mutate through [`Arc::make_mut`]: while no snapshot
//! is pinned that is an in-place update (the common case), and while one
//! is pinned the writer clones the heap and readers keep their frozen
//! version. This is what makes lock-free morsel-parallel scans safe: a
//! worker pool can partition a pinned snapshot freely because nothing can
//! mutate it.
//!
//! ## Durability hooks
//!
//! A catalog may carry a [`wal::RedoSink`]: when one is attached (the
//! database was opened from a data directory), every mutation logs a redo
//! record *before* applying — under the sink's barrier lock, so checkpoint
//! pinning can exclude in-flight mutations — and a failed log append fails
//! the statement without touching the heap. Tables registered through
//! [`Catalog::register`] are **ephemeral** (foreign/federation tables):
//! they are excluded from both logging and snapshots. Without a sink
//! everything behaves exactly as before: a purely in-memory engine.

pub mod durable;
pub mod snapshot;
pub mod wal;

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{Error, Result};
use crate::schema::{Column, Schema};
use crate::value::{Row, Value};

use wal::{encode_rel_op, RedoSink, RelOp};

/// Take the sink's barrier in read mode for one log-then-apply critical
/// section (no-op when no sink is attached). Must be acquired **before**
/// any storage lock — the checkpointer takes the write side and then reads
/// the stores, so acquiring in the other order deadlocks.
fn sink_guard(
    sink: &Option<Arc<dyn RedoSink>>,
) -> Option<parking_lot::RwLockReadGuard<'_, ()>> {
    sink.as_ref().map(|s| s.barrier().read())
}

/// Run the sink's deferred fsync. Mutators call this **after** their
/// log-then-apply critical section releases its heap locks — holding
/// `table.rows` (or the barrier) across an fsync stalls every reader
/// behind the disk, and the lock-order tracker flags exactly that.
fn flush_sink(sink: &Option<Arc<dyn RedoSink>>) -> Result<()> {
    match sink {
        Some(s) => s.flush(),
        None => Ok(()),
    }
}

/// A secondary index over one column of a [`Table`].
///
/// The index maps column values to row positions in the heap. It is
/// maintained incrementally on `INSERT` (appends never move rows) and marked
/// *dirty* by `DELETE`/`UPDATE`/`TRUNCATE` (which may move or change rows);
/// a dirty index is rebuilt lazily on the next lookup. This matches the
/// engine's role as an analytical databank stand-in: bulk loads and reads
/// dominate, in-place churn is rare.
#[derive(Debug)]
pub struct Index {
    pub name: String,
    /// Column position in the owning table's schema.
    pub column: usize,
    /// Keyed directly by `Value` — its `Ord` is the total order — so
    /// probes borrow the caller's key instead of cloning it. NULLs never
    /// reach the index (skipped at build/insert time), so NULL's position
    /// in the total order is moot.
    entries: RwLock<BTreeMap<Value, Vec<usize>>>,
    dirty: AtomicBool,
}

impl Index {
    fn build(name: String, column: usize, rows: &[Row]) -> Self {
        let idx = Index {
            name,
            column,
            entries: RwLock::new_labeled("table.index.entries", BTreeMap::new()),
            dirty: AtomicBool::new(false),
        };
        idx.rebuild(rows);
        idx
    }

    fn rebuild(&self, rows: &[Row]) {
        let mut entries = self.entries.write();
        Self::rebuild_into(&mut entries, self.column, rows);
    }

    fn rebuild_into(
        entries: &mut BTreeMap<Value, Vec<usize>>,
        column: usize,
        rows: &[Row],
    ) {
        entries.clear();
        for (i, row) in rows.iter().enumerate() {
            let v = &row[column];
            if !v.is_null() {
                entries.entry(v.clone()).or_default().push(i);
            }
        }
    }

    /// Record one appended row (position `pos`) if the index is clean.
    fn note_append(&self, pos: usize, row: &Row) {
        if self.dirty.load(AtomicOrdering::Acquire) {
            return;
        }
        let v = &row[self.column];
        if !v.is_null() {
            self.entries.write().entry(v.clone()).or_default().push(pos);
        }
    }

    fn mark_dirty(&self) {
        self.dirty.store(true, AtomicOrdering::Release);
    }
}

/// A pinned, immutable view of a table's heap at one point in time.
///
/// Cheap to clone (it is an `Arc` plus a generation counter). Writers
/// never mutate the pinned vector — they copy-on-write — so holding a
/// snapshot across arbitrary concurrent DML is safe and lock-free, and a
/// worker pool may partition `rows()` across threads freely.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    rows: Arc<Vec<Row>>,
    generation: u64,
}

impl TableSnapshot {
    /// All rows frozen in this snapshot.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table's write generation when this snapshot was pinned; two
    /// snapshots with equal generations hold identical rows.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// A heap-organised table.
#[derive(Debug)]
pub struct Table {
    pub name: String,
    pub schema: Schema,
    rows: RwLock<Arc<Vec<Row>>>,
    /// Bumped on every heap mutation (insert/delete/update/truncate),
    /// under the rows write lock.
    generation: AtomicU64,
    indexes: RwLock<Vec<Arc<Index>>>,
    /// Redo sink for durability; `None` on purely in-memory tables.
    sink: RwLock<Option<Arc<dyn RedoSink>>>,
    /// Ephemeral tables (foreign/federation registrations) are excluded
    /// from logging and snapshots.
    ephemeral: AtomicBool,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: RwLock::new_labeled("table.rows", Arc::new(Vec::new())),
            generation: AtomicU64::new(0),
            indexes: RwLock::new_labeled("table.indexes", Vec::new()),
            sink: RwLock::new_labeled("table.sink", None),
            ephemeral: AtomicBool::new(false),
        }
    }

    /// The redo sink, if this table participates in durability.
    fn sink(&self) -> Option<Arc<dyn RedoSink>> {
        if self.ephemeral.load(AtomicOrdering::Acquire) {
            return None;
        }
        self.sink.read().clone()
    }

    pub(crate) fn set_sink(&self, sink: Option<Arc<dyn RedoSink>>) {
        *self.sink.write() = sink;
    }

    /// Mark this table as excluded from durability (see [`Catalog::register`]).
    pub fn set_ephemeral(&self, ephemeral: bool) {
        self.ephemeral.store(ephemeral, AtomicOrdering::Release);
    }

    pub fn is_ephemeral(&self) -> bool {
        self.ephemeral.load(AtomicOrdering::Acquire)
    }

    /// Number of stored rows.
    pub fn row_count(&self) -> usize {
        self.rows.read().len()
    }

    /// Pin the current heap as an immutable [`TableSnapshot`]. The caller
    /// holds no lock afterwards; concurrent writers copy-on-write around
    /// the pinned rows.
    pub fn snapshot(&self) -> TableSnapshot {
        let rows = self.rows.read();
        TableSnapshot {
            rows: Arc::clone(&*rows),
            generation: self.generation.load(AtomicOrdering::Acquire),
        }
    }

    /// Validate a row against the schema (arity + per-column coercion) and
    /// append it.
    pub fn insert(&self, row: Row) -> Result<()> {
        let coerced = self.check_row(row)?;
        let sink = self.sink();
        {
            let _barrier = sink_guard(&sink);
            let mut rows = self.rows.write();
            if let Some(s) = &sink {
                s.log(&encode_rel_op(&RelOp::Insert {
                    table: &self.name,
                    rows: std::slice::from_ref(&coerced),
                }))?;
            }
            let rows = Arc::make_mut(&mut *rows);
            let pos = rows.len();
            for idx in self.indexes.read().iter() {
                idx.note_append(pos, &coerced);
            }
            rows.push(coerced);
            self.generation.fetch_add(1, AtomicOrdering::AcqRel);
        }
        flush_sink(&sink)
    }

    /// Insert many rows; fails atomically (no partial insert) on the first
    /// invalid row. One redo record covers the whole batch, so recovery
    /// replays it all-or-nothing too.
    pub fn insert_many(&self, rows: Vec<Row>) -> Result<usize> {
        let mut checked = Vec::with_capacity(rows.len());
        for row in rows {
            checked.push(self.check_row(row)?);
        }
        let n = checked.len();
        let sink = self.sink();
        {
            let _barrier = sink_guard(&sink);
            let mut stored = self.rows.write();
            if let Some(s) = &sink {
                if !checked.is_empty() {
                    s.log(&encode_rel_op(&RelOp::Insert {
                        table: &self.name,
                        rows: &checked,
                    }))?;
                }
            }
            let stored = Arc::make_mut(&mut *stored);
            let indexes = self.indexes.read();
            for (offset, row) in checked.iter().enumerate() {
                for idx in indexes.iter() {
                    idx.note_append(stored.len() + offset, row);
                }
            }
            stored.extend(checked);
            self.generation.fetch_add(1, AtomicOrdering::AcqRel);
        }
        flush_sink(&sink)?;
        Ok(n)
    }

    /// Append already-validated rows without logging — the redo-replay
    /// path (the rows come *from* the log or a snapshot).
    pub(crate) fn apply_insert(&self, new_rows: Vec<Row>) {
        let mut stored = self.rows.write();
        let stored = Arc::make_mut(&mut *stored);
        let indexes = self.indexes.read();
        for (offset, row) in new_rows.iter().enumerate() {
            for idx in indexes.iter() {
                idx.note_append(stored.len() + offset, row);
            }
        }
        stored.extend(new_rows);
        self.generation.fetch_add(1, AtomicOrdering::AcqRel);
    }

    /// Remove rows by ascending heap position without logging (replay path).
    pub(crate) fn apply_delete(&self, positions: &[usize]) {
        if positions.is_empty() {
            return;
        }
        let mut rows = self.rows.write();
        let rows = Arc::make_mut(&mut *rows);
        let mut next = positions.iter().peekable();
        let mut i = 0usize;
        rows.retain(|_| {
            let drop_it = next.peek().is_some_and(|&&p| p == i);
            if drop_it {
                next.next();
            }
            i += 1;
            !drop_it
        });
        self.generation.fetch_add(1, AtomicOrdering::AcqRel);
        self.mark_indexes_dirty();
    }

    /// Overwrite rows at given heap positions without logging (replay path).
    pub(crate) fn apply_update(&self, changes: Vec<(usize, Row)>) {
        if changes.is_empty() {
            return;
        }
        let mut rows = self.rows.write();
        let rows = Arc::make_mut(&mut *rows);
        for (pos, row) in changes {
            if pos < rows.len() {
                rows[pos] = row;
            }
        }
        self.generation.fetch_add(1, AtomicOrdering::AcqRel);
        self.mark_indexes_dirty();
    }

    fn check_row(&self, row: Row) -> Result<Row> {
        if row.len() != self.schema.len() {
            return Err(Error::constraint(format!(
                "table `{}` expects {} values, got {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        row.into_iter()
            .zip(&self.schema.columns)
            .map(|(v, c)| v.coerce(c.data_type))
            .collect()
    }

    /// Copy of all rows (materialised scan). Streaming readers should pin
    /// [`Table::snapshot`] instead and borrow from it.
    pub fn scan(&self) -> Vec<Row> {
        self.rows.read().as_ref().clone()
    }

    /// Visit rows without copying the whole table. Holds the read lock for
    /// the duration; use [`Table::snapshot`] for long walks.
    pub fn for_each(&self, mut f: impl FnMut(&Row)) {
        for row in self.rows.read().iter() {
            f(row);
        }
    }

    /// Delete rows matching `pred`; returns the number removed. The redo
    /// record carries the matched heap positions, so replay removes
    /// exactly the same rows without re-evaluating the predicate.
    pub fn delete_where(&self, mut pred: impl FnMut(&Row) -> bool) -> Result<usize> {
        let sink = self.sink();
        let removed = {
            let _barrier = sink_guard(&sink);
            let mut rows = self.rows.write();
            let positions: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter_map(|(i, r)| pred(r).then_some(i))
                .collect();
            if positions.is_empty() {
                return Ok(0);
            }
            if let Some(s) = &sink {
                s.log(&encode_rel_op(&RelOp::Delete {
                    table: &self.name,
                    positions: &positions,
                }))?;
            }
            let rows = Arc::make_mut(&mut *rows);
            let mut next = positions.iter().peekable();
            let mut i = 0usize;
            rows.retain(|_| {
                let drop_it = next.peek().is_some_and(|&&p| p == i);
                if drop_it {
                    next.next();
                }
                i += 1;
                !drop_it
            });
            self.generation.fetch_add(1, AtomicOrdering::AcqRel);
            self.mark_indexes_dirty();
            positions.len()
        };
        flush_sink(&sink)?;
        Ok(removed)
    }

    /// Update rows: `f` receives a copy of each row mutably and returns
    /// true if it modified the row; modified copies replace their heap
    /// rows. If `f` errors mid-iteration, rows it already rewrote stay
    /// rewritten (per-statement atomicity is the executor's job) — the
    /// generation bump and the index-dirty mark still happen, so no index
    /// serves the stale keys. The redo record carries the materialised
    /// `(position, new row)` pairs, so replay is deterministic.
    pub fn update_where(
        &self,
        mut f: impl FnMut(&mut Row) -> Result<bool>,
    ) -> Result<usize> {
        let sink = self.sink();
        let (updated, failed) = {
            let _barrier = sink_guard(&sink);
            let mut rows = self.rows.write();
            let mut changes: Vec<(usize, Row)> = Vec::new();
            let mut failed: Option<Error> = None;
            for (pos, row) in rows.iter().enumerate() {
                let mut candidate = row.clone();
                match f(&mut candidate) {
                    Ok(true) => changes.push((pos, candidate)),
                    Ok(false) => {}
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            let updated = changes.len();
            if !changes.is_empty() {
                if let Some(s) = &sink {
                    s.log(&encode_rel_op(&RelOp::Update {
                        table: &self.name,
                        changes: &changes,
                    }))?;
                }
            }
            if !changes.is_empty() || failed.is_some() {
                let rows = Arc::make_mut(&mut *rows);
                for (pos, row) in changes {
                    rows[pos] = row;
                }
                self.generation.fetch_add(1, AtomicOrdering::AcqRel);
                self.mark_indexes_dirty();
            }
            (updated, failed)
        };
        flush_sink(&sink)?;
        match failed {
            Some(e) => Err(e),
            None => Ok(updated),
        }
    }

    /// Remove all rows, keeping the schema. Pinned snapshots keep the old
    /// rows; the table publishes a fresh empty heap.
    pub fn truncate(&self) -> Result<()> {
        let sink = self.sink();
        {
            let _barrier = sink_guard(&sink);
            let mut rows = self.rows.write();
            if let Some(s) = &sink {
                s.log(&encode_rel_op(&RelOp::Truncate { table: &self.name }))?;
            }
            // Don't clear through make_mut: dropping the reference entirely
            // is cheaper when a reader has the old heap pinned.
            *rows = Arc::new(Vec::new());
            self.generation.fetch_add(1, AtomicOrdering::AcqRel);
            self.mark_indexes_dirty();
        }
        flush_sink(&sink)
    }

    fn mark_indexes_dirty(&self) {
        for idx in self.indexes.read().iter() {
            idx.mark_dirty();
        }
    }

    // ---- secondary indexes ------------------------------------------------

    /// Create a named index over `column_name`. Errors if the column is
    /// unknown or an index of that name already exists on this table.
    pub fn create_index(&self, index_name: &str, column_name: &str) -> Result<()> {
        let column = self.schema.resolve(None, column_name)?;
        let sink = self.sink();
        {
            let _barrier = sink_guard(&sink);
            let rows = self.rows.read();
            let mut indexes = self.indexes.write();
            if indexes.iter().any(|i| i.name.eq_ignore_ascii_case(index_name)) {
                return Err(Error::catalog(format!(
                    "index `{index_name}` already exists on table `{}`",
                    self.name
                )));
            }
            if let Some(s) = &sink {
                s.log(&encode_rel_op(&RelOp::CreateIndex {
                    table: &self.name,
                    index: index_name,
                    column: column_name,
                }))?;
            }
            indexes.push(Arc::new(Index::build(index_name.to_string(), column, &rows)));
        }
        flush_sink(&sink)
    }

    /// Drop an index by name; returns whether one was removed.
    pub fn drop_index(&self, index_name: &str) -> Result<bool> {
        let sink = self.sink();
        {
            let _barrier = sink_guard(&sink);
            let mut indexes = self.indexes.write();
            let Some(pos) =
                indexes.iter().position(|i| i.name.eq_ignore_ascii_case(index_name))
            else {
                return Ok(false);
            };
            if let Some(s) = &sink {
                s.log(&encode_rel_op(&RelOp::DropIndex { index: index_name }))?;
            }
            indexes.remove(pos);
        }
        flush_sink(&sink)?;
        Ok(true)
    }

    /// `(index name, indexed column name)` pairs, in creation order.
    pub fn index_names(&self) -> Vec<(String, String)> {
        self.indexes
            .read()
            .iter()
            .map(|i| (i.name.clone(), self.schema.columns[i.column].name.clone()))
            .collect()
    }

    /// Whether some index covers the given column position.
    pub fn has_index_on(&self, column: usize) -> bool {
        self.indexes.read().iter().any(|i| i.column == column)
    }

    fn index_for(&self, column: usize) -> Option<Arc<Index>> {
        self.indexes.read().iter().find(|i| i.column == column).cloned()
    }

    /// Point lookup through an index on `column`: rows whose column value
    /// equals any of `keys` (NULL keys never match). Returns `None` if no
    /// index covers the column — callers fall back to a scan.
    ///
    /// The lookup pins the live heap as a snapshot while resolving entry
    /// positions under the read lock, then materialises matching rows from
    /// the pinned snapshot off-lock — the same pin-once discipline as the
    /// scan path, so index results are point-in-time consistent.
    pub fn index_lookup_eq(&self, column: usize, keys: &[Value]) -> Option<Vec<Row>> {
        let idx = self.index_for(column)?;
        let rows = self.rows.read();
        self.ensure_clean(&idx, &rows);
        // Entry positions are resolved while the rows read lock is held, so
        // they are guaranteed consistent with the heap we pin; row
        // materialisation then happens off-lock from the snapshot. Probes
        // borrow the caller's keys — no per-lookup clone.
        let entries = idx.entries.read();
        let mut positions: Vec<usize> = Vec::new();
        for key in keys {
            if key.is_null() {
                continue;
            }
            if let Some(ps) = entries.get(key) {
                positions.extend_from_slice(ps);
            }
        }
        drop(entries);
        let snap = Arc::clone(&*rows);
        drop(rows);
        // Dedupe positions in case the key list itself contains duplicates,
        // and restore heap order for deterministic output.
        positions.sort_unstable();
        positions.dedup();
        Some(positions.into_iter().filter_map(|p| snap.get(p).cloned()).collect())
    }

    /// Range lookup through an index on `column` (NULL values are never in
    /// the index, so they never match a range — SQL comparison semantics).
    /// Returns `None` if no index covers the column.
    pub fn index_lookup_range(
        &self,
        column: usize,
        low: Bound<&Value>,
        high: Bound<&Value>,
    ) -> Option<Vec<Row>> {
        let idx = self.index_for(column)?;
        let rows = self.rows.read();
        self.ensure_clean(&idx, &rows);
        let entries = idx.entries.read();
        // The bounds are borrowed as-is: `BTreeMap::range` accepts
        // `Bound<&Value>` directly, so range probes allocate nothing.
        let mut positions: Vec<usize> = Vec::new();
        for (_, ps) in entries.range::<Value, _>((low, high)) {
            positions.extend_from_slice(ps);
        }
        drop(entries);
        let snap = Arc::clone(&*rows);
        drop(rows);
        positions.sort_unstable();
        Some(positions.into_iter().filter_map(|p| snap.get(p).cloned()).collect())
    }

    /// Rebuild a dirty index. Safe against concurrent mutation because the
    /// caller holds the rows read lock (mutators hold the rows write lock
    /// while setting the dirty flag). The flag is cleared only while holding
    /// the entries write lock, so a second concurrent reader either blocks
    /// on that lock or observes a clean flag *after* the rebuilt entries are
    /// published.
    fn ensure_clean(&self, idx: &Index, rows: &[Row]) {
        if idx.dirty.load(AtomicOrdering::Acquire) {
            let mut entries = idx.entries.write();
            if idx.dirty.load(AtomicOrdering::Acquire) {
                Index::rebuild_into(&mut entries, idx.column, rows);
                idx.dirty.store(false, AtomicOrdering::Release);
            }
        }
    }
}

/// The table catalog. Cheap to clone (shared interior).
///
/// Table names are case-insensitive, as in the SQL layer.
#[derive(Debug, Clone)]
pub struct Catalog {
    tables: Arc<RwLock<BTreeMap<String, Arc<Table>>>>,
    /// Bumped on every DDL change (table or index create/drop/replace).
    /// Cached query plans are valid only for the version they were
    /// planned against.
    version: Arc<std::sync::atomic::AtomicU64>,
    /// Redo sink propagated to every (non-ephemeral) table; shared across
    /// catalog clones.
    sink: Arc<RwLock<Option<Arc<dyn RedoSink>>>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog {
            tables: Arc::new(RwLock::new_labeled("catalog.tables", BTreeMap::new())),
            version: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            sink: Arc::new(RwLock::new_labeled("catalog.sink", None)),
        }
    }
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Current DDL version (monotone; see field docs).
    pub fn version(&self) -> u64 {
        self.version.load(AtomicOrdering::Acquire)
    }

    fn bump_version(&self) {
        self.version.fetch_add(1, AtomicOrdering::AcqRel);
    }

    fn sink(&self) -> Option<Arc<dyn RedoSink>> {
        self.sink.read().clone()
    }

    /// Attach a redo sink: all future mutations (and mutations of existing
    /// non-ephemeral tables) log through it. Called once, right after
    /// recovery has replayed the log into this catalog.
    pub fn attach_sink(&self, sink: Arc<dyn RedoSink>) {
        *self.sink.write() = Some(Arc::clone(&sink));
        for table in self.tables.read().values() {
            if !table.is_ephemeral() {
                table.set_sink(Some(Arc::clone(&sink)));
            }
        }
    }

    /// Create a table; errors if the name is taken.
    pub fn create_table(&self, name: &str, columns: Vec<Column>) -> Result<Arc<Table>> {
        self.create_table_impl(name, columns, false, false)
    }

    /// Create, replacing any existing table of the same name.
    pub fn create_or_replace_table(
        &self,
        name: &str,
        columns: Vec<Column>,
    ) -> Result<Arc<Table>> {
        self.create_table_impl(name, columns, true, false)
    }

    /// Create (replacing) an **ephemeral** table: a materialised
    /// intermediate that is excluded from the write-ahead log and from
    /// checkpoint snapshots, like [`Catalog::register`]ed foreign tables.
    /// Query-cache spools (REPLACEVARIABLE pairs tables, tempdb
    /// materialisations) are derived state — rebuildable from the durable
    /// stores — so persisting them would only bloat the log.
    pub fn create_ephemeral_table(
        &self,
        name: &str,
        columns: Vec<Column>,
    ) -> Result<Arc<Table>> {
        self.create_table_impl(name, columns, true, true)
    }

    fn create_table_impl(
        &self,
        name: &str,
        columns: Vec<Column>,
        replace: bool,
        ephemeral: bool,
    ) -> Result<Arc<Table>> {
        let mut seen: Vec<&str> = Vec::new();
        for c in &columns {
            if seen.iter().any(|s| s.eq_ignore_ascii_case(&c.name)) {
                return Err(Error::catalog(format!(
                    "duplicate column `{}` in table `{name}`",
                    c.name
                )));
            }
            seen.push(&c.name);
        }
        let sink = self.sink();
        let table = {
            let _barrier = sink_guard(&sink);
            let mut tables = self.tables.write();
            let key = Self::key(name);
            if !replace && tables.contains_key(&key) {
                return Err(Error::catalog(format!("table `{name}` already exists")));
            }
            if let Some(s) = &sink {
                if !ephemeral {
                    s.log(&encode_rel_op(&RelOp::CreateTable {
                        name,
                        columns: &columns,
                        replace,
                    }))?;
                } else if let Some(prev) = tables.get(&key) {
                    // An ephemeral table may replace a durable one (explicit
                    // DDL reused the name); the displacement itself must be
                    // durable even though the new table is not.
                    if !prev.is_ephemeral() {
                        s.log(&encode_rel_op(&RelOp::DropTable { name }))?;
                    }
                }
            }
            if replace {
                tables.remove(&key);
            }
            let table = Arc::new(Table::new(name, Schema::new(columns)));
            if ephemeral {
                table.set_ephemeral(true);
            } else {
                table.set_sink(sink.clone());
            }
            tables.insert(key, Arc::clone(&table));
            drop(tables);
            self.bump_version();
            table
        };
        flush_sink(&sink)?;
        Ok(table)
    }

    pub fn drop_table(&self, name: &str) -> Result<()> {
        let sink = self.sink();
        {
            let _barrier = sink_guard(&sink);
            let mut tables = self.tables.write();
            let key = Self::key(name);
            let Some(table) = tables.get(&key) else {
                return Err(Error::catalog(format!("table `{name}` does not exist")));
            };
            if let Some(s) = &sink {
                if !table.is_ephemeral() {
                    s.log(&encode_rel_op(&RelOp::DropTable { name }))?;
                }
            }
            tables.remove(&key);
            drop(tables);
            self.bump_version();
        }
        flush_sink(&sink)
    }

    pub fn get_table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&Self::key(name))
            .cloned()
            .ok_or_else(|| Error::catalog(format!("table `{name}` does not exist")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&Self::key(name))
    }

    /// Sorted list of table names (lower-cased keys).
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// All live tables (used by checkpoint pinning).
    pub(crate) fn tables(&self) -> Vec<Arc<Table>> {
        self.tables.read().values().cloned().collect()
    }

    /// Create a named index on `table_name(column_name)`. Index names are
    /// unique across the whole catalog so `DROP INDEX name` is unambiguous.
    pub fn create_index(
        &self,
        index_name: &str,
        table_name: &str,
        column_name: &str,
    ) -> Result<()> {
        if self.has_index(index_name) {
            return Err(Error::catalog(format!(
                "index `{index_name}` already exists"
            )));
        }
        self.get_table(table_name)?.create_index(index_name, column_name)?;
        self.bump_version();
        Ok(())
    }

    /// Drop an index by name, wherever it lives.
    ///
    /// The owning table is resolved *before* the drop so the barrier lock
    /// (taken inside [`Table::drop_index`]) is never requested while the
    /// catalog map is locked — that order would deadlock against a
    /// checkpoint pinning the catalog.
    pub fn drop_index(&self, index_name: &str) -> Result<()> {
        let owner = self
            .tables
            .read()
            .values()
            .find(|t| {
                t.index_names().iter().any(|(n, _)| n.eq_ignore_ascii_case(index_name))
            })
            .cloned();
        if let Some(table) = owner {
            if table.drop_index(index_name)? {
                self.bump_version();
                return Ok(());
            }
        }
        Err(Error::catalog(format!("index `{index_name}` does not exist")))
    }

    /// Whether any table carries an index with this name.
    pub fn has_index(&self, index_name: &str) -> bool {
        self.tables
            .read()
            .values()
            .any(|t| t.index_names().iter().any(|(n, _)| n.eq_ignore_ascii_case(index_name)))
    }

    /// Register an externally constructed table (used by the federation
    /// layer to expose foreign tables). Registered tables are marked
    /// **ephemeral**: their contents mirror an external source, so they are
    /// excluded from the write-ahead log and from snapshots — recovery
    /// re-registers them from the source instead.
    pub fn register(&self, table: Arc<Table>) -> Result<()> {
        table.set_ephemeral(true);
        let mut tables = self.tables.write();
        let key = Self::key(&table.name);
        if tables.contains_key(&key) {
            return Err(Error::catalog(format!(
                "table `{}` already exists",
                table.name
            )));
        }
        tables.insert(key, table);
        drop(tables);
        self.bump_version();
        Ok(())
    }
}

/// Convenience to build a [`Row`] from anything convertible to [`Value`].
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::value::Value::from($v)),*]
    };
}

/// A NULL literal usable inside [`row!`].
pub const NULL: Value = Value::Null;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn landfill_cols() -> Vec<Column> {
        vec![
            Column::new("name", DataType::Text),
            Column::new("city", DataType::Text),
            Column::new("tons", DataType::Float),
        ]
    }

    #[test]
    fn create_insert_scan() {
        let cat = Catalog::new();
        let t = cat.create_table("landfill", landfill_cols()).unwrap();
        t.insert(row!["Basse di Stura", "Torino", 1200.5]).unwrap();
        t.insert(vec![Value::from("Barricalla"), Value::from("Collegno"), Value::Null])
            .unwrap();
        assert_eq!(t.row_count(), 2);
        let rows = t.scan();
        assert_eq!(rows[0][1], Value::from("Torino"));
        assert!(rows[1][2].is_null());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let cat = Catalog::new();
        let t = cat.create_table("landfill", landfill_cols()).unwrap();
        assert!(t.insert(row!["only-one"]).is_err());
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn type_mismatch_rejected_and_int_widens() {
        let cat = Catalog::new();
        let t = cat.create_table("landfill", landfill_cols()).unwrap();
        assert!(t.insert(row![1, "Torino", 1.0]).is_err());
        // Int into Float column widens.
        t.insert(row!["a", "b", 7]).unwrap();
        assert!(matches!(t.scan()[0][2], Value::Float(f) if f == 7.0));
    }

    #[test]
    fn insert_many_is_atomic() {
        let cat = Catalog::new();
        let t = cat.create_table("landfill", landfill_cols()).unwrap();
        let res = t.insert_many(vec![row!["a", "b", 1.0], row!["bad"]]);
        assert!(res.is_err());
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn duplicate_table_rejected_case_insensitively() {
        let cat = Catalog::new();
        cat.create_table("Landfill", landfill_cols()).unwrap();
        assert!(cat.create_table("LANDFILL", landfill_cols()).is_err());
        assert!(cat.has_table("landfill"));
    }

    #[test]
    fn duplicate_column_rejected() {
        let cat = Catalog::new();
        let cols = vec![
            Column::new("x", DataType::Int),
            Column::new("X", DataType::Text),
        ];
        assert!(cat.create_table("t", cols).is_err());
    }

    #[test]
    fn drop_and_missing() {
        let cat = Catalog::new();
        cat.create_table("t", landfill_cols()).unwrap();
        cat.drop_table("T").unwrap();
        assert!(cat.get_table("t").is_err());
        assert!(cat.drop_table("t").is_err());
    }

    #[test]
    fn delete_where_counts() {
        let cat = Catalog::new();
        let t = cat.create_table("t", landfill_cols()).unwrap();
        t.insert_many(vec![row!["a", "x", 1.0], row!["b", "x", 2.0], row!["c", "y", 3.0]])
            .unwrap();
        let n = t.delete_where(|r| r[1] == Value::from("x")).unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn create_or_replace_truncates() {
        let cat = Catalog::new();
        let t = cat.create_table("t", landfill_cols()).unwrap();
        t.insert(row!["a", "b", 1.0]).unwrap();
        let t2 = cat.create_or_replace_table("t", landfill_cols()).unwrap();
        assert_eq!(t2.row_count(), 0);
    }

    #[test]
    fn shared_catalog_clone_sees_updates() {
        let cat = Catalog::new();
        let cat2 = cat.clone();
        cat.create_table("t", landfill_cols()).unwrap();
        assert!(cat2.has_table("t"));
    }

    #[test]
    fn registered_table_is_ephemeral() {
        let cat = Catalog::new();
        let t = Arc::new(Table::new("foreign", Schema::new(landfill_cols())));
        cat.register(Arc::clone(&t)).unwrap();
        assert!(t.is_ephemeral());
        assert!(cat.get_table("foreign").unwrap().is_ephemeral());
    }

    // ---- snapshots ---------------------------------------------------------

    #[test]
    fn snapshot_pins_rows_across_every_mutation_kind() {
        let cat = Catalog::new();
        let t = cat.create_table("t", landfill_cols()).unwrap();
        t.insert_many(vec![row!["a", "x", 1.0], row!["b", "y", 2.0]]).unwrap();
        let s1 = t.snapshot();
        assert_eq!(s1.len(), 2);

        t.insert(row!["c", "z", 3.0]).unwrap();
        let s2 = t.snapshot();
        assert!(s2.generation() > s1.generation(), "writes bump the generation");
        assert_eq!(s1.len(), 2, "pinned snapshot frozen across INSERT");
        assert_eq!(s2.len(), 3);

        t.update_where(|r| {
            r[2] = Value::from(9.0);
            Ok(true)
        })
        .unwrap();
        assert_eq!(s2.rows()[0][2], Value::Float(1.0), "frozen across UPDATE");

        t.delete_where(|r| r[0] == Value::from("a")).unwrap();
        t.truncate().unwrap();
        assert_eq!(t.row_count(), 0);
        assert_eq!(s1.len(), 2, "frozen across DELETE + TRUNCATE");
        assert_eq!(s2.len(), 3);

        // Equal generations ⇒ identical rows (no write in between).
        let s3 = t.snapshot();
        let s4 = t.snapshot();
        assert_eq!(s3.generation(), s4.generation());
        assert_eq!(s3.rows(), s4.rows());
        assert!(s3.is_empty());
    }

    #[test]
    fn update_error_midway_still_dirties_indexes() {
        // An UPDATE whose closure errors after mutating earlier rows must
        // leave the index marked dirty, so no lookup serves stale keys.
        let (_cat, t) = indexed_table();
        let col = t.schema.resolve(None, "city").unwrap();
        let err = t.update_where(|r| {
            if r[0] == Value::from("a") {
                r[1] = Value::from("Moved");
                Ok(true)
            } else if r[0] == Value::from("b") {
                Err(Error::eval("boom"))
            } else {
                Ok(false)
            }
        });
        assert!(err.is_err());
        // Row "a" moved out of Torino; the index must reflect that.
        let rows = t.index_lookup_eq(col, &[Value::from("Torino")]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::from("c"));
        let rows = t.index_lookup_eq(col, &[Value::from("Moved")]).unwrap();
        assert_eq!(rows.len(), 1);
    }

    // ---- secondary indexes ------------------------------------------------

    fn indexed_table() -> (Catalog, Arc<Table>) {
        let cat = Catalog::new();
        let t = cat.create_table("landfill", landfill_cols()).unwrap();
        t.insert_many(vec![
            row!["a", "Torino", 10.0],
            row!["b", "Milano", 20.0],
            row!["c", "Torino", 30.0],
            vec![Value::from("d"), Value::Null, Value::from(40.0)],
        ])
        .unwrap();
        cat.create_index("idx_city", "landfill", "city").unwrap();
        (cat, t)
    }

    #[test]
    fn index_eq_lookup_finds_matches_in_heap_order() {
        let (_cat, t) = indexed_table();
        let col = t.schema.resolve(None, "city").unwrap();
        let rows = t.index_lookup_eq(col, &[Value::from("Torino")]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::from("a"));
        assert_eq!(rows[1][0], Value::from("c"));
    }

    #[test]
    fn index_eq_null_key_matches_nothing() {
        let (_cat, t) = indexed_table();
        let col = t.schema.resolve(None, "city").unwrap();
        let rows = t.index_lookup_eq(col, &[Value::Null]).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn index_eq_duplicate_keys_do_not_duplicate_rows() {
        let (_cat, t) = indexed_table();
        let col = t.schema.resolve(None, "city").unwrap();
        let key = Value::from("Torino");
        let rows = t.index_lookup_eq(col, &[key.clone(), key]).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn index_range_lookup() {
        let (cat, t) = indexed_table();
        cat.create_index("idx_tons", "landfill", "tons").unwrap();
        let col = t.schema.resolve(None, "tons").unwrap();
        let lo = Value::from(15.0);
        let hi = Value::from(35.0);
        let rows = t
            .index_lookup_range(col, Bound::Included(&lo), Bound::Excluded(&hi))
            .unwrap();
        assert_eq!(rows.len(), 2); // 20.0 and 30.0
    }

    #[test]
    fn unindexed_column_returns_none() {
        let (_cat, t) = indexed_table();
        let col = t.schema.resolve(None, "name").unwrap();
        assert!(t.index_lookup_eq(col, &[Value::from("a")]).is_none());
    }

    #[test]
    fn index_sees_appends_incrementally() {
        let (_cat, t) = indexed_table();
        t.insert(row!["e", "Torino", 50.0]).unwrap();
        let col = t.schema.resolve(None, "city").unwrap();
        let rows = t.index_lookup_eq(col, &[Value::from("Torino")]).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn index_rebuilds_after_delete_and_update() {
        let (_cat, t) = indexed_table();
        let col = t.schema.resolve(None, "city").unwrap();
        t.delete_where(|r| r[0] == Value::from("a")).unwrap();
        let rows = t.index_lookup_eq(col, &[Value::from("Torino")]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::from("c"));

        t.update_where(|r| {
            if r[0] == Value::from("b") {
                r[1] = Value::from("Torino");
                Ok(true)
            } else {
                Ok(false)
            }
        })
        .unwrap();
        let rows = t.index_lookup_eq(col, &[Value::from("Torino")]).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn truncate_dirties_index() {
        let (_cat, t) = indexed_table();
        let col = t.schema.resolve(None, "city").unwrap();
        t.truncate().unwrap();
        let rows = t.index_lookup_eq(col, &[Value::from("Torino")]).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn nulls_never_enter_index() {
        let (_cat, t) = indexed_table();
        let col = t.schema.resolve(None, "city").unwrap();
        let rows = t
            .index_lookup_range(col, Bound::Unbounded, Bound::Unbounded)
            .unwrap();
        // Row "d" has a NULL city and must not appear in a full range scan.
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn duplicate_index_name_rejected_catalog_wide() {
        let (cat, _t) = indexed_table();
        cat.create_table("other", landfill_cols()).unwrap();
        let err = cat.create_index("IDX_CITY", "other", "city").unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
    }

    #[test]
    fn drop_index_by_name() {
        let (cat, t) = indexed_table();
        cat.drop_index("idx_city").unwrap();
        assert!(!cat.has_index("idx_city"));
        let col = t.schema.resolve(None, "city").unwrap();
        assert!(t.index_lookup_eq(col, &[Value::from("Torino")]).is_none());
        assert!(cat.drop_index("idx_city").is_err());
    }

    #[test]
    fn index_on_unknown_column_errors() {
        let cat = Catalog::new();
        cat.create_table("t", landfill_cols()).unwrap();
        assert!(cat.create_index("i", "t", "nope").is_err());
        assert!(cat.create_index("i", "missing", "city").is_err());
    }
}
