//! Redo-record schema for the relational store.
//!
//! Every catalog/heap mutation is described by one [`RelOp`] encoded into
//! an opaque byte payload for `crosse-wal` (channel [`crosse_wal::CHAN_REL`]).
//! Records are *physical-ish* redo: DML carries materialised rows and heap
//! positions (never predicates or expressions), so replay is deterministic
//! regardless of planner or evaluation changes.

use parking_lot::RwLock;

use crosse_wal::{Decoder, Encoder};

use crate::error::{Error, Result};
use crate::schema::Column;
use crate::value::{DataType, Interner, Row, Value};

use super::Catalog;

/// Where redo records go. Implemented over a `crosse_wal::WalStore` by
/// [`super::durable::WalRedoSink`]; the indirection keeps the storage layer
/// testable without touching a filesystem.
pub trait RedoSink: Send + Sync + std::fmt::Debug {
    /// The append/checkpoint barrier. Mutators hold the read side across
    /// their whole log-then-apply critical section (see
    /// [`super::sink_guard`]).
    fn barrier(&self) -> &RwLock<()>;

    /// Append one encoded [`RelOp`] to the log *without* forcing it to
    /// disk. An error here fails the statement *before* it touches the
    /// heap.
    fn log(&self, payload: &[u8]) -> Result<()>;

    /// Make previously logged records durable per the sink's sync policy.
    /// Mutators call this *after* releasing their heap locks, so no
    /// engine lock is ever held across an fsync (the lock-order tracker
    /// flags exactly that). An error means the mutation is applied in
    /// memory but its durability is not yet guaranteed — callers surface
    /// it like any other statement failure.
    fn flush(&self) -> Result<()> {
        Ok(())
    }
}

const OP_CREATE_TABLE: u8 = 1;
const OP_DROP_TABLE: u8 = 2;
const OP_CREATE_INDEX: u8 = 3;
const OP_DROP_INDEX: u8 = 4;
const OP_INSERT: u8 = 5;
const OP_DELETE: u8 = 6;
const OP_UPDATE: u8 = 7;
const OP_TRUNCATE: u8 = 8;

/// One loggable mutation, borrowing the caller's data (encoding never
/// clones rows).
#[derive(Debug)]
pub enum RelOp<'a> {
    CreateTable { name: &'a str, columns: &'a [Column], replace: bool },
    DropTable { name: &'a str },
    CreateIndex { table: &'a str, index: &'a str, column: &'a str },
    DropIndex { index: &'a str },
    /// One batch of validated rows appended to `table`. A multi-row
    /// statement is ONE record: recovery replays it all-or-nothing, so a
    /// torn tail can never expose a partial batch.
    Insert { table: &'a str, rows: &'a [Row] },
    /// Rows removed by ascending heap position.
    Delete { table: &'a str, positions: &'a [usize] },
    /// Materialised `(position, new row)` overwrites.
    Update { table: &'a str, changes: &'a [(usize, Row)] },
    Truncate { table: &'a str },
}

/// Serialise an op to its log payload.
pub fn encode_rel_op(op: &RelOp<'_>) -> Vec<u8> {
    let mut e = Encoder::new();
    match op {
        RelOp::CreateTable { name, columns, replace } => {
            e.u8(OP_CREATE_TABLE);
            e.str(name);
            e.u8(u8::from(*replace));
            e.u32(columns.len() as u32);
            for c in *columns {
                encode_column(&mut e, c);
            }
        }
        RelOp::DropTable { name } => {
            e.u8(OP_DROP_TABLE);
            e.str(name);
        }
        RelOp::CreateIndex { table, index, column } => {
            e.u8(OP_CREATE_INDEX);
            e.str(table);
            e.str(index);
            e.str(column);
        }
        RelOp::DropIndex { index } => {
            e.u8(OP_DROP_INDEX);
            e.str(index);
        }
        RelOp::Insert { table, rows } => {
            e.u8(OP_INSERT);
            e.str(table);
            e.u32(rows.len() as u32);
            for row in *rows {
                encode_row(&mut e, row);
            }
        }
        RelOp::Delete { table, positions } => {
            e.u8(OP_DELETE);
            e.str(table);
            e.u32(positions.len() as u32);
            for p in *positions {
                e.u64(*p as u64);
            }
        }
        RelOp::Update { table, changes } => {
            e.u8(OP_UPDATE);
            e.str(table);
            e.u32(changes.len() as u32);
            for (pos, row) in *changes {
                e.u64(*pos as u64);
                encode_row(&mut e, row);
            }
        }
        RelOp::Truncate { table } => {
            e.u8(OP_TRUNCATE);
            e.str(table);
        }
    }
    e.into_vec()
}

/// Decode one payload and apply it to `catalog` **without re-logging** —
/// this is the replay path; no sink is attached to a recovering catalog.
/// Text values are interned through `interner` when given, so recovered
/// rows share allocations exactly like freshly loaded ones.
pub fn apply_rel_op(
    catalog: &Catalog,
    payload: &[u8],
    interner: Option<&Interner>,
) -> Result<()> {
    let mut d = Decoder::new(payload);
    let tag = d.u8().map_err(Error::from)?;
    match tag {
        OP_CREATE_TABLE => {
            let name = d.str().map_err(Error::from)?;
            let replace = d.u8().map_err(Error::from)? != 0;
            let n = d.u32().map_err(Error::from)?;
            let mut columns = Vec::with_capacity(n as usize);
            for _ in 0..n {
                columns.push(decode_column(&mut d)?);
            }
            d.finish().map_err(Error::from)?;
            if replace {
                catalog.create_or_replace_table(&name, columns)?;
            } else {
                catalog.create_table(&name, columns)?;
            }
        }
        OP_DROP_TABLE => {
            let name = d.str().map_err(Error::from)?;
            d.finish().map_err(Error::from)?;
            catalog.drop_table(&name)?;
        }
        OP_CREATE_INDEX => {
            let table = d.str().map_err(Error::from)?;
            let index = d.str().map_err(Error::from)?;
            let column = d.str().map_err(Error::from)?;
            d.finish().map_err(Error::from)?;
            catalog.create_index(&index, &table, &column)?;
        }
        OP_DROP_INDEX => {
            let index = d.str().map_err(Error::from)?;
            d.finish().map_err(Error::from)?;
            catalog.drop_index(&index)?;
        }
        OP_INSERT => {
            let table = d.str().map_err(Error::from)?;
            let n = d.u32().map_err(Error::from)?;
            let mut rows = Vec::with_capacity(n as usize);
            for _ in 0..n {
                rows.push(decode_row(&mut d, interner)?);
            }
            d.finish().map_err(Error::from)?;
            catalog.get_table(&table)?.apply_insert(rows);
        }
        OP_DELETE => {
            let table = d.str().map_err(Error::from)?;
            let n = d.u32().map_err(Error::from)?;
            let mut positions = Vec::with_capacity(n as usize);
            for _ in 0..n {
                positions.push(d.u64().map_err(Error::from)? as usize);
            }
            d.finish().map_err(Error::from)?;
            catalog.get_table(&table)?.apply_delete(&positions);
        }
        OP_UPDATE => {
            let table = d.str().map_err(Error::from)?;
            let n = d.u32().map_err(Error::from)?;
            let mut changes = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let pos = d.u64().map_err(Error::from)? as usize;
                changes.push((pos, decode_row(&mut d, interner)?));
            }
            d.finish().map_err(Error::from)?;
            catalog.get_table(&table)?.apply_update(changes);
        }
        OP_TRUNCATE => {
            let table = d.str().map_err(Error::from)?;
            d.finish().map_err(Error::from)?;
            catalog.get_table(&table)?.truncate()?;
        }
        other => {
            return Err(Error::storage(format!(
                "unknown relational redo op tag {other}"
            )))
        }
    }
    Ok(())
}

// ---- field codecs ---------------------------------------------------------

fn data_type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
    }
}

fn data_type_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        other => return Err(Error::storage(format!("unknown data type tag {other}"))),
    })
}

pub(crate) fn encode_column(e: &mut Encoder, c: &Column) {
    match &c.qualifier {
        Some(q) => {
            e.u8(1);
            e.str(q);
        }
        None => e.u8(0),
    }
    e.str(&c.name);
    e.u8(data_type_tag(c.data_type));
    e.u8(u8::from(c.nullable));
}

pub(crate) fn decode_column(d: &mut Decoder<'_>) -> Result<Column> {
    let qualifier = match d.u8().map_err(Error::from)? {
        0 => None,
        _ => Some(d.str().map_err(Error::from)?),
    };
    let name = d.str().map_err(Error::from)?;
    let data_type = data_type_from_tag(d.u8().map_err(Error::from)?)?;
    let nullable = d.u8().map_err(Error::from)? != 0;
    Ok(Column { qualifier, name, data_type, nullable })
}

const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_FLOAT: u8 = 3;
const VAL_STR: u8 = 4;

pub(crate) fn encode_value(e: &mut Encoder, v: &Value) {
    match v {
        Value::Null => e.u8(VAL_NULL),
        Value::Bool(b) => {
            e.u8(VAL_BOOL);
            e.u8(u8::from(*b));
        }
        Value::Int(i) => {
            e.u8(VAL_INT);
            e.i64(*i);
        }
        Value::Float(f) => {
            e.u8(VAL_FLOAT);
            e.f64(*f);
        }
        Value::Str(s) => {
            e.u8(VAL_STR);
            e.str(s.as_str());
        }
    }
}

pub(crate) fn decode_value(
    d: &mut Decoder<'_>,
    interner: Option<&Interner>,
) -> Result<Value> {
    Ok(match d.u8().map_err(Error::from)? {
        VAL_NULL => Value::Null,
        VAL_BOOL => Value::Bool(d.u8().map_err(Error::from)? != 0),
        VAL_INT => Value::Int(d.i64().map_err(Error::from)?),
        VAL_FLOAT => Value::Float(d.f64().map_err(Error::from)?),
        VAL_STR => {
            let s = d.str().map_err(Error::from)?;
            match interner {
                Some(i) => Value::Str(i.intern_owned(s)),
                None => Value::from(s),
            }
        }
        other => return Err(Error::storage(format!("unknown value tag {other}"))),
    })
}

pub(crate) fn encode_row(e: &mut Encoder, row: &Row) {
    e.u32(row.len() as u32);
    for v in row {
        encode_value(e, v);
    }
}

pub(crate) fn decode_row(d: &mut Decoder<'_>, interner: Option<&Interner>) -> Result<Row> {
    let n = d.u32().map_err(Error::from)?;
    let mut row = Vec::with_capacity(n as usize);
    for _ in 0..n {
        row.push(decode_value(d, interner)?);
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::DataType;

    fn cols() -> Vec<Column> {
        vec![
            Column::new("name", DataType::Text),
            Column::new("tons", DataType::Float),
        ]
    }

    #[test]
    fn ddl_roundtrip_through_apply() {
        let src = Catalog::new();
        let dst = Catalog::new();
        let ops = [
            encode_rel_op(&RelOp::CreateTable { name: "landfill", columns: &cols(), replace: false }),
            encode_rel_op(&RelOp::CreateIndex { table: "landfill", index: "idx_n", column: "name" }),
        ];
        drop(src);
        for op in &ops {
            apply_rel_op(&dst, op, None).unwrap();
        }
        assert!(dst.has_table("landfill"));
        assert!(dst.has_index("idx_n"));

        apply_rel_op(&dst, &encode_rel_op(&RelOp::DropIndex { index: "idx_n" }), None).unwrap();
        assert!(!dst.has_index("idx_n"));
        apply_rel_op(&dst, &encode_rel_op(&RelOp::DropTable { name: "landfill" }), None)
            .unwrap();
        assert!(!dst.has_table("landfill"));
    }

    #[test]
    fn dml_roundtrip_replays_identically() {
        let dst = Catalog::new();
        apply_rel_op(
            &dst,
            &encode_rel_op(&RelOp::CreateTable { name: "t", columns: &cols(), replace: false }),
            None,
        )
        .unwrap();
        let rows = vec![row!["a", 1.0], row!["b", 2.0], row!["c", 3.0]];
        apply_rel_op(&dst, &encode_rel_op(&RelOp::Insert { table: "t", rows: &rows }), None)
            .unwrap();
        let changes = vec![(1usize, row!["B", 20.0])];
        apply_rel_op(
            &dst,
            &encode_rel_op(&RelOp::Update { table: "t", changes: &changes }),
            None,
        )
        .unwrap();
        apply_rel_op(
            &dst,
            &encode_rel_op(&RelOp::Delete { table: "t", positions: &[0] }),
            None,
        )
        .unwrap();
        let t = dst.get_table("t").unwrap();
        let got = t.scan();
        assert_eq!(got, vec![row!["B", 20.0], row!["c", 3.0]]);
        apply_rel_op(&dst, &encode_rel_op(&RelOp::Truncate { table: "t" }), None).unwrap();
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn all_value_kinds_roundtrip() {
        let dst = Catalog::new();
        let columns = vec![
            Column::new("b", DataType::Bool),
            Column::new("i", DataType::Int),
            Column::new("f", DataType::Float),
            Column::new("s", DataType::Text),
        ];
        apply_rel_op(
            &dst,
            &encode_rel_op(&RelOp::CreateTable { name: "v", columns: &columns, replace: false }),
            None,
        )
        .unwrap();
        let rows = vec![
            vec![Value::Bool(true), Value::Int(-7), Value::Float(2.5), Value::from("héllo")],
            vec![Value::Null, Value::Null, Value::Null, Value::Null],
        ];
        apply_rel_op(&dst, &encode_rel_op(&RelOp::Insert { table: "v", rows: &rows }), None)
            .unwrap();
        assert_eq!(dst.get_table("v").unwrap().scan(), rows);
    }

    #[test]
    fn interner_shares_recovered_strings() {
        let dst = Catalog::new();
        let interner = Interner::new();
        apply_rel_op(
            &dst,
            &encode_rel_op(&RelOp::CreateTable { name: "t", columns: &cols(), replace: false }),
            Some(&interner),
        )
        .unwrap();
        let rows = vec![row!["Torino", 1.0], row!["Torino", 2.0]];
        apply_rel_op(
            &dst,
            &encode_rel_op(&RelOp::Insert { table: "t", rows: &rows }),
            Some(&interner),
        )
        .unwrap();
        let got = dst.get_table("t").unwrap().scan();
        let (Value::Str(a), Value::Str(b)) = (&got[0][0], &got[1][0]) else {
            panic!("expected strings");
        };
        assert!(crate::value::Str::ptr_eq(a, b), "recovered duplicates share one allocation");
    }

    #[test]
    fn truncated_payload_is_typed_error() {
        let rows = vec![row!["a", 1.0]];
        let payload = encode_rel_op(&RelOp::Insert { table: "t", rows: &rows });
        let dst = Catalog::new();
        dst.create_table("t", cols()).unwrap();
        for cut in [1, 3, payload.len() - 2] {
            let err = apply_rel_op(&dst, &payload[..cut], None).unwrap_err();
            assert!(matches!(err, Error::Storage(_)), "{err}");
        }
        // Unknown op tag.
        let err = apply_rel_op(&dst, &[99], None).unwrap_err();
        assert!(err.to_string().contains("unknown"), "{err}");
    }

    #[test]
    fn create_or_replace_flag_respected_on_replay() {
        let dst = Catalog::new();
        dst.create_table("t", cols()).unwrap();
        dst.get_table("t").unwrap().insert(row!["x", 1.0]).unwrap();
        apply_rel_op(
            &dst,
            &encode_rel_op(&RelOp::CreateTable { name: "t", columns: &cols(), replace: true }),
            None,
        )
        .unwrap();
        assert_eq!(dst.get_table("t").unwrap().row_count(), 0);
    }
}
