//! Checkpoint snapshots of the relational catalog.
//!
//! A snapshot is taken in two phases so writers are stalled only for the
//! cheap part: [`pin_catalog`] runs under the checkpoint barrier and only
//! clones `Arc`s (schemas, pinned heaps), then [`encode_catalog`]
//! serialises the pinned state on the checkpointer's background thread
//! while traffic proceeds. Ephemeral (federation-registered) tables are
//! skipped — recovery re-registers them from their source.

use crosse_wal::{Decoder, Encoder};

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Interner;

use super::wal::{decode_column, decode_row, encode_column, encode_row};
use super::{Catalog, TableSnapshot};

/// One table frozen at checkpoint time. Holding this pins the heap's
/// `Arc` — writers copy-on-write around it.
#[derive(Debug)]
pub struct TablePin {
    /// Original-case table name (the catalog key is lower-cased).
    pub name: String,
    pub schema: Schema,
    pub rows: TableSnapshot,
    /// `(index name, column name)` pairs, in creation order.
    pub indexes: Vec<(String, String)>,
}

/// Every durable table of a catalog, frozen at one barrier point.
#[derive(Debug)]
pub struct CatalogPin {
    pub tables: Vec<TablePin>,
}

/// Freeze the catalog. Cheap — `Arc` clones only, no row copies — and
/// meant to run under the checkpoint barrier (writers excluded), so the
/// pin is a consistent cross-table cut.
pub fn pin_catalog(catalog: &Catalog) -> CatalogPin {
    let mut tables = Vec::new();
    for table in catalog.tables() {
        if table.is_ephemeral() {
            continue;
        }
        tables.push(TablePin {
            name: table.name.clone(),
            schema: table.schema.clone(),
            rows: table.snapshot(),
            indexes: table.index_names(),
        });
    }
    CatalogPin { tables }
}

/// Serialise a pinned catalog to one snapshot section body. Runs off the
/// hot path (checkpoint background thread).
pub fn encode_catalog(pin: &CatalogPin) -> Vec<u8> {
    let mut e = Encoder::with_capacity(4096);
    e.u32(pin.tables.len() as u32);
    for t in &pin.tables {
        e.str(&t.name);
        e.u32(t.schema.columns.len() as u32);
        for c in &t.schema.columns {
            encode_column(&mut e, c);
        }
        e.u32(t.indexes.len() as u32);
        for (index, column) in &t.indexes {
            e.str(index);
            e.str(column);
        }
        e.u64(t.rows.len() as u64);
        for row in t.rows.rows() {
            encode_row(&mut e, row);
        }
    }
    e.into_vec()
}

/// Rebuild a catalog from an encoded snapshot section. The catalog must
/// be fresh (no sink attached, no tables) — this is the first step of
/// recovery, before the log tail is replayed.
pub fn decode_catalog(
    catalog: &Catalog,
    bytes: &[u8],
    interner: Option<&Interner>,
) -> Result<()> {
    let mut d = Decoder::new(bytes);
    let ntables = d.u32().map_err(Error::from)?;
    for _ in 0..ntables {
        let name = d.str().map_err(Error::from)?;
        let ncols = d.u32().map_err(Error::from)?;
        let mut columns = Vec::with_capacity(ncols as usize);
        for _ in 0..ncols {
            columns.push(decode_column(&mut d)?);
        }
        let nidx = d.u32().map_err(Error::from)?;
        let mut indexes = Vec::with_capacity(nidx as usize);
        for _ in 0..nidx {
            let index = d.str().map_err(Error::from)?;
            let column = d.str().map_err(Error::from)?;
            indexes.push((index, column));
        }
        let nrows = d.u64().map_err(Error::from)?;
        let mut rows = Vec::with_capacity(nrows.min(1 << 20) as usize);
        for _ in 0..nrows {
            rows.push(decode_row(&mut d, interner)?);
        }
        let table = catalog.create_table(&name, columns)?;
        table.apply_insert(rows);
        for (index, column) in indexes {
            catalog.create_index(&index, &name, &column)?;
        }
    }
    d.finish().map_err(Error::from)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Column;
    use crate::storage::Table;
    use crate::value::{DataType, Value};
    use std::sync::Arc;

    fn seed() -> Catalog {
        let cat = Catalog::new();
        let t = cat
            .create_table(
                "Landfill",
                vec![
                    Column::new("name", DataType::Text),
                    Column::new("tons", DataType::Float),
                ],
            )
            .unwrap();
        t.insert_many(vec![row!["a", 1.0], row!["b", 2.0]]).unwrap();
        cat.create_index("idx_name", "Landfill", "name").unwrap();
        cat.create_table("empty", vec![Column::new("x", DataType::Int)]).unwrap();
        cat
    }

    #[test]
    fn pin_encode_decode_roundtrip() {
        let cat = seed();
        let bytes = encode_catalog(&pin_catalog(&cat));
        let restored = Catalog::new();
        decode_catalog(&restored, &bytes, None).unwrap();
        assert!(restored.has_table("landfill"));
        assert!(restored.has_table("empty"));
        assert!(restored.has_index("idx_name"));
        let t = restored.get_table("landfill").unwrap();
        assert_eq!(t.name, "Landfill", "original case preserved");
        assert_eq!(t.scan(), vec![row!["a", 1.0], row!["b", 2.0]]);
        // The restored index works.
        let col = t.schema.resolve(None, "name").unwrap();
        assert_eq!(t.index_lookup_eq(col, &[Value::from("b")]).unwrap().len(), 1);
    }

    #[test]
    fn ephemeral_tables_excluded() {
        let cat = seed();
        let foreign = Arc::new(Table::new(
            "foreign",
            Schema::new(vec![Column::new("x", DataType::Int)]),
        ));
        cat.register(foreign).unwrap();
        let pin = pin_catalog(&cat);
        assert!(pin.tables.iter().all(|t| !t.name.eq_ignore_ascii_case("foreign")));
        let restored = Catalog::new();
        decode_catalog(&restored, &encode_catalog(&pin), None).unwrap();
        assert!(!restored.has_table("foreign"));
    }

    #[test]
    fn pin_is_frozen_against_later_writes() {
        let cat = seed();
        let pin = pin_catalog(&cat);
        cat.get_table("landfill").unwrap().insert(row!["c", 3.0]).unwrap();
        let restored = Catalog::new();
        decode_catalog(&restored, &encode_catalog(&pin), None).unwrap();
        assert_eq!(restored.get_table("landfill").unwrap().row_count(), 2);
    }

    #[test]
    fn corrupt_snapshot_bytes_are_typed_errors() {
        let cat = seed();
        let bytes = encode_catalog(&pin_catalog(&cat));
        for cut in [1usize, 7, bytes.len() - 3] {
            let restored = Catalog::new();
            let err = decode_catalog(&restored, &bytes[..cut], None).unwrap_err();
            assert!(matches!(err, crate::error::Error::Storage(_)), "{err}");
        }
    }
}
