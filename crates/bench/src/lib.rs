//! Shared fixtures for the CroSSE benchmark harness.
//!
//! One experiment per paper figure (see DESIGN.md §4): every Criterion
//! bench in `benches/` and every table printed by the `experiments` binary
//! builds its inputs through these constructors, so both report on
//! identical workloads.

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Duration;

use crosse_core::platform::CrossePlatform;
use crosse_core::sqm::SesqlEngine;
use crosse_federation::{FederatedDatabase, LatencyModel, LocalSource, RemoteSource};
use crosse_rdf::provenance::KnowledgeBase;
use crosse_rdf::store::{Triple, TripleStore};
use crosse_rdf::term::Term;
use crosse_relational::Database;
use crosse_smartground::{
    director_ontology, generate, random_kb, standard_engine, SmartGroundConfig,
};

/// The SESQL corpus used for parser throughput (E1): the paper's examples
/// plus progressively longer synthetic queries.
pub fn parser_corpus() -> Vec<(String, String)> {
    let mut corpus: Vec<(String, String)> = crosse_smartground::paper_examples("LF00000")
        .into_iter()
        .map(|q| (q.name.to_string(), q.sesql))
        .collect();
    for n in [4usize, 16, 64] {
        let mut sql = String::from("SELECT c0");
        for i in 1..n {
            sql.push_str(&format!(", c{i}"));
        }
        sql.push_str(" FROM t WHERE c0 = 'x'");
        sql.push_str(" ENRICH");
        for i in 0..n.min(16) {
            sql.push_str(&format!(" SCHEMAEXTENSION(c{i}, p{i})"));
        }
        corpus.push((format!("synthetic-{n}cols"), sql));
    }
    // Extended-SQL interaction: subqueries and CASE inside the SQL part
    // must survive the ENRICH split and the ${cond:id} scanner.
    corpus.push((
        "subquery+case".to_string(),
        "SELECT elem_name, CASE WHEN amount > 10 THEN 'major' ELSE 'trace' END \
         FROM elem_contained \
         WHERE landfill_name IN (SELECT name FROM landfill WHERE tons > 1000) \
         ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)"
            .to_string(),
    ));
    corpus
}

/// Standard engine at a given databank scale (E2, E3).
pub fn engine_at_scale(landfills: usize) -> SesqlEngine {
    let config = SmartGroundConfig::default().with_landfills(landfills);
    standard_engine(&config, "director").expect("fixture generation")
}

/// Engine whose user also has `extra_kb` synthetic triples (E2's KB sweep).
pub fn engine_with_kb(landfills: usize, extra_kb: usize) -> SesqlEngine {
    let engine = engine_at_scale(landfills);
    if extra_kb > 0 {
        // Load directly into the user's graph: benchmark setup does not
        // need per-statement reification overhead.
        let graph = crosse_rdf::provenance::user_graph("director");
        let triples = random_kb(extra_kb, extra_kb / 10 + 1, 20, 99).expect("fixture kb");
        engine.knowledge_base().store().insert_all(&graph, triples.iter());
    }
    engine
}

/// A triple store pre-loaded with `n` triples in one graph (E4).
pub fn store_with_triples(n: usize) -> TripleStore {
    let store = TripleStore::new();
    let triples = random_kb(n, n / 20 + 1, 16, 7).expect("fixture kb");
    store.insert_all("kb", triples.iter());
    store
}

/// A store holding one fixed `total`-triple dataset distributed round-robin
/// over `users` graphs (E4 isolation: same data, varying graph count).
pub fn store_with_users(users: usize, total: usize) -> TripleStore {
    let store = TripleStore::new();
    let triples = random_kb(total, total / 10 + 1, 8, 7).expect("fixture kb");
    for (i, t) in triples.iter().enumerate() {
        store.insert(&format!("user{}", i % users.max(1)), t);
    }
    store
}

/// A federation of `sources` remote databanks with the given RTT (E5).
/// Each source holds a copy of the landfill table at 1/sources scale.
pub fn federation(sources: usize, rtt: Duration, landfills_total: usize) -> FederatedDatabase {
    let fed = FederatedDatabase::new();
    let per_source = (landfills_total / sources.max(1)).max(1);
    for i in 0..sources {
        let db: Database = generate(
            &SmartGroundConfig::default()
                .with_landfills(per_source)
                .with_seed(1000 + i as u64),
        )
        .expect("fixture generation");
        if rtt.is_zero() {
            fed.register_source(Arc::new(LocalSource::new(format!("s{i}"), db)))
                .expect("register");
        } else {
            fed.register_source(Arc::new(RemoteSource::new(
                format!("s{i}"),
                db,
                LatencyModel { per_request: rtt, per_row: Duration::ZERO, realtime: true },
            )))
            .expect("register");
        }
    }
    fed
}

/// A crowdsourcing community: `users` members; user 0 seeds `statements`
/// statements (E6).
pub fn community(users: usize, statements: usize) -> CrossePlatform {
    let db = generate(&SmartGroundConfig::tiny()).expect("fixture generation");
    let platform = CrossePlatform::new(db, KnowledgeBase::new());
    for u in 0..users {
        platform.register_user(&format!("user{u}")).expect("register");
    }
    let kb = platform.knowledge_base();
    for t in random_kb(statements, statements / 5 + 1, 10, 3).expect("fixture kb") {
        kb.assert_statement("user0", &t).expect("assert");
    }
    platform
}

/// A community where knowledge is spread with controlled overlap (E8):
/// each user holds `per_user` statements drawn from a shared pool.
pub fn overlapping_community(users: usize, per_user: usize) -> CrossePlatform {
    let db = generate(&SmartGroundConfig::tiny()).expect("fixture generation");
    let platform = CrossePlatform::new(db, KnowledgeBase::new());
    let kb = platform.knowledge_base();
    let pool = random_kb(per_user * 4, per_user, 6, 11).expect("fixture kb");
    for u in 0..users {
        let name = format!("user{u}");
        platform.register_user(&name).expect("register");
        for k in 0..per_user {
            // Deterministic, overlapping slices of the pool.
            let idx = (u * per_user / 2 + k) % pool.len();
            kb.assert_statement(&name, &pool[idx]).expect("assert");
        }
    }
    platform
}

/// The manual-materialisation baseline for E7: export the user's
/// `dangerLevel` knowledge into a relational table so plain SQL can join
/// against it.
pub fn materialise_kb_to_table(engine: &SesqlEngine, user: &str, table: &str) {
    let kb = engine.knowledge_base();
    let sols = kb
        .query_as(user, "SELECT ?s ?o WHERE { ?s <dangerLevel> ?o }")
        .expect("kb query");
    let db = engine.database();
    let _ = db.catalog().drop_table(table);
    db.execute(&format!("CREATE TABLE {table} (elem TEXT, danger INT)"))
        .expect("create");
    let t = db.catalog().get_table(table).expect("table");
    let rows: Vec<Vec<crosse_relational::Value>> = sols
        .rows
        .iter()
        .filter_map(|r| match (&r[0], &r[1]) {
            (Some(s), Some(o)) => Some(vec![
                crosse_relational::Value::from(s.local_name()),
                crosse_relational::Value::Int(o.lexical_form().parse().unwrap_or(0)),
            ]),
            _ => None,
        })
        .collect();
    t.insert_many(rows).expect("insert");
}

/// Bloat the user's KB with `n` extra `dangerLevel` statements for
/// synthetic (non-databank) subjects. Both E7 regimes must process these:
/// SESQL's SPARQL leg fetches all `dangerLevel` pairs, and the manual
/// baseline exports them all into its relational KB table — but only the
/// manual baseline pays the relational write for them on every refresh.
pub fn bloat_danger_kb(engine: &SesqlEngine, user: &str, n: usize) {
    let graph = crosse_rdf::provenance::user_graph(user);
    let triples: Vec<Triple> = (0..n)
        .map(|i| {
            Triple::new(
                Term::iri(format!("SynthElem{i}")),
                Term::iri("dangerLevel"),
                Term::lit(((i % 5) + 1).to_string()),
            )
        })
        .collect();
    engine.knowledge_base().store().insert_all(&graph, triples.iter());
}

/// Simulate KB churn: flip one element's danger level (E7).
pub fn churn_kb(engine: &SesqlEngine, user: &str, round: u64) {
    let kb = engine.knowledge_base();
    let elem = crosse_smartground::schema::ELEMENTS
        [(round as usize) % crosse_smartground::schema::ELEMENTS.len()]
    .0;
    kb.assert_statement(
        user,
        &Triple::new(
            Term::iri(elem),
            Term::iri("dangerLevel"),
            Term::lit(((round % 5) + 1).to_string()),
        ),
    )
    .expect("assert");
}

/// A knowledge base with the director ontology for `user` (E6 helper).
pub fn director_kb(user: &str) -> KnowledgeBase {
    let kb = KnowledgeBase::new();
    kb.register_user(user);
    director_ontology(&kb, user).expect("ontology");
    kb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert!(parser_corpus().len() >= 9);
        let e = engine_at_scale(10);
        assert!(e.database().catalog().has_table("landfill"));
        let e = engine_with_kb(10, 100);
        assert!(e.knowledge_base().store().len() > 100);
        assert_eq!(store_with_triples(500).len(), 500);
        assert_eq!(store_with_users(3, 50).graph_names().len(), 3);
        let fed = federation(2, Duration::ZERO, 20);
        assert_eq!(fed.foreign_tables().len(), 10); // 5 tables × 2 sources
        let c = community(3, 20);
        assert_eq!(c.users().len(), 3);
        let oc = overlapping_community(4, 10);
        assert_eq!(oc.users().len(), 4);
    }

    #[test]
    fn materialised_baseline_matches_enrichment() {
        let engine = engine_at_scale(10);
        materialise_kb_to_table(&engine, "director", "kb_danger");
        let manual = engine
            .database()
            .query(
                "SELECT e.elem_name, k.danger FROM elem_contained e \
                 JOIN kb_danger k ON e.elem_name = k.elem",
            )
            .unwrap();
        let enriched = engine
            .execute(
                "director",
                "SELECT elem_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
            )
            .unwrap();
        // Every manual row must appear in the enriched result (which also
        // keeps unmatched rows with NULL).
        assert!(manual.len() <= enriched.rows.len());
        assert!(!manual.is_empty());
    }

    #[test]
    fn churn_changes_kb() {
        let engine = engine_at_scale(5);
        let before = engine.knowledge_base().store().len();
        churn_kb(&engine, "director", 999);
        assert!(engine.knowledge_base().store().len() >= before);
    }
}
