//! The experiment runner: regenerates every experiment table (E1–E10) of
//! EXPERIMENTS.md in one run.
//!
//! ```sh
//! cargo run --release -p crosse-bench --bin experiments          # all
//! cargo run --release -p crosse-bench --bin experiments -- e2 e7 # subset
//! ```

use std::time::{Duration, Instant};

use crosse_bench::*;
use crosse_core::parse_sesql;
use crosse_core::recommend::{recommend_peers, recommend_statements};
use crosse_rdf::sparql::eval::query as sparql_query;
use crosse_rdf::store::{Triple, TripleStore};
use crosse_rdf::term::Term;
use crosse_smartground::{landfill_name, paper_examples, random_kb};

/// Median wall time of `runs` executions of `f`.
fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn fmt(d: Duration) -> String {
    if d >= Duration::from_millis(10) {
        format!("{:.2} ms", d.as_secs_f64() * 1e3)
    } else if d >= Duration::from_micros(10) {
        format!("{:.1} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{} ns", d.as_nanos())
    }
}

fn header(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

fn e1() {
    header("E1", "SESQL parser conformance + throughput (paper Fig. 5)");
    println!("{:<22} {:>10} {:>12}", "query", "bytes", "parse time");
    for (name, sesql) in parser_corpus() {
        let t = median_time(50, || parse_sesql(&sesql).unwrap());
        println!("{:<22} {:>10} {:>12}", name, sesql.len(), fmt(t));
    }
}

fn e2() {
    header("E2", "Fig. 6 pipeline stage breakdown");
    let sesql = "SELECT elem_name, landfill_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";
    println!(
        "{:>9} {:>9} | {:>10} {:>10} {:>10} {:>10} {:>10} | {:>10} {:>7}",
        "rows", "kb", "parse", "sql", "sparql", "join", "final", "total", "out"
    );
    for (landfills, kb) in [
        (50usize, 1_000usize),
        (200, 1_000),
        (800, 1_000),
        (200, 10_000),
        (200, 50_000),
    ] {
        let engine = engine_with_kb(landfills, kb);
        // median-of-3 full reports: rerun and keep the middle by total.
        let mut reports: Vec<_> = (0..3)
            .map(|_| engine.execute("director", sesql).unwrap().report)
            .collect();
        reports.sort_by_key(|r| r.total());
        let r = &reports[1];
        println!(
            "{:>9} {:>9} | {:>10} {:>10} {:>10} {:>10} {:>10} | {:>10} {:>7}",
            r.base_rows,
            kb,
            fmt(r.parse),
            fmt(r.sql_exec),
            fmt(r.sparql_exec),
            fmt(r.join),
            fmt(r.final_sql),
            fmt(r.total()),
            r.result_rows,
        );
    }
}

fn e3() -> Vec<(String, Duration, Duration, usize)> {
    header("E3", "Per-operator enrichment cost vs plain-SQL baseline (Ex. 4.1–4.6)");
    let engine = engine_at_scale(100);
    println!(
        "{:<26} {:>12} {:>12} {:>9} {:>7}",
        "operator", "sesql", "baseline", "overhead", "rows"
    );
    let mut records: Vec<(String, Duration, Duration, usize)> = Vec::new();
    for q in paper_examples(&landfill_name(0)) {
        let ts = median_time(5, || engine.execute("director", &q.sesql).unwrap());
        let tb = median_time(5, || engine.database().query(&q.baseline_sql).unwrap());
        let rows = engine.execute("director", &q.sesql).unwrap().rows.len();
        println!(
            "{:<26} {:>12} {:>12} {:>8.1}x {:>7}",
            q.name,
            fmt(ts),
            fmt(tb),
            ts.as_secs_f64() / tb.as_secs_f64().max(1e-9),
            rows,
        );
        records.push((q.name.to_string(), ts, tb, rows));
    }
    // Prepared-vs-reparse: the same parameterised enrichment shape
    // executed through the prepare/bind lifecycle ("sesql" column) vs by
    // formatting + re-parsing the text per request ("baseline" column).
    {
        use crosse_relational::Params;
        let shape = "SELECT elem_name, landfill_name FROM elem_contained \
                     WHERE landfill_name = $lf \
                     ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";
        let prepared = engine.prepare(shape).unwrap();
        let lf = landfill_name(0);
        let tp = median_time(5, || {
            prepared
                .execute("director", &Params::new().set("lf", lf.as_str()))
                .unwrap()
        });
        let tr = median_time(5, || {
            let text = shape.replace("$lf", &format!("'{lf}'"));
            engine.execute("director", &text).unwrap()
        });
        let rows = prepared
            .execute("director", &Params::new().set("lf", lf.as_str()))
            .unwrap()
            .rows
            .len();
        println!(
            "{:<26} {:>12} {:>12} {:>8.2}x {:>7}   (prepared vs re-parsed text)",
            "prepared-vs-reparse",
            fmt(tp),
            fmt(tr),
            tp.as_secs_f64() / tr.as_secs_f64().max(1e-9),
            rows,
        );
        records.push(("prepared-vs-reparse".to_string(), tp, tr, rows));
    }
    records
}

fn e4() {
    header("E4", "Triple store scaling (paper Fig. 4 substrate)");
    println!("{:<28} {:>10} {:>14}", "workload", "size", "median time");
    for n in [1_000usize, 10_000, 100_000] {
        let triples = random_kb(n, n / 20 + 1, 16, 7).expect("fixture kb");
        let t = median_time(3, || {
            let store = TripleStore::new();
            store.insert_all("kb", triples.iter())
        });
        println!("{:<28} {:>10} {:>14}   ({:.0} triples/s)", "bulk insert", n, fmt(t),
            n as f64 / t.as_secs_f64());
    }
    let sparql = "SELECT ?s ?o WHERE { ?s <prop0> ?o . ?s <prop1> ?v }";
    for n in [1_000usize, 10_000, 100_000] {
        let store = store_with_triples(n);
        let t = median_time(5, || sparql_query(&store, &["kb"], sparql).unwrap());
        println!("{:<28} {:>10} {:>14}", "2-pattern BGP join", n, fmt(t));
    }
    for users in [1usize, 10, 100] {
        let store = store_with_users(users, 10_000);
        let graphs: Vec<String> = (0..users).map(|u| format!("user{u}")).collect();
        let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
        let t = median_time(5, || {
            sparql_query(&store, &refs, "SELECT ?s ?o WHERE { ?s <prop0> ?o }").unwrap()
        });
        println!(
            "{:<28} {:>10} {:>14}",
            "10k triples over N graphs", users, fmt(t)
        );
    }
}

fn e5() {
    header("E5", "Federation overhead (paper Fig. 1, postgres_fdw simulation)");
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>14}",
        "sources", "rtt", "cached", "live", "net(sim)"
    );
    for sources in [1usize, 2, 4, 8] {
        for rtt_us in [0u64, 1_000, 10_000] {
            let fed = federation(sources, Duration::from_micros(rtt_us), 80);
            // One count per source, summed client-side (the mediated sweep).
            let run = |live: bool| {
                let mut total = 0i64;
                for i in 0..sources {
                    let rs = fed
                        .query(&format!("SELECT COUNT(*) FROM s{i}__landfill"), live)
                        .unwrap();
                    if let crosse_relational::Value::Int(n) = rs.rows[0][0] {
                        total += n;
                    }
                }
                total
            };
            let cached = median_time(3, || run(false));
            let before: u64 = fed
                .source_stats()
                .iter()
                .map(|(_, s)| s.simulated_network_nanos)
                .sum();
            let live = median_time(3, || run(true));
            let after: u64 = fed
                .source_stats()
                .iter()
                .map(|(_, s)| s.simulated_network_nanos)
                .sum();
            println!(
                "{:<10} {:>6}µs {:>12} {:>12} {:>14}",
                sources,
                rtt_us,
                fmt(cached),
                fmt(live),
                fmt(Duration::from_nanos((after - before) / 4)), // per run (3 timed + 1 warm)
            );
        }
    }
}

fn e6() {
    header("E6", "Crowdsourcing throughput (paper Fig. 2 / Sec. III)");
    println!("{:<26} {:>10} {:>14}", "operation", "kb size", "median time");
    for existing in [100usize, 1_000, 5_000] {
        let platform = community(5, existing);
        let kb = platform.knowledge_base().clone();
        let mut i = 0u64;
        let t = median_time(50, || {
            i += 1;
            kb.assert_statement(
                "user1",
                &Triple::new(
                    Term::iri(format!("fresh{i}")),
                    Term::iri("p"),
                    Term::lit(i.to_string()),
                ),
            )
            .unwrap()
        });
        println!("{:<26} {:>10} {:>14}", "assert statement", existing, fmt(t));
    }
    for statements in [100usize, 1_000, 5_000] {
        let platform = community(10, statements);
        let t = median_time(5, || platform.browse_peer_statements("user1").len());
        println!("{:<26} {:>10} {:>14}", "browse public statements", statements, fmt(t));
        let ids = platform.knowledge_base().statements_by("user0");
        let mut k = 0usize;
        let t = median_time(20, || {
            let id = ids[k % ids.len()];
            k += 1;
            platform.import_statement("user2", id).unwrap()
        });
        println!("{:<26} {:>10} {:>14}", "import (accept) belief", statements, fmt(t));
    }
}

fn e7() {
    header("E7", "SESQL vs manual materialisation under KB churn (Sec. I-B)");
    // A selective analyst query: enrich the contents of one landfill.
    let sesql_q = format!(
        "SELECT elem_name, landfill_name FROM elem_contained \
         WHERE landfill_name = '{}' \
         ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
        landfill_name(50)
    );
    let manual_q = format!(
        "SELECT e.elem_name, e.landfill_name, k.danger \
         FROM elem_contained e \
         LEFT JOIN kb_danger k ON e.elem_name = k.elem \
         WHERE e.landfill_name = '{}'",
        landfill_name(50)
    );
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>12}",
        "kb size", "sesql", "manual-cached", "manual-remat", "crossover p"
    );
    for kb_bloat in [0usize, 2_000, 10_000, 50_000] {
        let engine = engine_at_scale(200);
        bloat_danger_kb(&engine, "director", kb_bloat);
        materialise_kb_to_table(&engine, "director", "kb_danger");

        let t_sesql = median_time(5, || engine.execute("director", &sesql_q).unwrap());
        let t_cached = median_time(5, || engine.database().query(&manual_q).unwrap());
        let mut round = 0u64;
        let t_remat = median_time(5, || {
            round += 1;
            churn_kb(&engine, "director", round);
            materialise_kb_to_table(&engine, "director", "kb_danger");
            engine.database().query(&manual_q).unwrap()
        });
        // crossover churn rate: cached + p·(remat − cached) = sesql
        let denom = t_remat.as_secs_f64() - t_cached.as_secs_f64();
        let p_star = if denom > 0.0 {
            (t_sesql.as_secs_f64() - t_cached.as_secs_f64()) / denom
        } else {
            f64::INFINITY
        };
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>12}",
            kb_bloat + 38,
            fmt(t_sesql),
            fmt(t_cached),
            fmt(t_remat),
            if (0.0..=1.0).contains(&p_star) {
                format!("{p_star:.2}")
            } else if p_star > 1.0 {
                "> 1 (manual)".to_string()
            } else {
                "0 (sesql)".to_string()
            },
        );
    }
    println!();
    println!("crossover p = churn rate above which SESQL's always-fresh context");
    println!("beats manual export-and-join; below it the cached manual join wins");
    println!("at the price of stale knowledge.");
}

fn e8() {
    header("E8", "Peer services cost vs community size (Sec. I-B)");
    println!("{:<26} {:>8} {:>14}", "service", "users", "median time");
    for users in [10usize, 50, 200, 500] {
        let platform = overlapping_community(users, 20);
        let t = median_time(3, || recommend_peers(&platform, "user0", 10));
        println!("{:<26} {:>8} {:>14}", "peer discovery", users, fmt(t));
        let t = median_time(3, || recommend_statements(&platform, "user0", 10));
        println!("{:<26} {:>8} {:>14}", "statement recommendation", users, fmt(t));
    }
    // Recommendation quality on the overlap model: the most similar peer
    // shares half their statements with user0 by construction.
    let platform = overlapping_community(20, 20);
    let peers = recommend_peers(&platform, "user0", 3);
    println!("\ntop peers of user0 (overlap model): ");
    for p in &peers {
        println!("  {:<8} score {:.3}", p.item, p.score);
    }
}

fn e9() {
    header("E9", "Design-choice ablations (DESIGN.md §4)");
    use crosse_core::sqm::{EnrichOptions, MultiValuePolicy};
    use crosse_rdf::reasoner::{instances_of, materialize_rdfs};
    use crosse_rdf::schema as rdfschema;

    // Join strategy.
    let engine = engine_at_scale(300);
    let db = engine.database().clone();
    let hash = "SELECT COUNT(*) FROM elem_contained e JOIN landfill l \
                ON e.landfill_name = l.name";
    let nested = "SELECT COUNT(*) FROM elem_contained e JOIN landfill l \
                  ON e.landfill_name <= l.name AND e.landfill_name >= l.name";
    assert_eq!(db.query(hash).unwrap().rows, db.query(nested).unwrap().rows);
    let th = median_time(5, || db.query(hash).unwrap());
    let tn = median_time(5, || db.query(nested).unwrap());
    println!("{:<36} {:>14}", "equi-join as hash join", fmt(th));
    println!(
        "{:<36} {:>14}   ({:.0}x slower)",
        "same query as nested loop",
        fmt(tn),
        tn.as_secs_f64() / th.as_secs_f64()
    );

    // Multi-value policy.
    let sesql = "SELECT elem_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, oreAssemblage)";
    for (name, policy) in [
        ("multi policy: row-per-match", MultiValuePolicy::RowPerMatch),
        ("multi policy: first-match", MultiValuePolicy::FirstMatch),
        ("multi policy: concatenate", MultiValuePolicy::Concatenate),
    ] {
        let e = engine_at_scale(200)
            .with_options(EnrichOptions { multi: policy, ..EnrichOptions::default() });
        let r = e.execute("director", sesql).unwrap();
        let t = median_time(5, || e.execute("director", sesql).unwrap());
        println!("{:<36} {:>14}   ({} rows)", name, fmt(t), r.rows.len());
    }

    // Provenance overhead.
    let triples = random_kb(500, 100, 10, 5).expect("fixture kb");
    let t_raw = median_time(5, || {
        let store = TripleStore::new();
        store.insert_all("u", triples.iter())
    });
    let t_reified = median_time(5, || {
        let kb = crosse_rdf::provenance::KnowledgeBase::new();
        kb.register_user("u");
        for t in &triples {
            kb.assert_statement("u", t).unwrap();
        }
    });
    println!("{:<36} {:>14}", "500 raw triple inserts", fmt(t_raw));
    println!(
        "{:<36} {:>14}   ({:.0}x, buys provenance)",
        "500 reified assert_statement",
        fmt(t_reified),
        t_reified.as_secs_f64() / t_raw.as_secs_f64()
    );

    // Inference strategy.
    let mk = || {
        let store = TripleStore::new();
        for i in 1..10 {
            store.insert(
                "kb",
                &Triple::new(
                    Term::iri(format!("C{i}")),
                    rdfschema::rdfs_subclass_of(),
                    Term::iri(format!("C{}", i - 1)),
                ),
            );
        }
        for j in 0..200 {
            store.insert(
                "kb",
                &Triple::new(
                    Term::iri(format!("x{j}")),
                    rdfschema::rdf_type(),
                    Term::iri("C9"),
                ),
            );
        }
        store
    };
    let root = Term::iri("C0");
    let store = mk();
    let t_walk = median_time(5, || instances_of(&store, &["kb"], &root));
    let t_mat = median_time(3, || {
        let s = mk();
        materialize_rdfs(&s, &["kb"], "inf");
        instances_of(&s, &["kb", "inf"], &root)
    });
    let warm = mk();
    materialize_rdfs(&warm, &["kb"], "inf");
    let t_lookup = median_time(5, || instances_of(&warm, &["kb", "inf"], &root));
    println!("{:<36} {:>14}", "rdfs: query-time subclass walk", fmt(t_walk));
    println!("{:<36} {:>14}", "rdfs: materialise + lookup (cold)", fmt(t_mat));
    println!("{:<36} {:>14}", "rdfs: lookup after materialise", fmt(t_lookup));
}

fn e9b() {
    header("E9b", "SPARQL-leg cache + federation pushdown ablations");
    use crosse_core::sqm::EnrichOptions;
    use crosse_federation::{FederatedDatabase, LatencyModel, RemoteSource};
    use std::sync::Arc;

    // SPARQL-leg cache: same enrichment re-run over an unchanged KB.
    let sesql = "SELECT elem_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";
    for (name, use_cache) in [("sparql cache on", true), ("sparql cache off", false)] {
        let e = engine_at_scale(200)
            .with_options(EnrichOptions { use_cache, ..EnrichOptions::default() });
        e.execute("director", sesql).unwrap(); // warm
        let t = median_time(9, || e.execute("director", sesql).unwrap());
        println!("{:<36} {:>14}", name, fmt(t));
    }
    let e = engine_at_scale(200);
    let mut i = 0u64;
    let t = median_time(9, || {
        i += 1;
        e.knowledge_base()
            .assert_statement(
                "director",
                &Triple::new(Term::iri(format!("n{i}")), Term::iri("c"), Term::lit("x")),
            )
            .unwrap();
        e.execute("director", sesql).unwrap()
    });
    println!("{:<36} {:>14}   (cache never valid)", "cache on, KB churn each query", fmt(t));

    // Federation: filter pushdown vs full live fetch.
    let fed = FederatedDatabase::new();
    let db = engine_at_scale(200).database().clone();
    fed.register_source(Arc::new(RemoteSource::new(
        "src",
        db,
        LatencyModel {
            per_request: Duration::from_micros(200),
            per_row: Duration::from_micros(2),
            realtime: true,
        },
    )))
    .unwrap();
    let sql = "SELECT elem_name FROM src__elem_contained \
               WHERE landfill_name = 'LF00001'";
    let t_full = median_time(5, || fed.query(sql, true).unwrap());
    let out = fed.query_pushdown(sql).unwrap();
    let t_push = median_time(5, || fed.query_pushdown(sql).unwrap());
    println!("{:<36} {:>14}", "federated select, full live fetch", fmt(t_full));
    println!(
        "{:<36} {:>14}   ({} rows crossed the wire)",
        "same with filter pushdown",
        fmt(t_push),
        out.pushed[0].rows_fetched
    );

    // Parallel vs sequential full sync.
    for sources in [2usize, 4, 8] {
        let fed = federation(sources, Duration::from_millis(2), 80);
        let t_seq = median_time(3, || fed.refresh_all().unwrap());
        let t_par = median_time(3, || fed.refresh_all_parallel().unwrap());
        println!(
            "{:<36} {:>14} / {:<10}  ({} sources, 2ms RTT)",
            "refresh: sequential / parallel",
            fmt(t_seq),
            fmt(t_par),
            sources
        );
    }
}

fn e10() {
    header("E10", "Secondary-index ablation (seq scan vs index scan)");
    use crosse_relational::Database;
    let build = |rows: usize, with_index: bool| {
        let db = Database::new();
        db.execute("CREATE TABLE samples (id INT, site TEXT, metal TEXT, ppm FLOAT)")
            .unwrap();
        let metals = ["Hg", "Pb", "As", "Cd", "Cu", "Zn", "Ni", "Cr"];
        let mut values = Vec::with_capacity(rows);
        for i in 0..rows {
            values.push(format!(
                "({i}, 'site{:03}', '{}', {:.2})",
                i % 97,
                metals[i % metals.len()],
                (i % 5000) as f64 / 10.0
            ));
        }
        for chunk in values.chunks(500) {
            db.execute(&format!("INSERT INTO samples VALUES {}", chunk.join(", ")))
                .unwrap();
        }
        if with_index {
            db.execute("CREATE INDEX im ON samples (metal)").unwrap();
            db.execute("CREATE INDEX ip ON samples (ppm)").unwrap();
        }
        db
    };
    let queries = [
        ("point lookup", "SELECT COUNT(*) FROM samples WHERE metal = 'Hg'"),
        ("IN-list", "SELECT COUNT(*) FROM samples WHERE metal IN ('Hg','Pb','Cd')"),
        ("range", "SELECT COUNT(*) FROM samples WHERE ppm BETWEEN 10.0 AND 12.0"),
    ];
    println!(
        "{:<12} {:<14} {:>12} {:>12} {:>8}",
        "rows", "query", "seq scan", "index scan", "speedup"
    );
    for rows in [1_000usize, 10_000, 50_000] {
        let seq = build(rows, false);
        let idx = build(rows, true);
        for (name, sql) in queries {
            assert_eq!(seq.query(sql).unwrap().rows, idx.query(sql).unwrap().rows);
            let ts = median_time(5, || seq.query(sql).unwrap());
            let ti = median_time(5, || idx.query(sql).unwrap());
            println!(
                "{:<12} {:<14} {:>12} {:>12} {:>7.1}x",
                rows,
                name,
                fmt(ts),
                fmt(ti),
                ts.as_secs_f64() / ti.as_secs_f64()
            );
        }
    }
    // Maintenance cost.
    let t_bare = median_time(3, || build(5_000, false));
    let t_idx = median_time(3, || build(5_000, true));
    println!(
        "\nbulk load 5k rows: {} bare, {} with two indexes ({:.0}% overhead)",
        fmt(t_bare),
        fmt(t_idx),
        (t_idx.as_secs_f64() / t_bare.as_secs_f64() - 1.0) * 100.0
    );
}

/// One e12 measurement: ex4.6 at one databank scale.
struct E12Run {
    scale: usize,
    rows: usize,
    sesql_s: f64,
    baseline_s: f64,
    cold_cache_s: f64,
}

/// E12: the REPLACEVARIABLE enrichment path across result scales (~1k /
/// ~16k / ~64k output rows) — warm pairs cache, plain-SQL self-join
/// baseline, and a cold-cache column isolating the SPARQL-leg + pairs-
/// table rebuild cost.
fn e12() -> Vec<E12Run> {
    header("E12", "REPLACEVARIABLE enrichment scaling (Ex. 4.6 across scales)");
    let q = paper_examples(&landfill_name(0))
        .into_iter()
        .find(|q| q.name == "ex4.6-replace-variable")
        .expect("ex4.6 in the paper workload");
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>12} {:>9}",
        "scale", "rows", "sesql", "cold-cache", "baseline", "overhead"
    );
    let mut runs = Vec::new();
    for scale in [25usize, 100, 200] {
        let engine = engine_at_scale(scale);
        let rows = engine.execute("director", &q.sesql).unwrap().rows.len();
        let ts = median_time(5, || engine.execute("director", &q.sesql).unwrap());
        let tc = median_time(3, || {
            engine.clear_cache();
            engine.execute("director", &q.sesql).unwrap()
        });
        let tb = median_time(5, || engine.database().query(&q.baseline_sql).unwrap());
        println!(
            "{:<8} {:>8} {:>12} {:>12} {:>12} {:>8.1}x",
            scale,
            rows,
            fmt(ts),
            fmt(tc),
            fmt(tb),
            ts.as_secs_f64() / tb.as_secs_f64().max(1e-9),
        );
        runs.push(E12Run {
            scale,
            rows,
            sesql_s: ts.as_secs_f64(),
            baseline_s: tb.as_secs_f64(),
            cold_cache_s: tc.as_secs_f64(),
        });
    }
    runs
}

/// One e11 measurement: the scan-heavy workload at a fixed worker-thread
/// budget.
struct E11Run {
    worker_threads: usize,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    queries: usize,
}

/// E11: query throughput under concurrent clients, worker threads 1 vs 4.
///
/// N client threads replay a scan-heavy SQL mix over the smartground
/// databank (filter+project, grouped aggregate, hash join — the morsel-
/// parallel shapes) while the engine's worker budget is switched between
/// 1 and 4. Reports QPS and p50/p95/p99 latency per budget. The recorded
/// `host_cores` matters: on a single-core host the 4-thread run measures
/// scheduling overhead, not parallel speedup.
fn e11() -> (usize, usize, Vec<E11Run>) {
    header(
        "E11",
        "Concurrent-client throughput, 1 vs 4 worker threads (snapshot scans + morsels)",
    );
    const CLIENT_THREADS: usize = 4;
    const ITERS_PER_CLIENT: usize = 12;
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let engine = engine_at_scale(3_000);
    let db = engine.database().clone();
    let mix = [
        "SELECT elem_name, amount FROM elem_contained WHERE amount > 2500.0",
        "SELECT landfill_name, COUNT(*), SUM(amount) FROM elem_contained \
         WHERE amount > 100.0 GROUP BY landfill_name",
        "SELECT e.elem_name, l.city FROM elem_contained e \
         JOIN landfill l ON e.landfill_name = l.name WHERE e.amount > 3000.0",
    ];
    let total_rows = db.query("SELECT COUNT(*) FROM elem_contained").unwrap().rows[0][0]
        .lexical_form();
    println!(
        "workload: {} elem_contained rows, {CLIENT_THREADS} client thread(s), \
         {host_cores} host core(s)",
        total_rows
    );
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "worker threads", "qps", "p50", "p95", "p99", "queries"
    );
    let mut runs = Vec::new();
    for worker_threads in [1usize, 4] {
        engine.set_exec_threads(worker_threads);
        // Warm up once per budget (plan cache, allocator).
        for q in &mix {
            db.query(q).unwrap();
        }
        let t0 = Instant::now();
        let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENT_THREADS)
                .map(|_| {
                    let db = db.clone();
                    scope.spawn(move || {
                        let mut lat = Vec::with_capacity(ITERS_PER_CLIENT * mix.len());
                        for _ in 0..ITERS_PER_CLIENT {
                            for q in &mix {
                                let t = Instant::now();
                                std::hint::black_box(db.query(q).unwrap());
                                lat.push(t.elapsed());
                            }
                        }
                        lat
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let wall = t0.elapsed();
        latencies.sort();
        let pct = |p: f64| -> f64 {
            let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
            latencies[idx].as_secs_f64() * 1e3
        };
        let run = E11Run {
            worker_threads,
            qps: latencies.len() as f64 / wall.as_secs_f64(),
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            queries: latencies.len(),
        };
        println!(
            "{:>14} {:>10.1} {:>9.2}ms {:>9.2}ms {:>9.2}ms {:>9}",
            run.worker_threads, run.qps, run.p50_ms, run.p95_ms, run.p99_ms, run.queries
        );
        runs.push(run);
    }
    engine.set_exec_threads(1);
    if let [one, four] = runs.as_slice() {
        println!("qps speedup 4 vs 1 worker thread: {:.2}x", four.qps / one.qps);
    }
    (CLIENT_THREADS, host_cores, runs)
}

/// One e14 measurement: the e11 query mix replayed over the wire by a
/// fixed number of closed-loop TCP clients.
struct E14Run {
    clients: usize,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    queries: usize,
}

/// The e14 overload probe: the same mix fired by more clients than the
/// admission gate will seat, counting typed `BUSY` sheds.
struct E14Overload {
    clients: usize,
    max_active: usize,
    queue_depth: usize,
    done: u64,
    shed: u64,
    shed_rate: f64,
}

/// E14: the network front-end under closed-loop TCP clients.
///
/// The same scan-heavy mix as e11, but spoken over CROSNET1 to an
/// in-process `crosse-server` — so e11 vs e14 at the same client count
/// brackets the protocol + admission-gate overhead. A second phase
/// shrinks the gate below the client count and measures the typed-BUSY
/// shed rate (overload must degrade by shedding, not by queue collapse).
fn e14() -> (Vec<E14Run>, E14Overload) {
    use crosse_server::{ErrorCode, Lang, QueryOutcome, Server, ServerConfig};

    header("E14", "Over-the-wire throughput: closed-loop TCP clients vs the admission gate");
    const ITERS_PER_CLIENT: usize = 12;
    let engine = engine_at_scale(3_000);
    let mix = [
        "SELECT elem_name, amount FROM elem_contained WHERE amount > 2500.0",
        "SELECT landfill_name, COUNT(*), SUM(amount) FROM elem_contained \
         WHERE amount > 100.0 GROUP BY landfill_name",
        "SELECT e.elem_name, l.city FROM elem_contained e \
         JOIN landfill l ON e.landfill_name = l.name WHERE e.amount > 3000.0",
    ];

    // Closed-loop phase: the gate is wide enough that nothing sheds and
    // every latency sample is service time + protocol, not queueing.
    let config = ServerConfig { max_active: 8, queue_depth: 64, ..ServerConfig::default() };
    let mut handle = Server::start(engine.clone(), config).expect("start e14 server");
    let addr = handle.addr().to_string();
    println!(
        "workload: e11 query mix over CROSNET1, {ITERS_PER_CLIENT} iterations per client, \
         server at {addr}"
    );
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "clients", "qps", "p50", "p95", "p99", "queries"
    );
    let mut runs = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let addr = addr.clone();
                    scope.spawn(move || {
                        let mut c =
                            crosse_server::Client::connect(&addr).expect("e14 client connect");
                        c.hello("director").expect("e14 hello");
                        let mut lat = Vec::with_capacity(ITERS_PER_CLIENT * mix.len());
                        for _ in 0..ITERS_PER_CLIENT {
                            for q in &mix {
                                let t = Instant::now();
                                let r = c.query(Lang::Sql, q, 0).expect("e14 query");
                                assert!(
                                    r.error().is_none(),
                                    "e14 query failed: {:?}",
                                    r.outcome
                                );
                                lat.push(t.elapsed());
                            }
                        }
                        lat
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let wall = t0.elapsed();
        latencies.sort();
        let pct = |p: f64| -> f64 {
            let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
            latencies[idx].as_secs_f64() * 1e3
        };
        let run = E14Run {
            clients,
            qps: latencies.len() as f64 / wall.as_secs_f64(),
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            queries: latencies.len(),
        };
        println!(
            "{:>8} {:>10.1} {:>9.2}ms {:>9.2}ms {:>9.2}ms {:>9}",
            run.clients, run.qps, run.p50_ms, run.p95_ms, run.p99_ms, run.queries
        );
        runs.push(run);
    }
    handle.shutdown();

    // Overload phase: 8 clients against a 1-seat gate with a 2-deep
    // queue. Every outcome must be Done or typed BUSY; the shed rate is
    // the robustness headline (sheds are cheap, queue collapse is not).
    let (max_active, queue_depth, clients) = (1usize, 2usize, 8usize);
    let config = ServerConfig { max_active, queue_depth, ..ServerConfig::default() };
    let mut handle = Server::start(engine, config).expect("start e14 overload server");
    let addr = handle.addr().to_string();
    let (done, shed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c =
                        crosse_server::Client::connect(&addr).expect("e14 overload connect");
                    c.hello("director").expect("e14 overload hello");
                    let (mut done, mut shed) = (0u64, 0u64);
                    for _ in 0..ITERS_PER_CLIENT {
                        for q in &mix {
                            let r = c.query(Lang::Sql, q, 0).expect("e14 overload query");
                            match r.outcome {
                                QueryOutcome::Done { .. } => done += 1,
                                QueryOutcome::Error { code: ErrorCode::Busy, .. } => shed += 1,
                                other => panic!("e14 overload: unexpected outcome {other:?}"),
                            }
                        }
                    }
                    (done, shed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0u64, 0u64), |(d, s), (dd, ss)| (d + dd, s + ss))
    });
    handle.shutdown();
    let overload = E14Overload {
        clients,
        max_active,
        queue_depth,
        done,
        shed,
        shed_rate: shed as f64 / (done + shed).max(1) as f64,
    };
    println!(
        "overload: {clients} clients vs max_active={max_active}/queue={queue_depth}: \
         {done} done, {shed} shed typed-BUSY ({:.0}% shed rate)",
        overload.shed_rate * 100.0
    );
    (runs, overload)
}

struct E13Run {
    mode: &'static str,
    batches: usize,
    batches_per_s: f64,
}

/// E13: durability cost — write throughput of the same batch workload
/// with the WAL off (pure in-memory engine) vs on, across sync policies.
///
/// Each batch is one multi-row INSERT (one redo record) plus one KB
/// assertion, mirroring the crash-recovery harness. `every_n:256` is the
/// group-commit default the CLI ships with; the target is that it costs
/// no more than ~10% throughput against the in-memory baseline.
fn e13() -> Vec<E13Run> {
    use crosse_core::sqm::SesqlEngine;
    use crosse_core::{SyncPolicy, WalOptions};
    use crosse_rdf::provenance::KnowledgeBase;
    use crosse_relational::Database;

    header("E13", "Durability cost: batch write throughput, WAL off vs sync policies");
    // Bulk-load shape: fsync latency is milliseconds on ordinary disks, so
    // group commit can only amortise it against batches with real compute.
    // 512-row inserts put one fsync behind ~32 batches (2 records each).
    const BATCHES: usize = 100;
    const ROWS_PER_BATCH: usize = 512;

    let workload = |engine: &SesqlEngine| -> Duration {
        let db = engine.database();
        let kb = engine.knowledge_base();
        db.execute("CREATE TABLE wal_bench (batch INT, item INT)").unwrap();
        kb.register_user("bench");
        // One untimed batch to warm the plan cache and interner.
        let batch = |b: usize| {
            let values: Vec<String> =
                (0..ROWS_PER_BATCH).map(|i| format!("({b}, {i})")).collect();
            db.execute(&format!("INSERT INTO wal_bench VALUES {}", values.join(", ")))
                .unwrap();
            kb.assert_statement(
                "bench",
                &Triple::new(
                    Term::iri(format!("bench:batch{b}")),
                    Term::iri("bench:completed"),
                    Term::lit(b.to_string()),
                ),
            )
            .unwrap();
            // The read-back every ingest pipeline does (validation /
            // rolling aggregate): pure compute, no redo — the part of a
            // mixed workload the WAL must not tax.
            let floor = b.saturating_sub(8);
            db.query(&format!(
                "SELECT COUNT(*) AS n, SUM(item) AS s FROM wal_bench WHERE batch >= {floor}"
            ))
            .unwrap();
        };
        batch(999_999);
        let t0 = Instant::now();
        for b in 0..BATCHES {
            batch(b);
        }
        t0.elapsed()
    };

    println!(
        "workload: {BATCHES} batches of one {ROWS_PER_BATCH}-row INSERT + one KB assert \
         + one aggregate read-back"
    );
    println!("{:<14} {:>12} {:>12}", "mode", "elapsed", "batches/s");
    let mut runs = Vec::new();
    let modes: [(&'static str, Option<SyncPolicy>); 4] = [
        ("wal-off", None),
        ("sync:off", Some(SyncPolicy::Off)),
        ("every_n:256", Some(SyncPolicy::EveryN(256))),
        ("always", Some(SyncPolicy::Always)),
    ];
    // Median of 5 fresh runs per mode, rounds interleaved across modes so
    // disk/host load drift taxes every mode equally.
    const ROUNDS: usize = 5;
    let mut samples: Vec<Vec<Duration>> = vec![Vec::new(); modes.len()];
    for _ in 0..ROUNDS {
        for (i, (mode, policy)) in modes.iter().enumerate() {
            let dir = std::env::temp_dir().join(format!(
                "crosse-e13-{}-{}",
                std::process::id(),
                mode.replace(':', "-")
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let elapsed = match policy {
                None => workload(&SesqlEngine::new(Database::new(), KnowledgeBase::new())),
                Some(sync) => {
                    let engine = SesqlEngine::open_with(&dir, WalOptions { sync: *sync }).unwrap();
                    let e = workload(&engine);
                    drop(engine);
                    e
                }
            };
            let _ = std::fs::remove_dir_all(&dir);
            samples[i].push(elapsed);
        }
    }
    for (i, (mode, _)) in modes.iter().enumerate() {
        samples[i].sort();
        let elapsed = samples[i][ROUNDS / 2];
        let run = E13Run {
            mode,
            batches: BATCHES,
            batches_per_s: BATCHES as f64 / elapsed.as_secs_f64(),
        };
        println!("{:<14} {:>12} {:>12.0}", run.mode, fmt(elapsed), run.batches_per_s);
        runs.push(run);
    }
    if let (Some(off), Some(group)) = (
        runs.iter().find(|r| r.mode == "wal-off"),
        runs.iter().find(|r| r.mode == "every_n:256"),
    ) {
        println!(
            "every_n:256 throughput cost vs wal-off: {:.1}%",
            (1.0 - group.batches_per_s / off.batches_per_s) * 100.0
        );
    }
    runs
}

/// Write the JSON baseline: the e3 table plus (when run) the e11
/// concurrency record. Hand-rolled JSON — the workspace has no serde and
/// the schema is flat.
fn write_baseline_json(
    path: &str,
    e3_records: &[(String, Duration, Duration, usize)],
    e11_data: Option<&(usize, usize, Vec<E11Run>)>,
    e12_data: Option<&[E12Run]>,
    e13_data: Option<&[E13Run]>,
    e14_data: Option<&(Vec<E14Run>, E14Overload)>,
) {
    let mut out = String::from(
        "{\n  \"experiment\": \"e3\",\n  \"unit\": \"seconds\",\n  \"results\": [\n",
    );
    for (i, (name, ts, tb, rows)) in e3_records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"sesql_median_s\": {:.9}, \"baseline_median_s\": {:.9}, \"rows\": {}}}{}\n",
            name.replace('"', "\\\""),
            ts.as_secs_f64(),
            tb.as_secs_f64(),
            rows,
            if i + 1 < e3_records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]");
    if let Some((clients, cores, runs)) = e11_data {
        out.push_str(",\n  \"e11_throughput\": {\n");
        out.push_str(
            "    \"workload\": \"smartground scan-heavy (filter/aggregate/join over elem_contained)\",\n",
        );
        out.push_str(&format!("    \"client_threads\": {clients},\n"));
        out.push_str(&format!("    \"host_cores\": {cores},\n"));
        out.push_str("    \"runs\": [\n");
        for (i, r) in runs.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"worker_threads\": {}, \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"queries\": {}}}{}\n",
                r.worker_threads,
                r.qps,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
                r.queries,
                if i + 1 < runs.len() { "," } else { "" },
            ));
        }
        out.push_str("    ]");
        if let [one, four] = runs.as_slice() {
            out.push_str(&format!(
                ",\n    \"qps_speedup_4v1\": {:.3}\n",
                four.qps / one.qps
            ));
        } else {
            out.push('\n');
        }
        out.push_str("  }");
        if e12_data.is_none() && e13_data.is_none() && e14_data.is_none() {
            out.push('\n');
        }
    }
    if let Some(runs) = e12_data {
        out.push_str(",\n  \"e12_enrich\": [\n");
        for (i, r) in runs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scale\": {}, \"rows\": {}, \"sesql_median_s\": {:.9}, \"cold_cache_median_s\": {:.9}, \"baseline_median_s\": {:.9}}}{}\n",
                r.scale,
                r.rows,
                r.sesql_s,
                r.cold_cache_s,
                r.baseline_s,
                if i + 1 < runs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]");
        if e13_data.is_none() && e14_data.is_none() {
            out.push('\n');
        }
    }
    if let Some(runs) = e13_data {
        out.push_str(",\n  \"e13_durability\": {\n");
        out.push_str(
            "    \"workload\": \"mixed batches: one 512-row INSERT + one KB assert + one aggregate read-back\",\n",
        );
        if let Some(r) = runs.first() {
            out.push_str(&format!("    \"batches\": {},\n", r.batches));
        }
        out.push_str("    \"runs\": [\n");
        for (i, r) in runs.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"mode\": \"{}\", \"batches_per_s\": {:.1}}}{}\n",
                r.mode,
                r.batches_per_s,
                if i + 1 < runs.len() { "," } else { "" },
            ));
        }
        out.push_str("    ]");
        let off = runs.iter().find(|r| r.mode == "wal-off");
        let group = runs.iter().find(|r| r.mode == "every_n:256");
        if let (Some(off), Some(group)) = (off, group) {
            out.push_str(&format!(
                ",\n    \"every_n_cost_pct\": {:.1}\n",
                (1.0 - group.batches_per_s / off.batches_per_s) * 100.0
            ));
        } else {
            out.push('\n');
        }
        out.push_str("  }");
        if e14_data.is_none() {
            out.push('\n');
        }
    }
    if let Some((runs, overload)) = e14_data {
        out.push_str(",\n  \"e14_server\": {\n");
        out.push_str(
            "    \"workload\": \"e11 query mix over CROSNET1, closed-loop TCP clients\",\n",
        );
        out.push_str("    \"runs\": [\n");
        for (i, r) in runs.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"clients\": {}, \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"queries\": {}}}{}\n",
                r.clients,
                r.qps,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
                r.queries,
                if i + 1 < runs.len() { "," } else { "" },
            ));
        }
        out.push_str("    ],\n");
        out.push_str(&format!(
            "    \"overload\": {{\"clients\": {}, \"max_active\": {}, \"queue_depth\": {}, \"done\": {}, \"shed\": {}, \"shed_rate\": {:.3}}}\n",
            overload.clients,
            overload.max_active,
            overload.queue_depth,
            overload.done,
            overload.shed,
            overload.shed_rate,
        ));
        out.push_str("  }\n");
    }
    if e11_data.is_none() && e12_data.is_none() && e13_data.is_none() && e14_data.is_none() {
        out.push('\n');
    }
    out.push_str("}\n");
    match std::fs::write(path, out) {
        Ok(()) => println!("\nbaseline written to {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--json <path>`: also write the E3 table as a JSON baseline.
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| {
            let mut tail = args.split_off(i);
            tail.remove(0); // "--json"
            if tail.is_empty() {
                eprintln!("--json requires a path argument");
                std::process::exit(2);
            }
            let path = tail.remove(0);
            args.extend(tail);
            path
        });
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));
    let t0 = Instant::now();
    if want("e1") {
        e1();
    }
    if want("e2") {
        e2();
    }
    let mut e3_records: Vec<(String, Duration, Duration, usize)> = Vec::new();
    let mut e11_data: Option<(usize, usize, Vec<E11Run>)> = None;
    if want("e3") {
        e3_records = e3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("e6") {
        e6();
    }
    if want("e7") {
        e7();
    }
    if want("e8") {
        e8();
    }
    if want("e9") {
        e9();
    }
    if want("e9b") {
        e9b();
    }
    if want("e10") {
        e10();
    }
    if want("e11") {
        e11_data = Some(e11());
    }
    let mut e12_data: Option<Vec<E12Run>> = None;
    if want("e12") {
        e12_data = Some(e12());
    }
    let mut e13_data: Option<Vec<E13Run>> = None;
    if want("e13") {
        e13_data = Some(e13());
    }
    let mut e14_data: Option<(Vec<E14Run>, E14Overload)> = None;
    if want("e14") {
        e14_data = Some(e14());
    }
    if let Some(path) = json_path.as_deref() {
        if e3_records.is_empty() {
            // Never clobber the checked-in baseline with an empty results
            // array: --json requires the e3 experiment in the selection.
            eprintln!(
                "--json skipped: run e3 (e.g. `experiments e3 e11 e12 e13 e14 --json {path}`)"
            );
        } else {
            write_baseline_json(
                path,
                &e3_records,
                e11_data.as_ref(),
                e12_data.as_deref(),
                e13_data.as_deref(),
                e14_data.as_ref(),
            );
        }
    }
    println!("\nall requested experiments done in {:?}", t0.elapsed());
}
