//! E7 (paper Sec. I-B motivation): SESQL enrichment vs the manual
//! materialisation baseline — a user who exports their knowledge into a
//! relational table and writes the join by hand.
//!
//! Three regimes:
//! * `sesql` — the enriched query; KB changes are visible immediately.
//! * `manual_cached` — plain SQL join against a pre-materialised KB table
//!   (fast, but stale under churn).
//! * `manual_remat` — re-materialise the KB table before every query
//!   (fresh, pays the export every time).
//!
//! The crossover: as the fraction of queries that follow a KB change
//! grows, `manual_remat`'s cost approaches/passes `sesql`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crosse_bench::{churn_kb, engine_at_scale, materialise_kb_to_table};

const SESQL: &str = "SELECT elem_name, landfill_name FROM elem_contained \
                     ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";
const MANUAL: &str = "SELECT e.elem_name, e.landfill_name, k.danger \
                      FROM elem_contained e \
                      LEFT JOIN kb_danger k ON e.elem_name = k.elem";

fn bench_regimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_regimes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));

    for landfills in [100usize, 400] {
        let engine = engine_at_scale(landfills);
        materialise_kb_to_table(&engine, "director", "kb_danger");

        group.bench_with_input(
            BenchmarkId::new("sesql", landfills),
            &engine,
            |b, e| b.iter(|| black_box(e.execute("director", SESQL).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("manual_cached", landfills),
            &engine,
            |b, e| b.iter(|| black_box(e.database().query(MANUAL).unwrap())),
        );
        let mut round = 0u64;
        group.bench_with_input(
            BenchmarkId::new("manual_remat", landfills),
            &engine,
            |b, e| {
                b.iter(|| {
                    round += 1;
                    churn_kb(e, "director", round);
                    materialise_kb_to_table(e, "director", "kb_danger");
                    black_box(e.database().query(MANUAL).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_regimes);
criterion_main!(benches);
