//! E8 (paper Sec. I-B a/b/c): cost of peer discovery, statement
//! recommendation and context-aware ranking as the community grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crosse_bench::overlapping_community;
use crosse_core::recommend::{rank_rows, recommend_peers, recommend_statements};

fn bench_peers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_peers");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    for users in [10usize, 50, 200] {
        let platform = overlapping_community(users, 20);
        group.bench_with_input(
            BenchmarkId::new("peers", users),
            &platform,
            |b, p| b.iter(|| black_box(recommend_peers(p, "user0", 10))),
        );
        group.bench_with_input(
            BenchmarkId::new("statements", users),
            &platform,
            |b, p| b.iter(|| black_box(recommend_statements(p, "user0", 10))),
        );
    }
    group.finish();
}

fn bench_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_ranking");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    let platform = overlapping_community(10, 20);
    platform
        .query("user0", "SELECT elem_name FROM elem_contained")
        .unwrap();
    let profile = platform.user_profile("user0");
    for rows in [100usize, 1_000, 10_000] {
        let rs = crosse_relational::RowSet {
            schema: crosse_relational::Schema::new(vec![crosse_relational::Column::new(
                "elem",
                crosse_relational::DataType::Text,
            )]),
            rows: (0..rows)
                .map(|i| vec![crosse_relational::Value::from(format!("E{}", i % 40))])
                .collect(),
        };
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rs, |b, rs| {
            b.iter(|| black_box(rank_rows(rs, &profile)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_peers, bench_ranking);
criterion_main!(benches);
