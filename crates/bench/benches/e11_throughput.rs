//! E11: snapshot scans + morsel-driven parallelism.
//!
//! Micro-benchmarks for the copy-on-write snapshot read path and the
//! worker-pool executor:
//!
//! * scan→filter→project and hash-join-probe pipelines at worker-thread
//!   budgets 1 vs 4 (the `--threads` knob);
//! * snapshot pinning cost (cursor open) and writer copy-on-write cost
//!   while a reader holds a pinned snapshot;
//! * the SPARQL probe batch at thread budgets 1 vs 4.
//!
//! The wall-clock e11 table (QPS + latency percentiles under concurrent
//! clients) lives in the `experiments` binary; this bench pins the
//! operator-level costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crosse_rdf::sparql::eval::{evaluate_with, EvalOptions};
use crosse_rdf::sparql::parser::parse_query;
use crosse_rdf::store::{Triple, TripleStore};
use crosse_rdf::term::Term;
use crosse_relational::db::Database;
use crosse_relational::Value;

fn scan_db(rows: usize) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE wide (k INT, grp TEXT, v FLOAT)").unwrap();
    let t = db.catalog().get_table("wide").unwrap();
    t.insert_many(
        (0..rows as i64)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::from(format!("g{}", i % 13)),
                    Value::Float((i % 10_000) as f64 / 7.0),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.execute("CREATE TABLE dim (grp TEXT, label TEXT)").unwrap();
    for g in 0..13 {
        db.execute(&format!("INSERT INTO dim VALUES ('g{g}', 'label{g}')")).unwrap();
    }
    db
}

fn bench_parallel_pipelines(c: &mut Criterion) {
    let db = scan_db(40_000);
    let mut group = c.benchmark_group("e11_pipeline");
    for threads in [1usize, 4] {
        db.set_exec_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("filter_project", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    black_box(
                        db.query("SELECT k, v FROM wide WHERE v > 700.0").unwrap().len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hash_join_probe", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    black_box(
                        db.query(
                            "SELECT w.k, d.label FROM wide w \
                             JOIN dim d ON w.grp = d.grp WHERE w.v > 1000.0",
                        )
                        .unwrap()
                        .len(),
                    )
                })
            },
        );
    }
    db.set_exec_threads(1);
    group.finish();
}

fn bench_snapshot_costs(c: &mut Criterion) {
    let db = scan_db(40_000);
    let table = db.catalog().get_table("wide").unwrap();
    let mut group = c.benchmark_group("e11_snapshot");
    // Pinning a snapshot is an Arc clone under a read lock.
    group.bench_function("pin_snapshot", |b| {
        b.iter(|| black_box(table.snapshot().len()))
    });
    // Writer throughput with no pinned reader: make_mut mutates in place.
    group.bench_function("insert_unpinned", |b| {
        b.iter(|| table.insert(vec![Value::Int(-1), Value::from("gx"), Value::Float(0.0)]))
    });
    // Writer throughput while a reader pins the heap: every wave of
    // inserts pays one copy-on-write of the whole vector.
    group.bench_function("insert_while_pinned", |b| {
        b.iter(|| {
            let pin = table.snapshot();
            table
                .insert(vec![Value::Int(-2), Value::from("gy"), Value::Float(0.0)])
                .unwrap();
            black_box(pin.len())
        })
    });
    group.finish();
}

fn bench_sparql_probe(c: &mut Criterion) {
    let store = TripleStore::new();
    for i in 0..80 {
        for j in 0..40 {
            store.insert(
                "kb",
                &Triple::new(
                    Term::iri(format!("hub{i}")),
                    Term::iri("linksTo"),
                    Term::iri(format!("leaf{i}_{j}")),
                ),
            );
            store.insert(
                "kb",
                &Triple::new(
                    Term::iri(format!("leaf{i}_{j}")),
                    Term::iri("weight"),
                    Term::lit(((i + j) % 23).to_string()),
                ),
            );
        }
    }
    let q = parse_query(
        "SELECT ?hub ?leaf ?w WHERE { ?hub <linksTo> ?leaf . ?leaf <weight> ?w }",
    )
    .unwrap();
    let mut group = c.benchmark_group("e11_sparql_probe");
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("two_hop_star", threads), &threads, |b, &t| {
            let opts = EvalOptions { threads: t, ..Default::default() };
            b.iter(|| black_box(evaluate_with(&store, &["kb"], &q, &opts).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group!(
    e11,
    bench_parallel_pipelines,
    bench_snapshot_costs,
    bench_sparql_probe
);
criterion_main!(e11);
