//! E1 (paper Fig. 5): SESQL parser throughput over the grammar corpus.
//!
//! Regenerates the language-level artifact: how expensive are the SQP's
//! scanning (ENRICH split + `${cond:id}` extraction) and parsing stages,
//! per example and as query width grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crosse_bench::parser_corpus;
use crosse_core::parse_sesql;
use crosse_core::sesql::scanner::{extract_tags, split_enrich};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_parse");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for (name, sesql) in parser_corpus() {
        group.bench_with_input(BenchmarkId::from_parameter(&name), &sesql, |b, q| {
            b.iter(|| parse_sesql(black_box(q)).unwrap());
        });
    }
    group.finish();
}

fn bench_scanner(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_scanner");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    let tagged = "SELECT landfill_name FROM elem_contained \
                  WHERE ${elem_name = HazardousWaste:cond1} AND amount > 10 \
                  ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)";
    group.bench_function("split_enrich", |b| {
        b.iter(|| split_enrich(black_box(tagged)).unwrap());
    });
    group.bench_function("extract_tags", |b| {
        let (sql, _) = split_enrich(tagged).unwrap();
        b.iter(|| extract_tags(black_box(&sql)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_parse, bench_scanner);
criterion_main!(benches);
