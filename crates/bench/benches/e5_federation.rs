//! E5 (paper Fig. 1): federation overhead — the same analytical query over
//! cached vs live foreign tables, sweeping source count and simulated RTT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use crosse_bench::federation;

/// The mediated sweep: one count per source table, summed client-side
/// (the SQL subset has no UNION; a cross join would explode
/// combinatorially).
fn sweep(fed: &crosse_federation::FederatedDatabase, sources: usize, live: bool) -> i64 {
    let mut total = 0i64;
    for i in 0..sources {
        let rs = fed
            .query(&format!("SELECT COUNT(*) FROM s{i}__landfill"), live)
            .unwrap();
        if let crosse_relational::Value::Int(n) = rs.rows[0][0] {
            total += n;
        }
    }
    total
}

fn bench_sources(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_sources");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for sources in [1usize, 2, 4, 8] {
        // 80 landfills total split across sources; zero RTT isolates the
        // per-source refresh overhead.
        let fed = federation(sources, Duration::ZERO, 80);
        group.bench_with_input(
            BenchmarkId::new("live", sources),
            &fed,
            |b, fed| b.iter(|| black_box(sweep(fed, sources, true))),
        );
        group.bench_with_input(
            BenchmarkId::new("cached", sources),
            &fed,
            |b, fed| b.iter(|| black_box(sweep(fed, sources, false))),
        );
    }
    group.finish();
}

fn bench_rtt(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_rtt");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.measurement_time(std::time::Duration::from_millis(600));
    for rtt_us in [0u64, 500, 2_000] {
        let fed = federation(2, Duration::from_micros(rtt_us), 80);
        group.bench_with_input(BenchmarkId::from_parameter(rtt_us), &fed, |b, fed| {
            b.iter(|| black_box(sweep(fed, 2, true)))
        });
    }
    group.finish();
}

/// Filter pushdown vs full-table live fetch: the selective predicate moves
/// only the matching rows when shipped to the source; with a per-row
/// transfer cost the saving is proportional to selectivity.
fn bench_pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_pushdown");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.measurement_time(std::time::Duration::from_millis(600));
    let fed = crosse_federation::FederatedDatabase::new();
    let db = crosse_bench::engine_at_scale(200).database().clone();
    fed.register_source(std::sync::Arc::new(crosse_federation::RemoteSource::new(
        "src",
        db,
        crosse_federation::LatencyModel {
            per_request: Duration::from_micros(200),
            per_row: Duration::from_micros(2),
            realtime: true,
        },
    )))
    .unwrap();
    let sql = "SELECT elem_name FROM src__elem_contained WHERE landfill_name = 'LF00001'";
    group.bench_function("full_fetch_live", |b| {
        b.iter(|| black_box(fed.query(sql, true).unwrap()))
    });
    group.bench_function("pushdown", |b| {
        b.iter(|| black_box(fed.query_pushdown(sql).unwrap()))
    });
    group.finish();
}

/// Parallel vs sequential full sync across remote sources with realtime RTT.
fn bench_parallel_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_parallel_refresh");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.measurement_time(std::time::Duration::from_millis(800));
    for sources in [2usize, 4, 8] {
        let fed = federation(sources, Duration::from_millis(2), 80);
        group.bench_with_input(
            BenchmarkId::new("sequential", sources),
            &fed,
            |b, fed| b.iter(|| black_box(fed.refresh_all().unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", sources),
            &fed,
            |b, fed| b.iter(|| black_box(fed.refresh_all_parallel().unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sources, bench_rtt, bench_pushdown, bench_parallel_refresh);
criterion_main!(benches);
