//! E9: ablations of the design choices DESIGN.md calls out.
//!
//! * hash join vs nested-loop join (the equi-join lowering);
//! * multi-value enrichment policies (RowPerMatch / FirstMatch / Concatenate);
//! * reified provenance inserts vs raw triple inserts;
//! * RDFS materialisation vs query-time subclass walking;
//! * prepared (prepare-once, bind per execution) vs re-parsed query text.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crosse_bench::engine_at_scale;
use crosse_core::sqm::{EnrichOptions, MultiValuePolicy};
use crosse_rdf::provenance::KnowledgeBase;
use crosse_rdf::reasoner::{instances_of, materialize_rdfs};
use crosse_rdf::schema as rdfschema;
use crosse_rdf::store::{Triple, TripleStore};
use crosse_rdf::term::Term;
use crosse_smartground::random_kb;

/// Prepared-vs-reparse ablation: the same parameterised SESQL shape
/// executed many times — once through the prepare/bind lifecycle (parse
/// amortised away), once by formatting and re-parsing the text per
/// request (the pre-cursor API's cost model). SQL-only and enriched
/// variants.
fn bench_prepared_vs_reparse(c: &mut Criterion) {
    use crosse_relational::Params;
    let mut group = c.benchmark_group("e9_prepared");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    let engine = engine_at_scale(300);

    let shape = "SELECT elem_name, landfill_name FROM elem_contained \
                 WHERE landfill_name = $lf \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";
    let prepared = engine.prepare(shape).unwrap();
    let lf = crosse_smartground::landfill_name(0);
    // Both paths agree before we time them.
    assert_eq!(
        prepared
            .execute("director", &Params::new().set("lf", lf.as_str()))
            .unwrap()
            .rows
            .rows,
        engine
            .execute(
                "director",
                &shape.replace("$lf", &format!("'{lf}'")),
            )
            .unwrap()
            .rows
            .rows,
    );
    group.bench_function("sesql_prepared", |b| {
        b.iter(|| {
            black_box(
                prepared
                    .execute("director", &Params::new().set("lf", lf.as_str()))
                    .unwrap(),
            )
        })
    });
    group.bench_function("sesql_reparse", |b| {
        b.iter(|| {
            let text = shape.replace("$lf", &format!("'{lf}'"));
            black_box(engine.execute("director", &text).unwrap())
        })
    });

    let db = engine.database();
    let sql_prepared = db
        .prepare("SELECT COUNT(*) FROM elem_contained WHERE landfill_name = $lf")
        .unwrap();
    group.bench_function("sql_prepared", |b| {
        b.iter(|| {
            black_box(
                sql_prepared
                    .query(&Params::new().set("lf", lf.as_str()))
                    .unwrap(),
            )
        })
    });
    group.bench_function("sql_reparse", |b| {
        b.iter(|| {
            let text = format!(
                "SELECT COUNT(*) FROM elem_contained WHERE landfill_name = '{lf}'"
            );
            black_box(db.query(&text).unwrap())
        })
    });
    group.finish();
}

fn bench_join_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_join");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    let engine = engine_at_scale(300);
    let db = engine.database();
    // Identical semantics, different plans: `=` lowers to a hash join;
    // `<= AND >=` is not decomposable and stays a nested loop.
    let hash = "SELECT COUNT(*) FROM elem_contained e JOIN landfill l \
                ON e.landfill_name = l.name";
    let nested = "SELECT COUNT(*) FROM elem_contained e JOIN landfill l \
                  ON e.landfill_name <= l.name AND e.landfill_name >= l.name";
    assert_eq!(
        db.query(hash).unwrap().rows,
        db.query(nested).unwrap().rows,
        "ablation variants must agree"
    );
    group.bench_function("hash_join", |b| b.iter(|| black_box(db.query(hash).unwrap())));
    group.bench_function("nested_loop", |b| {
        b.iter(|| black_box(db.query(nested).unwrap()))
    });
    group.finish();
}

fn bench_multi_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_multi_policy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    let sesql = "SELECT elem_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, oreAssemblage)";
    for (name, policy) in [
        ("row_per_match", MultiValuePolicy::RowPerMatch),
        ("first_match", MultiValuePolicy::FirstMatch),
        ("concatenate", MultiValuePolicy::Concatenate),
    ] {
        let engine = engine_at_scale(200).with_options(EnrichOptions {
            multi: policy,
            ..EnrichOptions::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, e| {
            b.iter(|| black_box(e.execute("director", sesql).unwrap()))
        });
    }
    group.finish();
}

fn bench_provenance_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_provenance");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    let triples = random_kb(500, 100, 10, 5).expect("fixture kb");
    group.bench_function("raw_store_insert", |b| {
        b.iter(|| {
            let store = TripleStore::new();
            black_box(store.insert_all("u", triples.iter()))
        })
    });
    group.bench_function("reified_assert", |b| {
        b.iter(|| {
            let kb = KnowledgeBase::new();
            kb.register_user("u");
            for t in &triples {
                black_box(kb.assert_statement("u", t).unwrap());
            }
        })
    });
    group.finish();
}

fn hierarchy_store(classes: usize, instances: usize) -> TripleStore {
    let store = TripleStore::new();
    for i in 1..classes {
        store.insert(
            "kb",
            &Triple::new(
                Term::iri(format!("C{i}")),
                rdfschema::rdfs_subclass_of(),
                Term::iri(format!("C{}", i - 1)),
            ),
        );
    }
    for j in 0..instances {
        store.insert(
            "kb",
            &Triple::new(
                Term::iri(format!("x{j}")),
                rdfschema::rdf_type(),
                Term::iri(format!("C{}", classes - 1)),
            ),
        );
    }
    store
}

/// A store of `entities` subjects, each carrying all of `props` literal
/// attributes plus a `link` edge to another entity — the BGP-join ablation
/// workload. The star query over it makes every pattern after the first a
/// bound-subject probe, which is exactly the per-row hot loop of
/// `eval_bgp`.
fn bgp_store(entities: usize, props: usize) -> TripleStore {
    let store = TripleStore::new();
    for e in 0..entities {
        for p in 0..props {
            store.insert(
                "kb",
                &Triple::new(
                    Term::iri(format!("ent{e}")),
                    Term::iri(format!("attr{p}")),
                    Term::lit(format!("v{}", (e * 31 + p * 7) % 50)),
                ),
            );
        }
        store.insert(
            "kb",
            &Triple::new(
                Term::iri(format!("ent{e}")),
                Term::iri("link"),
                Term::iri(format!("ent{}", (e * 7 + 1) % entities)),
            ),
        );
    }
    store
}

/// The 64-pattern star query: one seed pattern plus 63 bound-subject
/// probes per surviving row.
fn star_query(patterns: usize) -> String {
    let mut q = String::from("SELECT ?s WHERE { ");
    for p in 0..patterns {
        q.push_str(&format!("?s <attr{p}> ?o{p} . "));
    }
    q.push('}');
    q
}

fn bench_bgp_join(c: &mut Criterion) {
    use crosse_rdf::sparql::eval::query as sparql_query;
    let mut group = c.benchmark_group("e9_bgp");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));

    let store = bgp_store(500, 64);
    let star64 = star_query(64);
    assert_eq!(
        sparql_query(&store, &["kb"], &star64).unwrap().len(),
        500,
        "every entity satisfies the 64-pattern star"
    );
    group.bench_function("star64", |b| {
        b.iter(|| black_box(sparql_query(&store, &["kb"], &star64).unwrap()))
    });

    let star8 = star_query(8);
    group.bench_function("star8", |b| {
        b.iter(|| black_box(sparql_query(&store, &["kb"], &star8).unwrap()))
    });

    // Chain over link edges: object-subject joins with unbound-object
    // probes, then one attribute lookup per endpoint.
    let chain = "SELECT ?a ?d WHERE { ?a <link> ?b . ?b <link> ?c . \
                 ?c <link> ?d . ?d <attr0> ?v }";
    group.bench_function("chain4", |b| {
        b.iter(|| black_box(sparql_query(&store, &["kb"], chain).unwrap()))
    });
    group.finish();
}

/// RDFS materialisation over `random_kb` plus a schema layer: a
/// subproperty chain feeding rdfs7 and domain/range typing feeding
/// rdfs2/3, so derived facts scale with the instance count.
fn rdfs_workload(n: usize) -> TripleStore {
    let store = TripleStore::new();
    let triples = random_kb(n, n / 20 + 1, 16, 42).expect("fixture kb");
    store.insert_all("kb", triples.iter());
    for i in 0..8 {
        store.insert(
            "kb",
            &Triple::new(
                Term::iri(format!("prop{i}")),
                rdfschema::rdfs_subproperty_of(),
                Term::iri(format!("prop{}", i + 8)),
            ),
        );
    }
    for i in 0..4 {
        store.insert(
            "kb",
            &Triple::new(
                Term::iri(format!("prop{i}")),
                rdfschema::rdfs_domain(),
                Term::iri(format!("Class{i}")),
            ),
        );
        store.insert(
            "kb",
            &Triple::new(
                Term::iri(format!("Class{i}")),
                rdfschema::rdfs_subclass_of(),
                Term::iri(format!("Class{}", i + 4)),
            ),
        );
    }
    store
}

fn bench_rdfs_materialise(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_rdfs_materialise");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    {
        // Workload sanity: the closure derives facts, and re-running over
        // source + inferences reaches a fixpoint.
        let fresh = rdfs_workload(1_000);
        let added = materialize_rdfs(&fresh, &["kb"], "inf");
        assert!(added > 0, "rdfs workload must derive new facts, got {added}");
        assert_eq!(
            materialize_rdfs(&fresh, &["kb", "inf"], "inf"),
            0,
            "closure must be a fixpoint"
        );
    }
    for n in [1_000usize, 5_000, 20_000] {
        let store = rdfs_workload(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &store, |b, s| {
            b.iter(|| black_box(materialize_rdfs(s, &["kb"], "inf")))
        });
    }
    group.finish();
}

fn bench_inference_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_inference");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    let store = hierarchy_store(10, 200);
    let root = Term::iri("C0");
    group.bench_function("query_time_walk", |b| {
        b.iter(|| black_box(instances_of(&store, &["kb"], &root)))
    });
    group.bench_function("materialise_then_lookup", |b| {
        b.iter(|| {
            let s = hierarchy_store(10, 200);
            materialize_rdfs(&s, &["kb"], "inf");
            black_box(instances_of(&s, &["kb", "inf"], &root))
        })
    });
    // Amortised: materialise once, look up repeatedly.
    let store2 = hierarchy_store(10, 200);
    materialize_rdfs(&store2, &["kb"], "inf");
    group.bench_function("lookup_after_materialise", |b| {
        b.iter(|| black_box(instances_of(&store2, &["kb", "inf"], &root)))
    });
    group.finish();
}

/// SPARQL-leg cache ablation: the same enrichment re-executed over an
/// unchanged knowledge base (exploratory-querying pattern) with the
/// version-checked cache on vs off, plus the churn case where every query
/// is preceded by an annotation (cache always invalid → pure overhead).
fn bench_sparql_leg_cache(c: &mut Criterion) {
    use crosse_rdf::store::Triple;
    let mut group = c.benchmark_group("e9_sparql_cache");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    let sesql = "SELECT elem_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";
    for (name, use_cache) in [("cached", true), ("uncached", false)] {
        let engine = engine_at_scale(200).with_options(EnrichOptions {
            use_cache,
            ..EnrichOptions::default()
        });
        engine.execute("director", sesql).unwrap(); // warm
        group.bench_function(name, |b| {
            b.iter(|| black_box(engine.execute("director", sesql).unwrap()))
        });
    }
    // Churn: an annotation lands before every query, so the cache never
    // serves and only costs the version check + insert.
    let engine = engine_at_scale(200);
    let mut i = 0u64;
    group.bench_function("cached_under_churn", |b| {
        b.iter(|| {
            i += 1;
            engine
                .knowledge_base()
                .assert_statement(
                    "director",
                    &Triple::new(
                        Term::iri(format!("note{i}")),
                        Term::iri("comment"),
                        Term::lit("x"),
                    ),
                )
                .unwrap();
            black_box(engine.execute("director", sesql).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_prepared_vs_reparse,
    bench_join_strategy,
    bench_multi_policy,
    bench_provenance_overhead,
    bench_bgp_join,
    bench_rdfs_materialise,
    bench_inference_strategy,
    bench_sparql_leg_cache
);
criterion_main!(benches);
