//! E12: the REPLACEVARIABLE enrichment path (paper Ex. 4.6) across result
//! scales — the cross-model boundary this codebase exists to optimise.
//!
//! The SESQL query self-joins `elem_contained` through the ontology's
//! `oreAssemblage` pairs; output grows roughly quadratically with the
//! databank scale, so the three scales below cover ~1k / ~16k / ~64k
//! result rows. The `pairs_cold` variant clears the SPARQL-leg + pairs
//! caches every iteration, isolating the cost of rebuilding the pairs
//! table from the knowledge base.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crosse_bench::engine_at_scale;
use crosse_smartground::paper_examples;

/// Databank scales chosen so ex4.6 returns ~1k, ~16k and ~64k rows.
const SCALES: &[(usize, &str)] = &[(25, "1k"), (100, "16k"), (200, "64k")];

fn replace_variable_query() -> (String, String) {
    let q = paper_examples("LF00000")
        .into_iter()
        .find(|q| q.name == "ex4.6-replace-variable")
        .expect("ex4.6 in the paper workload");
    (q.sesql, q.baseline_sql)
}

fn bench_enrich(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_enrich");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));

    let (sesql, baseline) = replace_variable_query();
    for &(scale, label) in SCALES {
        let engine = engine_at_scale(scale);
        group.bench_with_input(
            BenchmarkId::new("replace_variable", label),
            &sesql,
            |b, sesql| b.iter(|| black_box(engine.execute("director", sesql).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_self_join", label),
            &baseline,
            |b, sql| b.iter(|| black_box(engine.database().query(sql).unwrap())),
        );
    }

    // Cold pairs cache: every execution re-runs the SPARQL leg and
    // rebuilds the oriented pairs table from scratch.
    let engine = engine_at_scale(100);
    group.bench_function(BenchmarkId::new("replace_variable_pairs_cold", "16k"), |b| {
        b.iter(|| {
            engine.clear_cache();
            black_box(engine.execute("director", &sesql).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enrich);
criterion_main!(benches);
