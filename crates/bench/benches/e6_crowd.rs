//! E6 (paper Fig. 2, Sec. III): crowdsourcing throughput — statement
//! assertion, public browsing, and belief import at community scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crosse_bench::community;
use crosse_rdf::store::Triple;
use crosse_rdf::term::Term;

fn bench_assert(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_assert");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for existing in [100usize, 1_000, 5_000] {
        let platform = community(5, existing);
        let kb = platform.knowledge_base().clone();
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(existing),
            &kb,
            |b, kb| {
                b.iter(|| {
                    i += 1;
                    black_box(
                        kb.assert_statement(
                            "user1",
                            &Triple::new(
                                Term::iri(format!("fresh{i}")),
                                Term::iri("p"),
                                Term::lit(i.to_string()),
                            ),
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_browse_and_import(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_browse_import");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    for statements in [100usize, 1_000] {
        let platform = community(10, statements);
        group.bench_with_input(
            BenchmarkId::new("browse", statements),
            &platform,
            |b, p| b.iter(|| black_box(p.browse_peer_statements("user1").len())),
        );
        let ids: Vec<_> = platform
            .knowledge_base()
            .statements_by("user0")
            .into_iter()
            .collect();
        let mut k = 0usize;
        group.bench_with_input(
            BenchmarkId::new("import", statements),
            &platform,
            |b, p| {
                b.iter(|| {
                    let id = ids[k % ids.len()];
                    k += 1;
                    let _: () = p.import_statement("user2", id).unwrap();
                    black_box(())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_assert, bench_browse_and_import);
criterion_main!(benches);
