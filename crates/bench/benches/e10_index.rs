//! E10: secondary-index ablation for the relational substrate.
//!
//! The SESQL WHERE-clause operators (REPLACECONSTANT in particular) rewrite
//! a tagged condition into `attr IN (<expanded constant set>)`; a secondary
//! index on `attr` turns that rewritten filter from a full scan into a set
//! of point lookups. This bench measures the crossover directly:
//!
//! * point / IN-list / range selections, seq-scan vs index-scan, over a
//!   table-size sweep;
//! * the cost of index maintenance (bulk load with and without an index);
//! * the lazy-rebuild penalty after churn (DELETE dirties the index).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crosse_relational::db::Database;

/// A databank-shaped table: `samples(id INT, site TEXT, metal TEXT, ppm FLOAT)`
/// with `sites` distinct sites and ~`rows` rows.
fn sample_db(rows: usize, with_index: bool) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE samples (id INT, site TEXT, metal TEXT, ppm FLOAT)")
        .unwrap();
    let metals = ["Hg", "Pb", "As", "Cd", "Cu", "Zn", "Ni", "Cr"];
    let mut values = Vec::with_capacity(rows);
    for i in 0..rows {
        values.push(format!(
            "({i}, 'site{:03}', '{}', {:.2})",
            i % 97,
            metals[i % metals.len()],
            (i % 5000) as f64 / 10.0
        ));
    }
    // Chunked inserts keep statement size bounded.
    for chunk in values.chunks(500) {
        db.execute(&format!("INSERT INTO samples VALUES {}", chunk.join(", ")))
            .unwrap();
    }
    if with_index {
        db.execute("CREATE INDEX idx_metal ON samples (metal)").unwrap();
        db.execute("CREATE INDEX idx_ppm ON samples (ppm)").unwrap();
    }
    db
}

fn bench_selection(c: &mut Criterion) {
    let queries = [
        ("point", "SELECT COUNT(*) FROM samples WHERE metal = 'Hg'"),
        (
            "in_list",
            "SELECT COUNT(*) FROM samples WHERE metal IN ('Hg', 'Pb', 'Cd')",
        ),
        (
            "range",
            "SELECT COUNT(*) FROM samples WHERE ppm BETWEEN 10.0 AND 12.0",
        ),
    ];
    for rows in [1_000usize, 10_000, 50_000] {
        let seq = sample_db(rows, false);
        let idx = sample_db(rows, true);
        let mut group = c.benchmark_group(format!("e10_selection/{rows}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(200));
        group.measurement_time(std::time::Duration::from_millis(800));
        for (name, sql) in queries {
            assert_eq!(
                seq.query(sql).unwrap().rows,
                idx.query(sql).unwrap().rows,
                "index and scan must agree on `{sql}`"
            );
            group.bench_with_input(BenchmarkId::new("seqscan", name), &seq, |b, d| {
                b.iter(|| black_box(d.query(sql).unwrap()))
            });
            group.bench_with_input(BenchmarkId::new("indexscan", name), &idx, |b, d| {
                b.iter(|| black_box(d.query(sql).unwrap()))
            });
        }
        group.finish();
    }
}

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_maintenance");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    for with_index in [false, true] {
        let label = if with_index { "load_with_index" } else { "load_bare" };
        group.bench_function(label, |b| {
            b.iter(|| black_box(sample_db(5_000, with_index)))
        });
    }
    // Lazy rebuild: a DELETE dirties the index; the next indexed query pays
    // one rebuild, subsequent ones are clean.
    group.bench_function("query_after_churn", |b| {
        let db = sample_db(10_000, true);
        b.iter(|| {
            // Updating one row dirties every index on the table, so the
            // following query pays one lazy rebuild.
            db.execute("UPDATE samples SET ppm = 1.0 WHERE id = 0").unwrap();
            black_box(
                db.query("SELECT COUNT(*) FROM samples WHERE metal = 'Hg'").unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_selection, bench_maintenance);
criterion_main!(benches);
