//! E3 (paper Sec. IV, Examples 4.1–4.6): per-operator enrichment cost vs
//! the plain-SQL part of the same query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crosse_bench::engine_at_scale;
use crosse_smartground::{landfill_name, paper_examples};

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_operators");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));

    let engine = engine_at_scale(100);
    for q in paper_examples(&landfill_name(0)) {
        group.bench_with_input(
            BenchmarkId::new("sesql", q.name),
            &q.sesql,
            |b, sesql| b.iter(|| black_box(engine.execute("director", sesql).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_sql", q.name),
            &q.baseline_sql,
            |b, sql| b.iter(|| black_box(engine.database().query(sql).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
