//! E4 (paper Fig. 4): triple-store scaling — insert throughput, BGP query
//! latency vs KB size, and the cost of querying across many per-user
//! graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use crosse_bench::{store_with_triples, store_with_users};
use crosse_rdf::sparql::eval::query;
use crosse_rdf::store::TripleStore;
use crosse_smartground::random_kb;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_insert");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    for n in [1_000usize, 10_000] {
        let triples = random_kb(n, n / 20 + 1, 16, 7).expect("fixture kb");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &triples, |b, ts| {
            b.iter(|| {
                let store = TripleStore::new();
                black_box(store.insert_all("kb", ts.iter()))
            })
        });
    }
    group.finish();
}

fn bench_bgp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_bgp");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    // A two-pattern join with a numeric filter over growing stores.
    let sparql = "SELECT ?s ?o WHERE { ?s <prop0> ?o . ?s <prop1> ?v }";
    for n in [1_000usize, 10_000, 100_000] {
        let store = store_with_triples(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &store, |b, s| {
            b.iter(|| black_box(query(s, &["kb"], sparql).unwrap()))
        });
    }
    group.finish();
}

fn bench_multi_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_multi_graph");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    // Same total triple count, spread over an increasing number of user
    // graphs; the query unions all of them.
    for users in [1usize, 10, 100] {
        let store = store_with_users(users, 10_000);
        let graphs: Vec<String> = (0..users).map(|u| format!("user{u}")).collect();
        group.bench_with_input(BenchmarkId::from_parameter(users), &store, |b, s| {
            let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
            b.iter(|| {
                black_box(
                    query(s, &refs, "SELECT ?s ?o WHERE { ?s <prop0> ?o }").unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_bgp, bench_multi_graph);
criterion_main!(benches);
