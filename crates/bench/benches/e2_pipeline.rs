//! E2 (paper Fig. 6): end-to-end SESQL pipeline latency across databank
//! and knowledge-base scales. The per-stage breakdown (SQP, SQL leg,
//! SPARQL leg, JoinManager, final SQL) is printed by the `experiments`
//! binary; Criterion measures the end-to-end figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crosse_bench::engine_with_kb;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));

    let sesql = "SELECT elem_name, landfill_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";

    for landfills in [50usize, 200, 800] {
        let engine = engine_with_kb(landfills, 1_000);
        group.bench_with_input(
            BenchmarkId::new("rows", landfills * 6),
            &engine,
            |b, e| b.iter(|| black_box(e.execute("director", sesql).unwrap())),
        );
    }
    for kb in [1_000usize, 10_000, 50_000] {
        let engine = engine_with_kb(100, kb);
        group.bench_with_input(BenchmarkId::new("kb_triples", kb), &engine, |b, e| {
            b.iter(|| black_box(e.execute("director", sesql).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
