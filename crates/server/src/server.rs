//! The CROSNET1 TCP front-end: accept loop, per-connection handlers,
//! admission control, deadlines, and graceful drain.
//!
//! One [`Server`] owns a listening socket and a shared [`SesqlEngine`].
//! Each accepted connection gets its own thread (the *I/O* thread-per-
//! connection model); execution concurrency is bounded separately by the
//! [`AdmissionGate`] — a connection thread executes its own query while
//! holding a gate permit, so the "bounded worker pool" is the set of
//! connection threads currently holding permits. This keeps results
//! streaming on the thread that owns the socket, and makes *client
//! disconnect frees the slot* automatic: a failed write unwinds the
//! handler, dropping the permit and the session.
//!
//! Robustness properties, each exercised by `cargo xtask chaos`:
//!
//! - **Backpressure**: past `max_active` running + `queue_depth` waiting
//!   queries, new queries are shed with a typed `BUSY` — never
//!   accept-then-hang.
//! - **Deadlines**: every query gets a [`CancelToken`]; queue time and
//!   execution time both count. Expiry surfaces as a typed
//!   `DEADLINE_EXCEEDED` mid-stream.
//! - **Slowloris / idle defense**: a frame must complete within
//!   `read_timeout` of its first byte; a connection with no traffic for
//!   `idle_timeout` is closed.
//! - **Frame/row budgets**: oversized frames are rejected before
//!   allocation; results are capped at `row_budget` rows with a typed
//!   error.
//! - **Graceful drain**: [`ServerHandle::shutdown`] stops accepting,
//!   lets in-flight queries finish for `drain_timeout`, then cancels
//!   their tokens cooperatively.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crosse_core::session::{Rows, Session};
use crosse_core::sqm::SesqlEngine;
use crosse_exec::CancelToken;
use crosse_relational::{ExecOutcome, Params, Value};
use parking_lot::Mutex;

use crate::admit::{AdmissionGate, AdmitError};
use crate::frame::{write_frame, ProtocolError, MAGIC};
use crate::proto::{ErrorCode, Lang, ParamBinding, Request, Response};
use crate::stats::ServerStats;

/// Server identity sent in `HELLO_OK`.
const SERVER_IDENT: &str = concat!("crosse-server/", env!("CARGO_PKG_VERSION"));

/// Rows per `ROW_BATCH` frame.
const BATCH_ROWS: usize = 256;

/// Tuning knobs; the [`Default`] is sized for tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Maximum simultaneously open connections; beyond it new connections
    /// are greeted and immediately refused with a typed `BUSY`.
    pub max_conns: usize,
    /// Queries allowed to execute concurrently.
    pub max_active: usize,
    /// Queries allowed to wait for a slot before shedding starts.
    pub queue_depth: usize,
    /// Deadline applied when a query frame carries none (0 = unlimited).
    pub default_deadline_ms: u32,
    /// Ceiling on client-requested deadlines (0 = no ceiling).
    pub max_deadline_ms: u32,
    /// A started frame must complete within this (slowloris defense).
    pub read_timeout: Duration,
    /// A connection with no traffic for this long is closed.
    pub idle_timeout: Duration,
    /// Per-connection frame payload limit.
    pub max_frame_len: u32,
    /// Maximum result rows streamed per query before a typed error.
    pub row_budget: u64,
    /// How long shutdown waits for in-flight queries before cancelling.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_conns: 64,
            max_active: 4,
            queue_depth: 16,
            default_deadline_ms: 30_000,
            max_deadline_ms: 300_000,
            read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
            max_frame_len: 1024 * 1024,
            row_budget: 1_000_000,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// State shared by the acceptor, every connection thread, and the handle.
struct Shared {
    engine: SesqlEngine,
    config: ServerConfig,
    gate: AdmissionGate,
    stats: ServerStats,
    shutdown: AtomicBool,
    /// Cancel tokens of queries executing right now, keyed by connection
    /// id — shutdown cancels them after the drain grace period.
    active_tokens: Mutex<HashMap<u64, CancelToken>>,
    next_conn_id: AtomicU64,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct Server;

pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `engine` on `config.addr`. Returns once the
    /// listener is live (the accept loop runs on a background thread).
    pub fn start(engine: SesqlEngine, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            gate: AdmissionGate::new(config.max_active, config.queue_depth),
            stats: ServerStats::new(),
            shutdown: AtomicBool::new(false),
            active_tokens: Mutex::new_labeled("server.active_tokens", HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            engine,
            config,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("crosse-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(ServerHandle { addr, shared, accept_thread: Some(accept_thread) })
    }
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot, identical to the wire `STATS` reply.
    pub fn stats(&self) -> Vec<(String, u64)> {
        let (active, queued) = self.shared.gate.depth();
        self.shared.stats.snapshot(active, queued)
    }

    /// Drain-then-stop: stop accepting, wait up to `drain_timeout` for
    /// in-flight queries, then cancel their tokens cooperatively and wait
    /// for the connection threads to unwind. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        while Instant::now() < deadline {
            let (active, _) = self.shared.gate.depth();
            if active == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Grace period over: cancel whatever is still running. The tokens
        // are polled at batch boundaries, so the queries stop promptly
        // with typed `Cancelled` errors.
        for (_, token) in self.shared.active_tokens.lock().iter() {
            token.cancel();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Wait briefly for connection threads to observe shutdown/cancel
        // and unwind (they poll at ≤100ms granularity).
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            if self.shared.stats.active_conns.load(Ordering::Relaxed) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                ServerStats::bump(&shared.stats.accepted_conns);
                let open = shared.stats.active_conns.fetch_add(1, Ordering::Relaxed) + 1;
                let conn_shared = Arc::clone(&shared);
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                let over_capacity = open as usize > shared.config.max_conns;
                let spawned = std::thread::Builder::new()
                    .name(format!("crosse-conn-{conn_id}"))
                    .spawn(move || {
                        if over_capacity {
                            ServerStats::bump(&conn_shared.stats.rejected_conns);
                            refuse_over_capacity(stream);
                        } else {
                            handle_conn(stream, &conn_shared, conn_id);
                        }
                        conn_shared.stats.active_conns.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    // Thread spawn failed (resource exhaustion): undo the
                    // connection count and drop the socket.
                    shared.stats.active_conns.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept error (e.g. aborted connection): retry.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Greet an over-capacity connection with a typed `BUSY` and close it —
/// refusal must be as protocol-shaped as acceptance.
fn refuse_over_capacity(mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut magic = [0u8; 8];
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    if stream.read_exact(&mut magic).is_err() || &magic != MAGIC {
        return;
    }
    if stream.write_all(MAGIC).is_err() {
        return;
    }
    let rsp = Response::Error {
        code: ErrorCode::Busy,
        message: "server at connection capacity".into(),
    };
    let _ = write_frame(&mut stream, &rsp.encode());
}

/// How one attempt to receive a frame ended.
enum Recv {
    Frame(Vec<u8>),
    /// Clean close between frames.
    Eof,
    /// Server draining; the handler says goodbye.
    ShuttingDown,
    /// No traffic for `idle_timeout`.
    Idle,
    /// A frame started but did not complete within `read_timeout`.
    SlowFrame,
    /// The length prefix itself was invalid (stream is unsyncable).
    Malformed(ProtocolError),
    /// Transport error.
    Io,
}

/// Incrementally receive one frame. The socket has a 100ms read timeout,
/// so the loop can observe shutdown, idle, and slow-frame conditions
/// without losing partially read bytes (unlike `read_exact`).
fn recv_frame(stream: &mut TcpStream, shared: &Shared) -> Recv {
    let idle_since = Instant::now();
    let mut len_buf = [0u8; 4];
    let mut have = 0usize;
    let mut payload: Vec<u8> = Vec::new();
    let mut in_payload = false;
    let mut frame_started: Option<Instant> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Recv::ShuttingDown;
        }
        match frame_started {
            Some(t0) => {
                if t0.elapsed() > shared.config.read_timeout {
                    return Recv::SlowFrame;
                }
            }
            None => {
                if idle_since.elapsed() > shared.config.idle_timeout {
                    return Recv::Idle;
                }
            }
        }
        let res = if in_payload {
            stream.read(&mut payload[have..])
        } else {
            stream.read(&mut len_buf[have..])
        };
        match res {
            Ok(0) => {
                return if !in_payload && have == 0 { Recv::Eof } else { Recv::Io };
            }
            Ok(n) => {
                if frame_started.is_none() {
                    frame_started = Some(Instant::now());
                }
                have += n;
                if !in_payload && have == 4 {
                    let len = u32::from_le_bytes(len_buf);
                    if len == 0 {
                        return Recv::Malformed(ProtocolError::EmptyFrame);
                    }
                    let max =
                        shared.config.max_frame_len.min(crate::frame::ABSOLUTE_MAX_FRAME);
                    if len > max {
                        return Recv::Malformed(ProtocolError::FrameTooLarge { len, max });
                    }
                    payload = vec![0u8; len as usize];
                    have = 0;
                    in_payload = true;
                } else if in_payload && have == payload.len() {
                    return Recv::Frame(payload);
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return Recv::Io,
        }
    }
}

/// Send a response frame; `false` means the peer is gone (socket writes
/// are a tracked blocking region — no engine lock may be held here).
fn send(stream: &mut TcpStream, rsp: &Response) -> bool {
    parking_lot::tracking::blocking_region("server.socket.write");
    write_frame(stream, &rsp.encode()).is_ok()
}

fn send_error(stream: &mut TcpStream, code: ErrorCode, message: impl Into<String>) -> bool {
    send(stream, &Response::Error { code, message: message.into() })
}

/// A per-connection prepared statement (client-named cursor).
enum PreparedAny {
    Sesql(crosse_core::sqm::PreparedSesql),
    Sql(crosse_relational::Prepared),
    Sparql(crosse_rdf::sparql::Prepared),
}

fn handle_conn(mut stream: TcpStream, shared: &Shared, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));

    // Handshake: the peer's first 8 bytes must be the magic. Anything
    // else is not our protocol — close without a reply (we cannot assume
    // the peer understands frames).
    let mut magic = [0u8; 8];
    let start = Instant::now();
    let mut have = 0;
    while have < 8 {
        if shared.shutdown.load(Ordering::SeqCst)
            || start.elapsed() > shared.config.read_timeout
        {
            return;
        }
        match stream.read(&mut magic[have..]) {
            Ok(0) => return,
            Ok(n) => have += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
    if &magic != MAGIC {
        ServerStats::bump(&shared.stats.protocol_errors);
        return;
    }
    {
        parking_lot::tracking::blocking_region("server.socket.write");
        if stream.write_all(MAGIC).is_err() {
            return;
        }
    }

    let mut session: Option<Session> = None;
    let mut prepared: HashMap<String, PreparedAny> = HashMap::new();

    loop {
        let payload = match recv_frame(&mut stream, shared) {
            Recv::Frame(p) => p,
            Recv::Eof | Recv::Io | Recv::Idle => return,
            Recv::ShuttingDown => {
                let _ = send_error(
                    &mut stream,
                    ErrorCode::ShuttingDown,
                    "server is shutting down",
                );
                return;
            }
            Recv::SlowFrame => {
                ServerStats::bump(&shared.stats.protocol_errors);
                let _ = send_error(
                    &mut stream,
                    ErrorCode::Protocol,
                    "frame not completed within the read timeout",
                );
                return;
            }
            Recv::Malformed(e) => {
                ServerStats::bump(&shared.stats.protocol_errors);
                let code = match e {
                    ProtocolError::FrameTooLarge { .. } => ErrorCode::TooLarge,
                    _ => ErrorCode::Protocol,
                };
                // The stream cannot be re-synchronised after a bad length
                // prefix; answer typed, then close.
                let _ = send_error(&mut stream, code, e.to_string());
                return;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // Frame boundaries are intact (the whole frame was read),
                // so a semantically malformed frame is answered typed and
                // the connection keeps serving.
                ServerStats::bump(&shared.stats.protocol_errors);
                if !send_error(&mut stream, ErrorCode::Protocol, e.to_string()) {
                    return;
                }
                continue;
            }
        };

        match request {
            Request::Hello { user } => {
                // Same user-name rules as the local platform surface.
                if user.is_empty()
                    || !user.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    if !send_error(
                        &mut stream,
                        ErrorCode::Query,
                        format!("invalid user name `{user}` (alphanumeric and `_` only)"),
                    ) {
                        return;
                    }
                    continue;
                }
                let kb = shared.engine.knowledge_base();
                if !kb.is_registered(&user) {
                    kb.register_user(&user);
                }
                match Session::new(&shared.engine, &user) {
                    Ok(s) => {
                        session = Some(s);
                        if !send(
                            &mut stream,
                            &Response::HelloOk { server: SERVER_IDENT.into() },
                        ) {
                            return;
                        }
                    }
                    Err(e) => {
                        if !send_error(&mut stream, ErrorCode::Query, e.to_string()) {
                            return;
                        }
                    }
                }
            }
            Request::Ping => {
                if !send(&mut stream, &Response::Pong) {
                    return;
                }
            }
            Request::Stats => {
                let (active, queued) = shared.gate.depth();
                let entries = shared.stats.snapshot(active, queued);
                if !send(&mut stream, &Response::StatsReply { entries }) {
                    return;
                }
            }
            Request::Close => {
                let _ = send(&mut stream, &Response::Pong);
                return;
            }
            other => {
                let Some(sess) = session.as_ref() else {
                    if !send_error(
                        &mut stream,
                        ErrorCode::Protocol,
                        "expected HELLO before queries",
                    ) {
                        return;
                    }
                    continue;
                };
                let keep_going = match other {
                    Request::Query { lang, deadline_ms, text } => run_query(
                        &mut stream,
                        shared,
                        conn_id,
                        sess,
                        QueryJob::Text { lang, text },
                        deadline_ms,
                    ),
                    Request::Execute { name, deadline_ms, params } => {
                        match prepared.get(&name) {
                            Some(p) => run_query(
                                &mut stream,
                                shared,
                                conn_id,
                                sess,
                                QueryJob::Prepared { prepared: p, params },
                                deadline_ms,
                            ),
                            None => send_error(
                                &mut stream,
                                ErrorCode::Query,
                                format!("no prepared statement named `{name}`"),
                            ),
                        }
                    }
                    Request::Prepare { lang, name, text } => {
                        match do_prepare(sess, lang, &text) {
                            Ok((p, nparams)) => {
                                prepared.insert(name.clone(), p);
                                send(
                                    &mut stream,
                                    &Response::PreparedOk { name, params: nparams },
                                )
                            }
                            Err(msg) => send_error(&mut stream, ErrorCode::Query, msg),
                        }
                    }
                    Request::Explain { text } => match sess.explain(&text) {
                        Ok(t) => send(&mut stream, &Response::Text { text: t }),
                        Err(e) => send_error(&mut stream, ErrorCode::Query, e.to_string()),
                    },
                    Request::Lint { text } => match sess.lint(&text) {
                        Ok(diags) => {
                            let rendered = diags
                                .iter()
                                .map(|d| d.to_string())
                                .collect::<Vec<_>>()
                                .join("\n");
                            send(&mut stream, &Response::Text { text: rendered })
                        }
                        Err(e) => send_error(&mut stream, ErrorCode::Query, e.to_string()),
                    },
                    // Hello/Ping/Stats/Close handled above.
                    _ => true,
                };
                if !keep_going {
                    return;
                }
            }
        }
    }
}

fn do_prepare(
    sess: &Session,
    lang: Lang,
    text: &str,
) -> Result<(PreparedAny, u16), String> {
    match lang {
        Lang::Sesql => {
            let p = sess.prepare(text).map_err(|e| e.to_string())?;
            let n = p.param_slots().len() as u16;
            Ok((PreparedAny::Sesql(p), n))
        }
        Lang::Sql => {
            let p = sess.prepare_sql(text).map_err(|e| e.to_string())?;
            let n = p.param_slots().len() as u16;
            Ok((PreparedAny::Sql(p), n))
        }
        Lang::Sparql => {
            let p = sess.prepare_sparql(text).map_err(|e| e.to_string())?;
            let n = p.params().len() as u16;
            Ok((PreparedAny::Sparql(p), n))
        }
    }
}

enum QueryJob<'a> {
    Text { lang: Lang, text: String },
    Prepared { prepared: &'a PreparedAny, params: Vec<ParamBinding> },
}

/// Clamp/choose the effective deadline for a query frame.
fn effective_deadline(shared: &Shared, requested_ms: u32) -> Option<Duration> {
    let max = shared.config.max_deadline_ms;
    let ms = match (requested_ms, shared.config.default_deadline_ms) {
        (0, 0) => return None,
        (0, d) => d,
        (r, _) if max > 0 => r.min(max),
        (r, _) => r,
    };
    Some(Duration::from_millis(u64::from(ms)))
}

/// Admission → execution → streaming for one query. Returns `false` when
/// the connection should close (peer gone).
fn run_query(
    stream: &mut TcpStream,
    shared: &Shared,
    conn_id: u64,
    sess: &Session,
    job: QueryJob<'_>,
    deadline_ms: u32,
) -> bool {
    if shared.shutdown.load(Ordering::SeqCst) {
        return send_error(stream, ErrorCode::ShuttingDown, "server is shutting down");
    }
    let token = match effective_deadline(shared, deadline_ms) {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };
    let t0 = Instant::now();
    // Queue time counts against the deadline: enter() polls the token.
    let permit = match shared.gate.enter(&token) {
        Ok(p) => p,
        Err(AdmitError::Busy { active, queued }) => {
            ServerStats::bump(&shared.stats.shed);
            return send_error(
                stream,
                ErrorCode::Busy,
                format!("server busy: {active} active, {queued} queued"),
            );
        }
        Err(AdmitError::Interrupted(i)) => {
            ServerStats::bump(&shared.stats.deadline_exceeded);
            return send_error(
                stream,
                interrupt_code(i),
                format!("{i} while waiting for an execution slot"),
            );
        }
    };
    ServerStats::bump(&shared.stats.accepted_queries);
    shared.active_tokens.lock().insert(conn_id, token.clone());

    let keep_going = execute_and_stream(stream, shared, sess, &job, &token);

    shared.active_tokens.lock().remove(&conn_id);
    drop(permit);
    shared.stats.record_latency_us(t0.elapsed().as_micros() as u64);
    if !keep_going {
        // Peer gone mid-stream: make sure nothing lingers on this token
        // (defensive — the cursor died with the handler's stack).
        token.cancel();
    }
    keep_going
}

fn interrupt_code(i: crosse_exec::Interrupt) -> ErrorCode {
    match i {
        crosse_exec::Interrupt::Cancelled => ErrorCode::Cancelled,
        crosse_exec::Interrupt::DeadlineExceeded => ErrorCode::DeadlineExceeded,
    }
}

/// Map an engine error to its wire code and record it in the stats.
fn report_engine_error(
    stream: &mut TcpStream,
    shared: &Shared,
    e: &crosse_core::error::Error,
) -> bool {
    match e.as_interrupt() {
        Some(i) => {
            match i {
                crosse_exec::Interrupt::Cancelled => {
                    ServerStats::bump(&shared.stats.cancelled)
                }
                crosse_exec::Interrupt::DeadlineExceeded => {
                    ServerStats::bump(&shared.stats.deadline_exceeded)
                }
            }
            send_error(stream, interrupt_code(i), e.to_string())
        }
        None => {
            ServerStats::bump(&shared.stats.query_errors);
            send_error(stream, ErrorCode::Query, e.to_string())
        }
    }
}

/// Execute one admitted query and stream its result. The token is
/// installed as the thread's ambient cancel token, so every layer —
/// relational cursors, SQM pipeline phases, SPARQL legs — picks it up
/// without explicit plumbing.
fn execute_and_stream(
    stream: &mut TcpStream,
    shared: &Shared,
    sess: &Session,
    job: &QueryJob<'_>,
    token: &CancelToken,
) -> bool {
    let _ambient = token.make_current();
    match job {
        QueryJob::Text { lang, text } => match lang {
            Lang::Sesql | Lang::Sql => {
                // DDL/DML routes straight to the relational engine, like
                // the local CLI (that is how a wire client mutates durable
                // state). SELECT-shaped statements stream.
                let head = text
                    .split_whitespace()
                    .next()
                    .map(|w| w.to_ascii_uppercase())
                    .unwrap_or_default();
                if matches!(
                    head.as_str(),
                    "CREATE" | "INSERT" | "UPDATE" | "DELETE" | "DROP" | "TRUNCATE"
                ) {
                    return match sess.engine().database().execute(text) {
                        Ok(ExecOutcome::Affected(n)) => {
                            ServerStats::bump(&shared.stats.completed);
                            send_done(stream, n as u64, u64::MAX, Instant::now())
                        }
                        Ok(ExecOutcome::Done) => {
                            ServerStats::bump(&shared.stats.completed);
                            send_done(stream, 0, u64::MAX, Instant::now())
                        }
                        Ok(ExecOutcome::Rows(rows)) => {
                            let cursor = crosse_relational::Rows::from_rowset(rows);
                            stream_cursor(stream, shared, cursor)
                        }
                        Err(e) => report_engine_error(stream, shared, &e.into()),
                    };
                }
                if *lang == Lang::Sql {
                    match sess
                        .prepare_sql(text)
                        .and_then(|p| sess.execute_sql(&p, &Params::new()))
                    {
                        Ok(rows) => stream_cursor(stream, shared, rows),
                        Err(e) => report_engine_error(stream, shared, &e),
                    }
                } else {
                    match sess
                        .prepare(text)
                        .and_then(|p| sess.execute_cursor(&p, &Params::new()))
                    {
                        Ok(rows) => stream_cursor(stream, shared, rows),
                        Err(e) => report_engine_error(stream, shared, &e),
                    }
                }
            }
            Lang::Sparql => {
                match sess.prepare_sparql(text).and_then(|p| {
                    sess.execute_sparql(&p, &crosse_rdf::sparql::SparqlParams::new())
                }) {
                    Ok(rows) => stream_cursor(stream, shared, rows),
                    Err(e) => report_engine_error(stream, shared, &e),
                }
            }
        },
        QueryJob::Prepared { prepared, params } => match prepared {
            PreparedAny::Sesql(p) => {
                match relational_params(params)
                    .and_then(|ps| sess.execute_cursor(p, &ps).map_err(|e| e.to_string()))
                {
                    Ok(rows) => stream_cursor(stream, shared, rows),
                    Err(msg) => {
                        ServerStats::bump(&shared.stats.query_errors);
                        send_error(stream, ErrorCode::Query, msg)
                    }
                }
            }
            PreparedAny::Sql(p) => {
                match relational_params(params)
                    .and_then(|ps| sess.execute_sql(p, &ps).map_err(|e| e.to_string()))
                {
                    Ok(rows) => stream_cursor(stream, shared, rows),
                    Err(msg) => {
                        ServerStats::bump(&shared.stats.query_errors);
                        send_error(stream, ErrorCode::Query, msg)
                    }
                }
            }
            PreparedAny::Sparql(p) => {
                match sparql_params(params)
                    .and_then(|ps| sess.execute_sparql(p, &ps).map_err(|e| e.to_string()))
                {
                    Ok(rows) => stream_cursor(stream, shared, rows),
                    Err(msg) => {
                        ServerStats::bump(&shared.stats.query_errors);
                        send_error(stream, ErrorCode::Query, msg)
                    }
                }
            }
        },
    }
}

/// Bind wire params into relational [`Params`] (empty name = positional).
fn relational_params(bindings: &[ParamBinding]) -> Result<Params, String> {
    let mut params = Params::new();
    for b in bindings {
        if b.name.is_empty() {
            params = params.push(b.value.clone());
        } else {
            params = params.set(&b.name, b.value.clone());
        }
    }
    Ok(params)
}

/// Bind wire params into SPARQL terms: strings in `<...>` become IRIs,
/// other values become (typed) literals.
fn sparql_params(
    bindings: &[ParamBinding],
) -> Result<crosse_rdf::sparql::SparqlParams, String> {
    use crosse_rdf::term::Term;
    const XSD: &str = "http://www.w3.org/2001/XMLSchema#";
    let mut params = crosse_rdf::sparql::SparqlParams::new();
    for b in bindings {
        let term = match &b.value {
            Value::Null => {
                return Err(format!("SPARQL parameter `{}` cannot be NULL", b.name))
            }
            Value::Bool(v) => Term::typed_lit(v.to_string(), format!("{XSD}boolean")),
            Value::Int(v) => Term::typed_lit(v.to_string(), format!("{XSD}integer")),
            Value::Float(v) => Term::typed_lit(v.to_string(), format!("{XSD}double")),
            Value::Str(s) => {
                let s: &str = s;
                match s.strip_prefix('<').and_then(|rest| rest.strip_suffix('>')) {
                    Some(iri) => Term::iri(iri),
                    None => Term::lit(s),
                }
            }
        };
        params = if b.name.is_empty() {
            params.push(term)
        } else {
            params.set(&b.name, term)
        };
    }
    Ok(params)
}

fn send_done(stream: &mut TcpStream, rows: u64, rows_scanned: u64, t0: Instant) -> bool {
    send(
        stream,
        &Response::Done {
            rows,
            rows_scanned,
            elapsed_us: t0.elapsed().as_micros() as u64,
        },
    )
}

/// Stream a cursor: `SCHEMA`, row batches, then `DONE` (or a typed error
/// mid-stream — cancellation, deadline, row budget, engine failure).
fn stream_cursor(
    stream: &mut TcpStream,
    shared: &Shared,
    mut cursor: impl Rows + RowsScannedProbe,
) -> bool {
    let t0 = Instant::now();
    if !send(stream, &Response::Schema { columns: cursor.columns() }) {
        return false;
    }
    let mut sent: u64 = 0;
    let mut batch: Vec<Vec<Value>> = Vec::with_capacity(BATCH_ROWS);
    loop {
        match cursor.next_row() {
            Some(Ok(row)) => {
                batch.push(row);
                sent += 1;
                if sent >= shared.config.row_budget {
                    ServerStats::bump(&shared.stats.row_budget_hits);
                    if !batch.is_empty()
                        && !send(stream, &Response::RowBatch { rows: std::mem::take(&mut batch) })
                    {
                        return false;
                    }
                    return send_error(
                        stream,
                        ErrorCode::RowBudget,
                        format!(
                            "result exceeded the {}-row budget",
                            shared.config.row_budget
                        ),
                    );
                }
                if batch.len() >= BATCH_ROWS {
                    if !send(stream, &Response::RowBatch { rows: std::mem::take(&mut batch) }) {
                        return false;
                    }
                    batch.reserve(BATCH_ROWS);
                }
            }
            Some(Err(e)) => {
                return report_engine_error(stream, shared, &e);
            }
            None => {
                if !batch.is_empty()
                    && !send(stream, &Response::RowBatch { rows: std::mem::take(&mut batch) })
                {
                    return false;
                }
                ServerStats::bump(&shared.stats.completed);
                let scanned = cursor.rows_scanned_probe().unwrap_or(u64::MAX);
                return send_done(stream, sent, scanned, t0);
            }
        }
    }
}

/// How many base rows a cursor touched, when its execution path tracks it
/// (streamed relational/SESQL paths do; SPARQL and materialised results
/// report `None` → `u64::MAX` on the wire).
trait RowsScannedProbe {
    fn rows_scanned_probe(&self) -> Option<u64>;
}

impl RowsScannedProbe for crosse_relational::Rows {
    fn rows_scanned_probe(&self) -> Option<u64> {
        Some(self.rows_scanned())
    }
}

impl RowsScannedProbe for crosse_core::session::EnrichedRows {
    fn rows_scanned_probe(&self) -> Option<u64> {
        self.rows_scanned()
    }
}

impl RowsScannedProbe for crosse_core::session::SparqlRows {
    fn rows_scanned_probe(&self) -> Option<u64> {
        None
    }
}
